"""Benchmark regenerating Figure 1: motivation -- heterogeneous and multi-zone configurations.

Runs the corresponding experiment harness (``repro.experiments.figure1``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure1(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure1", bench_scale)
    assert table.rows
