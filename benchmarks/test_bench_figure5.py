"""Benchmark regenerating Figure 5: estimation error on a homogeneous GH200 cluster.

Runs the corresponding experiment harness (``repro.experiments.figure5``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure5(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure5", bench_scale)
    assert table.rows
