"""Benchmark regenerating Table 2: search times for the Figure 9b clusters.

Runs the corresponding experiment harness (``repro.experiments.table2``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_table2(benchmark, bench_scale):
    table = run_experiment(benchmark, "table2", bench_scale)
    assert table.rows
