"""Benchmark regenerating Figure 2: A100 availability trace over 8 hours.

Runs the corresponding experiment harness (``repro.experiments.figure2``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure2(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure2", bench_scale)
    assert table.rows
