"""Benchmark regenerating Figure 10: small heterogeneous cluster (deployed plans).

Runs the corresponding experiment harness (``repro.experiments.figure10``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure10(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure10", bench_scale)
    assert table.rows
