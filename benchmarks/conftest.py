"""Shared helpers for the benchmark suite.

Every paper table/figure has one benchmark that regenerates it via its
experiment harness and prints the resulting rows, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction run.  Experiments are
executed once per benchmark (they are minutes-long at paper scale, so the
benches default to the scaled-down configurations described in
``repro.experiments.common``).
"""

from __future__ import annotations

import importlib

import pytest


#: Scale used by the benchmark suite.  Override with
#: ``REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only`` to run the
#: full paper-sized sweeps.
import os

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Experiment scale the benchmarks run at."""
    return BENCH_SCALE


def run_experiment(benchmark, experiment_name: str, scale: str, **kwargs):
    """Run one experiment harness under pytest-benchmark and print its table."""
    module = importlib.import_module(f"repro.experiments.{experiment_name}")
    table = benchmark.pedantic(lambda: module.run(scale, **kwargs),
                               rounds=1, iterations=1)
    print()
    print(table.to_text())
    return table
