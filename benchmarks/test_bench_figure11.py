"""Benchmark regenerating Figure 11: geo-distributed training, 4 zones / 2 regions.

Runs the corresponding experiment harness (``repro.experiments.figure11``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure11(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure11", bench_scale)
    assert table.rows
