"""Benchmark regenerating Figure 12: geo-distributed training, 5 zones / 2 regions.

Runs the corresponding experiment harness (``repro.experiments.figure12``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure12(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure12", bench_scale)
    assert table.rows
