#!/usr/bin/env python3
"""cProfile the planner hot path (``make profile``).

Runs the heterogeneous planner benchmark scenario (A100 + V100 mixed
cluster, OPT-350M, max-throughput objective) once to warm the profile
caches, then profiles a second planning call and prints the hottest
functions.  Use this to find the next optimisation target before reaching
for the micro-benchmarks::

    make profile                       # 64 GPUs, top 30 by cumulative time
    make profile PROFILE_ARGS="--gpus 256 --sort tottime --top 40"

The ``--top N`` / ``--sort`` pair is the regression-eyeballing interface:
``--sort tottime --top 10`` shows at a glance whether a new hot row crept
into the DP engine (``--limit`` is kept as an alias of ``--top``).
``--stats`` additionally dumps the profiled call's ``SearchStats``
counters as JSON next to the cProfile rows -- the straggler-certificate
counters (``suffix_iterations`` / ``suffix_certified``) live there, so a
profile and its iteration counts come from the same call.
``--phases`` splits the profiled call's wall time into the planner's five
coarse phases (forward-layer build / backward scoring / suffix solves /
plan evaluation / candidate enumeration + floor computation, derived from
the same cProfile capture), so the next scale wall is visible without
spelunking the row listing.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time

from repro.core.objectives import Objective
from repro.core.planner import SailorPlanner
from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


#: The planner's coarse phases, as (file suffix, function name) anchors in
#: the cProfile capture.  Cumulative times, so each bucket includes the
#: kernels it drives; nested calls *within* one bucket (the batched budget
#: threading falling back to scalar suffix solves) are de-duplicated via
#: the callers table, so a bucket never counts the same wall time twice.
_PHASES = {
    "forward_layer_build": (("resource_state.py", "compute_forward_layers"),),
    "backward_scoring": (("resource_state.py", "run_backward"),),
    "suffix_solves": (("dp_solver.py", "_solve_suffix"),
                      ("dp_solver.py", "_solve_budget_batched")),
    "evaluation": (("evaluator.py", "evaluate"),),
    # Candidate enumeration + bound computation: the (P, mbs, D) candidate
    # generators, the stage-combo master tables, and every admissible-floor
    # routine (family interval memo, availability-aware tail floors).  This
    # is the branch-and-bound overhead that the kernels above don't see --
    # when its share grows with the pool, the next wall is enumeration, not
    # scoring.
    "enumeration": (("heuristics.py", "min_tp_per_stage"),
                    ("heuristics.py", "data_parallel_candidates"),
                    ("heuristics.py", "pipeline_parallel_candidates"),
                    ("heuristics.py", "microbatch_candidates"),
                    ("search_cache.py", "stage_master_combos"),
                    ("planner.py", "_branch_specs"),
                    ("planner.py", "_stage_floors"),
                    ("planner.py", "_candidate_floor"),
                    ("planner.py", "_family_floor"),
                    ("planner.py", "_availability_tables"),
                    ("planner.py", "_candidate_floor_available")),
}


def phase_wall_times(stats: pstats.Stats, search_time_s: float,
                     ) -> dict[str, float]:
    """Wall time per planner phase, from an existing cProfile capture.

    ``other`` is the remainder of the planning call (candidate
    enumeration, cache lookups, plan materialisation...), clamped at 0 --
    the buckets are cumulative over *distinct* subtrees, so their sum
    cannot meaningfully exceed the call's wall time beyond timer jitter.
    """
    raw = stats.stats
    phases: dict[str, float] = {}
    for phase, anchors in _PHASES.items():
        keys = {key for key in raw
                for suffix, func in anchors
                if key[2] == func and key[0].endswith(suffix)}
        total = 0.0
        for key in keys:
            ct, callers = raw[key][3], raw[key][4]
            nested = sum(entry[3] for caller, entry in callers.items()
                         if caller in keys and caller != key)
            total += ct - nested
        phases[phase] = total
    phases["other"] = max(0.0, search_time_s - sum(phases.values()))
    return phases


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile one Sailor planner call on a mixed A100+V100 "
                    "cluster.")
    parser.add_argument("--gpus", type=int, default=64,
                        help="total GPUs, split evenly between A100 and V100 "
                             "4-GPU nodes (default: 64)")
    parser.add_argument("--batch-size", type=int, default=512,
                        help="global batch size (default: 512)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort order (default: cumulative)")
    parser.add_argument("--top", "--limit", dest="top", type=int, default=30,
                        help="rows to print (default: 30; --limit is an "
                             "alias)")
    parser.add_argument("--min-cost", action="store_true",
                        help="profile the cost objective instead of "
                             "max-throughput")
    parser.add_argument("--budget", type=float, default=None, metavar="USD",
                        help="profile a budget-constrained search (max "
                             "throughput under this per-iteration cost cap; "
                             "--budget 0.031 reproduces the single-zone "
                             "Table 3 bench scenario)")
    parser.add_argument("--stats", action="store_true",
                        help="dump the profiled call's SearchStats counters "
                             "as JSON next to the cProfile output")
    parser.add_argument("--phases", action="store_true",
                        help="split the profiled call's wall time into "
                             "forward-layer build / backward scoring / "
                             "suffix solves / evaluation / candidate "
                             "enumeration (JSON, from the same cProfile "
                             "capture)")
    args = parser.parse_args(argv)

    if args.gpus < 8 or args.gpus % 8:
        parser.error("--gpus must be a multiple of 8 (two 4-GPU node types)")
    nodes_per_type = args.gpus // 8

    job = TrainingJobSpec(model=get_model("OPT-350M"),
                          global_batch_size=args.batch_size)
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": nodes_per_type, "n1-standard-v100-4": nodes_per_type})
    if args.budget is not None:
        if args.min_cost:
            parser.error("--budget profiles max-throughput under a cost cap; "
                         "it cannot be combined with --min-cost")
        objective = Objective.max_throughput(
            max_cost_per_iteration_usd=args.budget)
    elif args.min_cost:
        objective = Objective.min_cost()
    else:
        objective = Objective.max_throughput()

    budget_note = ("" if args.budget is None
                   else f", budget={args.budget} USD/iter")
    print(f"profiling: {args.gpus} GPUs ({nodes_per_type} A100 nodes + "
          f"{nodes_per_type} V100 nodes), goal={objective.goal.value}"
          f"{budget_note}")
    env = build_environment(job, topology)
    planner = SailorPlanner(env)

    warm_start = time.perf_counter()
    planner.plan(job, topology, objective)  # warm caches, like the benches
    print(f"warm-up call: {time.perf_counter() - warm_start:.3f}s")

    profiler = cProfile.Profile()
    profiler.enable()
    result = planner.plan(job, topology, objective)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(f"search_time={result.search_time_s:.3f}s "
          f"candidates={result.candidates_evaluated} "
          f"stats=[{result.search_stats.describe()}]")
    if args.stats:
        print("search_stats_json="
              + json.dumps(result.search_stats.as_dict(), sort_keys=True))
    if args.phases:
        phases = phase_wall_times(stats, result.search_time_s)
        for phase, seconds in phases.items():
            share = (seconds / result.search_time_s * 100.0
                     if result.search_time_s > 0 else 0.0)
            print(f"phase {phase:<20s} {seconds:8.3f}s  {share:5.1f}%")
        print("phase_wall_times_json=" + json.dumps(
            {phase: round(seconds, 6) for phase, seconds in phases.items()},
            sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
