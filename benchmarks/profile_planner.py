#!/usr/bin/env python3
"""cProfile the planner hot path (``make profile``).

Runs the heterogeneous planner benchmark scenario (A100 + V100 mixed
cluster, OPT-350M, max-throughput objective) once to warm the profile
caches, then profiles a second planning call and prints the hottest
functions.  Use this to find the next optimisation target before reaching
for the micro-benchmarks::

    make profile                       # 64 GPUs, top 30 by cumulative time
    make profile PROFILE_ARGS="--gpus 256 --sort tottime --top 40"

The ``--top N`` / ``--sort`` pair is the regression-eyeballing interface:
``--sort tottime --top 10`` shows at a glance whether a new hot row crept
into the DP engine (``--limit`` is kept as an alias of ``--top``).
``--stats`` additionally dumps the profiled call's ``SearchStats``
counters as JSON next to the cProfile rows -- the straggler-certificate
counters (``suffix_iterations`` / ``suffix_certified``) live there, so a
profile and its iteration counts come from the same call.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time

from repro.core.objectives import Objective
from repro.core.planner import SailorPlanner
from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile one Sailor planner call on a mixed A100+V100 "
                    "cluster.")
    parser.add_argument("--gpus", type=int, default=64,
                        help="total GPUs, split evenly between A100 and V100 "
                             "4-GPU nodes (default: 64)")
    parser.add_argument("--batch-size", type=int, default=512,
                        help="global batch size (default: 512)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort order (default: cumulative)")
    parser.add_argument("--top", "--limit", dest="top", type=int, default=30,
                        help="rows to print (default: 30; --limit is an "
                             "alias)")
    parser.add_argument("--min-cost", action="store_true",
                        help="profile the cost objective instead of "
                             "max-throughput")
    parser.add_argument("--budget", type=float, default=None, metavar="USD",
                        help="profile a budget-constrained search (max "
                             "throughput under this per-iteration cost cap; "
                             "--budget 0.031 reproduces the single-zone "
                             "Table 3 bench scenario)")
    parser.add_argument("--stats", action="store_true",
                        help="dump the profiled call's SearchStats counters "
                             "as JSON next to the cProfile output")
    args = parser.parse_args(argv)

    if args.gpus < 8 or args.gpus % 8:
        parser.error("--gpus must be a multiple of 8 (two 4-GPU node types)")
    nodes_per_type = args.gpus // 8

    job = TrainingJobSpec(model=get_model("OPT-350M"),
                          global_batch_size=args.batch_size)
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": nodes_per_type, "n1-standard-v100-4": nodes_per_type})
    if args.budget is not None:
        if args.min_cost:
            parser.error("--budget profiles max-throughput under a cost cap; "
                         "it cannot be combined with --min-cost")
        objective = Objective.max_throughput(
            max_cost_per_iteration_usd=args.budget)
    elif args.min_cost:
        objective = Objective.min_cost()
    else:
        objective = Objective.max_throughput()

    budget_note = ("" if args.budget is None
                   else f", budget={args.budget} USD/iter")
    print(f"profiling: {args.gpus} GPUs ({nodes_per_type} A100 nodes + "
          f"{nodes_per_type} V100 nodes), goal={objective.goal.value}"
          f"{budget_note}")
    env = build_environment(job, topology)
    planner = SailorPlanner(env)

    warm_start = time.perf_counter()
    planner.plan(job, topology, objective)  # warm caches, like the benches
    print(f"warm-up call: {time.perf_counter() - warm_start:.3f}s")

    profiler = cProfile.Profile()
    profiler.enable()
    result = planner.plan(job, topology, objective)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(f"search_time={result.search_time_s:.3f}s "
          f"candidates={result.candidates_evaluated} "
          f"stats=[{result.search_stats.describe()}]")
    if args.stats:
        print("search_stats_json="
              + json.dumps(result.search_stats.as_dict(), sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
