"""Benchmark regenerating Figure 6: iteration-time error on a heterogeneous RTX cluster.

Runs the corresponding experiment harness (``repro.experiments.figure6``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure6(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure6", bench_scale)
    assert table.rows
