"""Benchmark regenerating Figure 13: minimise cost under a throughput constraint.

Runs the corresponding experiment harness (``repro.experiments.figure13``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure13(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure13", bench_scale)
    assert table.rows
