"""Quality-vs-deadline curves for the anytime planner, plus salvage smoke.

The anytime search (cooperative cancellation + certified optimality gaps)
turns the planner's deadline from a blunt between-branches check into a
contract: every call returns its best incumbent with an admissible bound on
what the truncated search might still have found.  These benches record
that contract's two sides:

* **quality-vs-deadline curves**: the certified gap at 10/50/200 ms wall
  deadlines on 128-1024-GPU mixed pools, printed per point and recorded in
  ``BENCH_history.jsonl`` via the timed 50 ms call (its wall time gates the
  salvage epilogue -- pricing the unexplored candidates must stay a small
  constant over the deadline itself);
* **`make ci` deadline/crash smoke**: a 64-node x 4-GPU (256-GPU) plan
  under a 50 ms deadline must return a feasible plan with a *finite* gap,
  and a crash-injected parallel call must lose zero branches -- both fail
  CI if the salvage path silently disarms.  (Smoke test names avoid the
  ``CI_BENCH_FILTER`` scale substrings on purpose; the curve benches carry
  them so only ``make bench`` pays for the big pools.)
"""

from __future__ import annotations

import math
import os

import pytest

from repro.core.objectives import Objective
from repro.core.planner import ParallelPlanner, PlannerConfig, SailorPlanner
from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec

DEADLINES_MS = (10.0, 50.0, 200.0)


@pytest.fixture(scope="module")
def job():
    return TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=512)


def plan_with_deadline(env, job, topology, deadline_s):
    planner = SailorPlanner(env, config=PlannerConfig(time_limit_s=deadline_s))
    return planner.plan(job, topology, Objective.max_throughput())


def deadline_curve(benchmark, job, nodes_per_type: int):
    """Record the 50 ms point, print the whole 10/50/200 ms curve."""
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": nodes_per_type,
        "n1-standard-v100-4": nodes_per_type})
    env = build_environment(job, topology)

    results = {ms: plan_with_deadline(env, job, topology, ms / 1e3)
               for ms in DEADLINES_MS if ms != 50.0}
    results[50.0] = benchmark.pedantic(
        lambda: plan_with_deadline(env, job, topology, 0.050),
        rounds=3, iterations=1)

    print()
    for ms in DEADLINES_MS:
        result = results[ms]
        print(f"deadline {ms:5.0f} ms: found={result.found} "
              f"complete={result.complete} "
              f"gap={result.optimality_gap_bound:.4f} "
              f"cut_branches={len(result.incomplete_branches)} "
              f"search={result.search_time_s * 1e3:.1f} ms")
    for ms, result in results.items():
        # The anytime contract at every deadline: a feasible incumbent and
        # a finite certified gap, never an empty-handed timeout.
        assert result.found, f"no incumbent at {ms} ms"
        assert math.isfinite(result.optimality_gap_bound)
        assert result.optimality_gap_bound >= 0.0
    return results


def test_bench_planner_deadline_curve_128_gpus(benchmark, job):
    """Certified-gap curve on 64 A100 + 64 V100 (Figure 8 mid point)."""
    results = deadline_curve(benchmark, job, nodes_per_type=16)
    # At this scale the full search takes ~1.5 s, so every deadline in the
    # curve truncates it; the certificates must reflect that.
    assert all(not r.complete for r in results.values())


def test_bench_planner_deadline_curve_512_gpus(benchmark, job):
    """Certified-gap curve on 256 A100 + 256 V100 (Figure 8 max point)."""
    deadline_curve(benchmark, job, nodes_per_type=64)


@pytest.mark.skipif(os.environ.get("BENCH_SCALE", "smoke") != "full",
                    reason="1024-GPU point runs only under BENCH_SCALE=full "
                           "(make bench sets it; make ci's smoke subset "
                           "stays fast)")
def test_bench_planner_deadline_curve_1024_gpus(benchmark, job):
    """Certified-gap curve at the 1024-GPU scale point: the deadline must
    hold even when a *single* engine pass outweighs the whole budget, i.e.
    the in-loop cooperative cancellation (not just the between-candidate
    check) is what keeps the wall time bounded here."""
    deadline_curve(benchmark, job, nodes_per_type=128)


# -- `make ci` smoke subset -------------------------------------------------------
#
# Names deliberately avoid the CI_BENCH_FILTER scale substrings: the pool
# below is 64 nodes x 4 GPUs (256 GPUs) but is *not* named "256".

def test_bench_planner_deadline_smoke_64_nodes(benchmark, job):
    """`make ci` acceptance bar: a 256-GPU (64-node x 4-GPU) plan under a
    50 ms deadline must return a feasible plan with a finite certified gap.
    A disarmed salvage path (no incumbent, or an infinite zero-information
    bound) fails CI rather than just planning slow."""
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 32, "n1-standard-v100-4": 32})
    env = build_environment(job, topology)
    result = benchmark.pedantic(
        lambda: plan_with_deadline(env, job, topology, 0.050),
        rounds=1, iterations=1)
    assert result.found
    assert not result.complete
    assert math.isfinite(result.optimality_gap_bound)
    assert result.optimality_gap_bound > 0.0
    assert result.incomplete_branches


def test_bench_planner_crash_salvage_smoke(benchmark, job, monkeypatch,
                                           tmp_path):
    """`make ci` acceptance bar: a parallel plan whose worker is SIGKILLed
    mid-branch must lose zero branches -- the retried call's plan and
    candidate count match a clean serial solve, and the result is marked
    incomplete with the affected branches listed."""
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 4, "n1-standard-v100-4": 4})
    env = build_environment(job, topology, seed=7)
    objective = Objective.max_throughput()
    serial = SailorPlanner(env).plan(job, topology, objective)
    assert serial.found

    monkeypatch.setenv("SAILOR_PLANNER_FAULT", "sigkill:*:*")
    monkeypatch.setenv("SAILOR_PLANNER_FAULT_ONCE",
                       str(tmp_path / "fault_once"))
    result = benchmark.pedantic(
        lambda: ParallelPlanner(env, max_workers=2).plan(
            job, topology, objective),
        rounds=1, iterations=1)
    assert result.found
    assert not result.complete
    assert result.incomplete_branches
    # Zero lost branches: the salvage+retry recovered the full search.
    assert result.candidates_evaluated == serial.candidates_evaluated
    assert (result.evaluation.iteration_time_s
            == serial.evaluation.iteration_time_s)
