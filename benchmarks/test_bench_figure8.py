"""Benchmark regenerating Figure 8: heterogeneous A100+V100 clusters, OPT-350M.

Runs the corresponding experiment harness (``repro.experiments.figure8``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure8(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure8", bench_scale)
    assert table.rows
