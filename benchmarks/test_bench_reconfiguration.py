"""Benchmark regenerating Section 5.5: reconfiguration overhead breakdown.

Runs the corresponding experiment harness (``repro.experiments.reconfiguration``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.

Also benchmarks the churn replay loop end-to-end: a seeded fault trace is
replayed through the replanning controller, measuring sustained replanning
throughput (plans/s), tail replan latency, and how much of the solve work
the incremental search context absorbs.
"""

from conftest import run_experiment

from repro.core.objectives import Objective
from repro.core.simulator import build_environment
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec
from repro.runtime.controller import ReplanPolicy
from repro.runtime.faults import FaultScenarioGenerator
from repro.runtime.replay import ChurnReplayer

CHURN_POOLS = {("us-central1-a", "a2-highgpu-4g"): 4,
               ("us-central1-a", "n1-standard-v100-4"): 4,
               ("us-central1-b", "a2-highgpu-4g"): 2}


def churn_setup():
    job = TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=256)
    base = ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4},
        "us-central1-b": {"a2-highgpu-4g": 2},
    })
    env = build_environment(job, base, seed=7)
    return job, base, env


def replay_churn(env, job, base, num_events, duration_s, seed=0):
    trace = FaultScenarioGenerator(seed=seed).churn_trace(
        CHURN_POOLS, duration_s=duration_s, num_events=num_events)
    replayer = ChurnReplayer(env, job, Objective.max_throughput(),
                             policy=ReplanPolicy(deterministic_timing=True))
    return replayer.run(trace, base_topology=base)


def test_bench_reconfiguration(benchmark, bench_scale):
    table = run_experiment(benchmark, "reconfiguration", bench_scale)
    assert table.rows


def test_bench_churn_replay_smoke(benchmark):
    """`make ci` acceptance bar: a short seeded churn trace must replay with
    zero dropped events and the incremental context must actually get hits."""
    job, base, env = churn_setup()
    report = benchmark.pedantic(
        lambda: replay_churn(env, job, base, num_events=120,
                             duration_s=2 * 3600.0),
        rounds=1, iterations=1)
    assert report.events_dropped == 0
    assert report.cache_hits > 0
    assert report.replans_warm > 0


def test_bench_planner_churn_1000_events(benchmark):
    """Sustained replanning under heavy churn: 1000 events over three pools.

    The recorded metric is the whole replay's wall time; the derived
    replanning throughput, tail replan latency, and warm-replan fraction
    are printed alongside so BENCH_history picks up a comparable point.
    "bench_planner" in the name puts this under compare_bench's default
    regression gate; `make ci`'s smoke filter excludes it (``not 1000``).
    """
    job, base, env = churn_setup()
    report = benchmark.pedantic(
        lambda: replay_churn(env, job, base, num_events=1000,
                             duration_s=8 * 3600.0),
        rounds=1, iterations=1)
    assert report.events_total == 1000
    assert report.events_dropped == 0
    assert report.replans_warm > 0
    print()
    print(f"replans:            {report.replans}")
    print(f"plans/s:            {report.plans_per_s:.1f}")
    print(f"replan p50 latency: {report.p50_replan_latency_s * 1e3:.1f} ms")
    print(f"replan p99 latency: {report.p99_replan_latency_s * 1e3:.1f} ms")
    print(f"warm replans:       {report.percent_replans_warm:.0%}"
          f" ({report.cache_hits} cache hits)")
    print(f"shrinks/parks:      {report.shrinks}/{report.parks}")
    print(f"reconfig overhead:  "
          f"{report.reconfiguration_overhead_fraction:.2%} of productive "
          f"time ({report.reconfiguration_time_s:.0f}s pauses + "
          f"{report.rollback_lost_time_s:.0f}s redone after rollback)")
    # Steady-state acceptance bar: under heavy churn (1000 events / 8h is
    # one fault every ~29s, far past realistic spot churn) the replanning
    # stack must keep the throughput lost to reconfiguration -- pauses plus
    # training redone after rollbacks -- bounded.  The deterministic replay
    # measures ~37% on this trace; a thrashing policy (switching on every
    # flap) or a rollback storm blows well past this loose bound.
    assert report.reconfiguration_overhead_fraction < 0.50
