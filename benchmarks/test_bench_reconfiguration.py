"""Benchmark regenerating Section 5.5: reconfiguration overhead breakdown.

Runs the corresponding experiment harness (``repro.experiments.reconfiguration``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_reconfiguration(benchmark, bench_scale):
    table = run_experiment(benchmark, "reconfiguration", bench_scale)
    assert table.rows
