"""Benchmark regenerating Section 5.3: planner scalability study.

Runs the corresponding experiment harness (``repro.experiments.scalability``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_scalability(benchmark, bench_scale):
    table = run_experiment(benchmark, "scalability", bench_scale)
    assert table.rows
