"""Benchmark regenerating Table 1: planner capabilities and search time.

Runs the corresponding experiment harness (``repro.experiments.table1``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_table1(benchmark, bench_scale):
    table = run_experiment(benchmark, "table1", bench_scale)
    assert table.rows
