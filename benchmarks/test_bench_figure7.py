"""Benchmark regenerating Figure 7: planner throughput on homogeneous A100 clusters.

Runs the corresponding experiment harness (``repro.experiments.figure7``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure7(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure7", bench_scale)
    assert table.rows
