"""Benchmark regenerating Ablations of Sailor design choices (DESIGN.md).

Runs the corresponding experiment harness (``repro.experiments.ablations``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_ablations(benchmark, bench_scale):
    table = run_experiment(benchmark, "ablations", bench_scale)
    assert table.rows
