"""Benchmark regenerating Figure 14: maximise throughput under a budget constraint.

Runs the corresponding experiment harness (``repro.experiments.figure14``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure14(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure14", bench_scale)
    assert table.rows
