"""Benchmark regenerating Figure 3: peak-memory estimates vs. real footprint.

Runs the corresponding experiment harness (``repro.experiments.figure3``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure3(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure3", bench_scale)
    assert table.rows
