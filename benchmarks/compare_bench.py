#!/usr/bin/env python3
"""Diff two ``pytest-benchmark`` JSON outputs and flag regressions.

Intended CI guard for the planner hot path::

    make bench BENCH_OUT=BENCH_new.json          # current tree
    python benchmarks/compare_bench.py BENCH_seed.json BENCH_new.json

Benchmarks present in both files are matched by name and compared on their
**median-of-rounds** time (the min is printed alongside): this machine
shows multi-second run-to-run swings on single recordings of the budget
benches, and the median over the raised round counts is what keeps the
gate from tripping on scheduler noise rather than real regressions (the
mean folds cold first rounds in; the min hides steady-state slowdowns).
The exit code is non-zero when any benchmark whose name matches
``--filter`` -- a comma-separated list of substrings, any match gates; the
default covers the planner end-to-end benchmarks *and* the simulator
micro-benchmarks (evaluation, memory estimation, reference simulation) --
regresses by more than ``--threshold`` (default 20%).  Non-matching
benchmarks are still printed so drifts elsewhere stay visible, but they do
not fail the run.

Only the standard library is used, so the script runs anywhere the JSON
files do.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_stats(path: str) -> dict[str, dict[str, float]]:
    """Benchmark name -> {median, min, rounds} from a benchmark JSON file.

    Falls back to the mean when a file predates the median recording (it
    is then both the compared and the printed-alongside figure).  The one
    loader is shared with ``bench_history.py`` so the gated figures and
    the recorded trajectory can never disagree about what "median" means.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    loaded: dict[str, dict[str, float]] = {}
    for bench in document.get("benchmarks", []):
        stats = bench.get("stats", {})
        median = stats.get("median", stats.get("mean"))
        if median is None:
            continue
        loaded[bench["name"]] = {
            "median": float(median),
            "min": float(stats.get("min", median)),
            "rounds": int(stats.get("rounds", 0)),
        }
    return loaded


#: Scale points gated behind ``BENCH_SCALE=full`` (``make bench``); the
#: smoke subset never runs them, so their absence from one side of a
#: comparison is a scale difference, not a dropped/added benchmark.
FULL_SCALE_MARKERS = ("_1024_", "_2048_", "_4096_", "_8192_")


def is_full_scale_only(name: str) -> bool:
    """True for benches that only run under ``BENCH_SCALE=full``."""
    return any(marker in name for marker in FULL_SCALE_MARKERS)


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.1f}ms"
    return f"{seconds:8.2f}s "


def compare(baseline: dict[str, dict[str, float]],
            candidate: dict[str, dict[str, float]],
            threshold: float, name_filter: str) -> int | None:
    """Print the comparison table; return the number of gated regressions,
    or ``None`` when the files share no benchmarks at all."""
    names = sorted(set(baseline) & set(candidate))
    if not names:
        print("no common benchmarks between the two files", file=sys.stderr)
        return None

    # An empty filter gates every benchmark (the pre-comma-split behaviour
    # of the '' substring); it must not silently gate nothing.
    filters = [part for part in name_filter.split(",") if part] or [""]
    regressions = 0
    print(f"{'benchmark':<48} {'base med':>10} {'cur med':>10} "
          f"{'ratio':>7} {'min ratio':>9}  verdict")
    print("-" * 98)
    for name in names:
        old = baseline[name]["median"]
        new = candidate[name]["median"]
        ratio = new / old if old > 0 else float("inf")
        old_min = baseline[name]["min"]
        min_ratio = (candidate[name]["min"] / old_min if old_min > 0
                     else float("inf"))
        gated = any(part in name for part in filters)
        if gated and ratio > 1.0 + threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            regressions += 1
        elif ratio > 1.0 + threshold:
            verdict = "slower (not gated)"
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<48} {format_seconds(old)} {format_seconds(new)} "
              f"{ratio:>6.2f}x {min_ratio:>8.2f}x  {verdict}")

    missing = sorted(set(baseline) - set(candidate))
    missing_full = [name for name in missing if is_full_scale_only(name)]
    missing = [name for name in missing if not is_full_scale_only(name)]
    if missing:
        print(f"\nnot in current run: {', '.join(missing)}")
    if missing_full:
        # A smoke-scale candidate compared against a full-scale baseline:
        # the BENCH_SCALE=full-only points are absent by construction, not
        # dropped benchmarks.
        print("\nfull-scale-only benches absent from this run "
              "(informational, need BENCH_SCALE=full): "
              + ", ".join(missing_full))
    added = sorted(set(candidate) - set(baseline))
    added_full = [name for name in added if is_full_scale_only(name)]
    added = [name for name in added if not is_full_scale_only(name)]
    if added:
        # New scale points (e.g. a freshly added 128-GPU budget bench) have
        # no baseline to gate against yet; print them with their time so
        # the first recorded run is still visible in the CI log.
        print("\nnew in current run (not gated):")
        for name in added:
            print(f"  {name:<46} {format_seconds(candidate[name]['median'])}")
    if added_full:
        # The converse: a full-scale run against a smoke-scale baseline.
        # These are a different BENCH_SCALE, not new benchmarks.
        print("\nfull-scale-only benches without a baseline "
              "(informational, baseline was not BENCH_SCALE=full):")
        for name in added_full:
            print(f"  {name:<46} {format_seconds(candidate[name]['median'])}")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when planner micro-benchmarks regress between two "
                    "pytest-benchmark JSON files (median-of-rounds).")
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative slowdown before failing "
                             "(default: 0.20 = 20%%)")
    parser.add_argument("--filter",
                        default="bench_planner,bench_simulator_evaluate,"
                                "bench_memory_estimator,"
                                "bench_reference_simulator",
                        help="comma-separated substrings selecting the gated "
                             "benchmarks (default: planner end-to-end plus "
                             "the simulator micro-benchmarks)")
    args = parser.parse_args(argv)

    baseline = load_stats(args.baseline)
    candidate = load_stats(args.candidate)
    regressions = compare(baseline, candidate, args.threshold, args.filter)
    if regressions is None:
        return 1  # nothing comparable: fail, but not as a "regression"
    if regressions:
        print(f"\n{regressions} gated benchmark(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
