#!/usr/bin/env python3
"""Diff two ``pytest-benchmark`` JSON outputs and flag regressions.

Intended CI guard for the planner hot path::

    make bench BENCH_OUT=BENCH_new.json          # current tree
    python benchmarks/compare_bench.py BENCH_seed.json BENCH_new.json

Benchmarks present in both files are matched by name and compared on their
mean time.  The exit code is non-zero when any benchmark whose name matches
``--filter`` -- a comma-separated list of substrings, any match gates; the
default covers the planner end-to-end benchmarks *and* the simulator
micro-benchmarks (evaluation, memory estimation, reference simulation) --
regresses by more than ``--threshold`` (default 20%).  Non-matching
benchmarks are still printed so drifts elsewhere stay visible, but they do
not fail the run.

Only the standard library is used, so the script runs anywhere the JSON
files do.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON file."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    means: dict[str, float] = {}
    for bench in document.get("benchmarks", []):
        stats = bench.get("stats", {})
        mean = stats.get("mean")
        if mean is not None:
            means[bench["name"]] = float(mean)
    return means


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.1f}ms"
    return f"{seconds:8.2f}s "


def compare(baseline: dict[str, float], candidate: dict[str, float],
            threshold: float, name_filter: str) -> int | None:
    """Print the comparison table; return the number of gated regressions,
    or ``None`` when the files share no benchmarks at all."""
    names = sorted(set(baseline) & set(candidate))
    if not names:
        print("no common benchmarks between the two files", file=sys.stderr)
        return None

    # An empty filter gates every benchmark (the pre-comma-split behaviour
    # of the '' substring); it must not silently gate nothing.
    filters = [part for part in name_filter.split(",") if part] or [""]
    regressions = 0
    print(f"{'benchmark':<48} {'baseline':>10} {'current':>10} "
          f"{'ratio':>7}  verdict")
    print("-" * 88)
    for name in names:
        old = baseline[name]
        new = candidate[name]
        ratio = new / old if old > 0 else float("inf")
        gated = any(part in name for part in filters)
        if gated and ratio > 1.0 + threshold:
            verdict = f"REGRESSION (> {threshold:.0%})"
            regressions += 1
        elif ratio > 1.0 + threshold:
            verdict = "slower (not gated)"
        elif ratio < 1.0 - threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<48} {format_seconds(old)} {format_seconds(new)} "
              f"{ratio:>6.2f}x  {verdict}")

    missing = sorted(set(baseline) - set(candidate))
    if missing:
        print(f"\nnot in current run: {', '.join(missing)}")
    added = sorted(set(candidate) - set(baseline))
    if added:
        # New scale points (e.g. a freshly added 1024-GPU bench) have no
        # baseline to gate against yet; print them with their time so the
        # first recorded run is still visible in the CI log.
        print("\nnew in current run (not gated):")
        for name in added:
            print(f"  {name:<46} {format_seconds(candidate[name])}")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when planner micro-benchmarks regress between two "
                    "pytest-benchmark JSON files.")
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed relative slowdown before failing "
                             "(default: 0.20 = 20%%)")
    parser.add_argument("--filter",
                        default="bench_planner,bench_simulator_evaluate,"
                                "bench_memory_estimator,"
                                "bench_reference_simulator",
                        help="comma-separated substrings selecting the gated "
                             "benchmarks (default: planner end-to-end plus "
                             "the simulator micro-benchmarks)")
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    candidate = load_means(args.candidate)
    regressions = compare(baseline, candidate, args.threshold, args.filter)
    if regressions is None:
        return 1  # nothing comparable: fail, but not as a "regression"
    if regressions:
        print(f"\n{regressions} gated benchmark(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
