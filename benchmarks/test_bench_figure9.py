"""Benchmark regenerating Figure 9: heterogeneous A100+V100 clusters, GPT-Neo-2.7B.

Runs the corresponding experiment harness (``repro.experiments.figure9``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_figure9(benchmark, bench_scale):
    table = run_experiment(benchmark, "figure9", bench_scale)
    assert table.rows
