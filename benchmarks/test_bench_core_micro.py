"""Micro-benchmarks of the core library primitives.

Unlike the per-figure benchmarks (which regenerate the paper's tables once),
these run the hot paths of the library -- profiling, plan evaluation, the
reference simulator, the DP solver and the full planner -- for several
rounds, so `pytest-benchmark` reports meaningful statistics.  They are the
numbers to watch when optimising the planner (paper Tables 1-3 all hinge on
planner latency).
"""

from __future__ import annotations

import os

import pytest

from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan
from repro.core.planner import SailorPlanner
from repro.core.simulator import (
    MemoryEstimator,
    ReferenceSimulator,
    SailorSimulator,
    build_environment,
)
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec
from repro.profiler.compute import ComputeProfiler
from repro.hardware.gpus import get_gpu
from repro.runtime.comm_groups import build_rank_topology


@pytest.fixture(scope="module")
def job():
    return TrainingJobSpec(model=get_model("OPT-350M"), global_batch_size=512)


@pytest.fixture(scope="module")
def topology():
    return ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 8, "n1-standard-v100-4": 8})


@pytest.fixture(scope="module")
def env(job, topology):
    return build_environment(job, topology)


@pytest.fixture(scope="module")
def plan(job):
    return ParallelizationPlan.homogeneous(job, "a2-highgpu-4g",
                                           pipeline_parallel=4, data_parallel=4,
                                           tensor_parallel=2, microbatch_size=2)


def test_bench_profile_one_gpu_type(benchmark, job):
    """Simulated single-node profiling of one GPU type (section 4.1)."""
    profiler = ComputeProfiler()
    gpu = get_gpu("A100-40")
    profile = benchmark(lambda: profiler.profile(job, gpu,
                                                 microbatch_sizes=[1, 2, 4, 8],
                                                 tensor_parallel_degrees=[1, 2, 4]))
    assert profile.layer_times


def test_bench_environment_build(benchmark, job, topology):
    """Full profiling pass: every GPU type + every network pair."""
    env = benchmark(lambda: build_environment(job, topology))
    assert env.profiles.gpu_types()


def test_bench_simulator_evaluate(benchmark, env, plan):
    """One plan evaluation (memory + timing + cost) -- the planner inner loop.

    Measures the production path: the vectorized kernels plus the
    per-plan-signature evaluation cache (repeat evaluations are hits).
    """
    simulator = SailorSimulator(env)
    evaluation = benchmark(lambda: simulator.evaluate(plan))
    assert evaluation.is_valid


def test_bench_simulator_evaluate_uncached(benchmark, env, plan):
    """The cold fused pass: vectorized evaluation with plan caches disabled."""
    simulator = SailorSimulator(env, cache_evaluations=False, cache_plans=False)
    evaluation = benchmark(lambda: simulator.evaluate(plan))
    assert evaluation.is_valid


def test_bench_simulator_evaluate_scalar(benchmark, env, plan):
    """The retained scalar reference path (equivalence baseline)."""
    simulator = SailorSimulator(env, vectorized=False)
    evaluation = benchmark(lambda: simulator.evaluate(plan))
    assert evaluation.is_valid


def test_bench_memory_estimator(benchmark, env, plan):
    """Per-worker peak-memory estimation for a 32-GPU plan."""
    estimator = MemoryEstimator(env)
    peaks = benchmark(lambda: estimator.stage_peaks(plan))
    assert len(peaks) == plan.pipeline_parallel


def test_bench_reference_simulator(benchmark, env, plan):
    """Event-driven 1F1B reference simulation of one iteration."""
    reference = ReferenceSimulator(env)
    measured = benchmark(lambda: reference.measure(plan))
    assert measured.iteration_time_s > 0


def test_bench_comm_group_construction(benchmark, plan):
    """Building the heterogeneous rank topology of a 32-GPU plan."""
    groups = benchmark(lambda: build_rank_topology(plan))
    assert groups.world_size == plan.total_gpus


def test_bench_planner_homogeneous_32_a100(benchmark, job):
    """Sailor planner end-to-end on 32 homogeneous A100s (Table 1 row).

    This point is only ~30ms, so a cold round and scheduler noise swamp a
    3-round mean; ten rounds after one warmup keep the 20% regression gate
    meaningful.
    """
    topology = ClusterTopology.homogeneous("a2-highgpu-4g", 8)
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=10, iterations=1, warmup_rounds=1)
    assert result.found


def test_bench_planner_heterogeneous_64_gpus(benchmark, job, topology, env):
    """Sailor planner end-to-end on 32 A100 + 32 V100 (Figure 8 small point).

    Three rounds (first one cold) so the recorded mean is stable enough for
    the 20% regression gate on noisy machines.
    """
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=3, iterations=1)
    assert result.found
    assert result.search_stats.nodes_explored > 0


def test_bench_planner_heterogeneous_128_gpus(benchmark, job):
    """Sailor planner on 64 A100 + 64 V100 (Figure 8 mid point, 128 GPUs).

    Three rounds (like every sub-1024 scale point): single-round
    recordings of these seconds-long calls swing 10-25% run to run on
    this box, and the compare gate reads the median-of-rounds.
    """
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 16, "n1-standard-v100-4": 16})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=3, iterations=1)
    assert result.found


def test_bench_planner_heterogeneous_256_gpus(benchmark, job):
    """Sailor planner on 128 A100 + 128 V100 (Figure 8 scale-out, 256 GPUs).

    Three rounds for a stable median (see the 128-GPU point).
    """
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 32, "n1-standard-v100-4": 32})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=3, iterations=1)
    assert result.found
    # `make ci` acceptance bar: cost-bound-driven candidate scheduling must
    # actually kill unexplored tails at this scale -- a disarmed ordering
    # path (bounds silently inf, toggle wired wrong) fails here rather
    # than showing up only as a latency drift.
    assert result.search_stats.candidates_killed_unevaluated > 0


def test_bench_planner_heterogeneous_256_gpus_min_cost(benchmark, job):
    """Min-cost search on the 256-GPU mixed pool.

    The cost objective is where the dominated-family interval memo bites:
    family cost floors (D x rate x time) discriminate much harder than
    time floors, so whole (P, mbs) families are skipped before any
    forward build.  Three rounds for a stable median.
    """
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 32, "n1-standard-v100-4": 32})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.min_cost()),
        rounds=3, iterations=1)
    assert result.found
    # `make ci` acceptance bar (checked in the tier-1 phase, like the
    # 256-GPU tail-kill gate above): the dominated-family interval memo
    # must actually skip whole (P, mbs) families at this scale -- a
    # silently-disarmed family gate (floors inf, memo keyed wrong) fails
    # here rather than showing up only as a latency drift.
    assert result.search_stats.families_skipped > 0


def test_bench_planner_heterogeneous_512_gpus(benchmark, job):
    """Sailor planner on 256 A100 + 256 V100 (Figure 8 max point, 512 GPUs).

    The paper's largest scale: the DP node count grows with zones x node
    types x data-parallel degree, so this is the point the resource-state
    engine (array-encoded states + precomputed combo tables) targets.
    Three rounds for a stable median (see the 128-GPU point); only the
    1024-GPU point stays single-round for bench wall time.
    """
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 64, "n1-standard-v100-4": 64})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=3, iterations=1)
    assert result.found


@pytest.mark.skipif(os.environ.get("BENCH_SCALE", "smoke") != "full",
                    reason="1024-GPU point runs only under BENCH_SCALE=full "
                           "(make bench sets it; make ci's smoke subset "
                           "stays fast)")
def test_bench_planner_heterogeneous_1024_gpus(benchmark, job):
    """Sailor planner on 512 A100 + 512 V100 -- beyond the paper's Figure 8.

    This is the scale point the chunked, hash-deduped forward broadcasts
    target: state layers reach ~1.7e4 states, past np.unique-on-bytes
    comfort, and the (N x M x S) fit test would peak well over the chunked
    path's bound without the state-axis chunking.
    """
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 128, "n1-standard-v100-4": 128})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=1, iterations=1)
    assert result.found


@pytest.mark.skipif(os.environ.get("BENCH_SCALE", "smoke") != "full",
                    reason="2048-GPU point runs only under BENCH_SCALE=full")
def test_bench_planner_heterogeneous_2048_gpus(benchmark, job):
    """Sailor planner on 1024 A100 + 1024 V100 -- 2x beyond the paper.

    First beyond-1024 scale point, enabled by the shared backward argmin
    skeletons (the per-candidate argmin reductions dominated the 1024-GPU
    profile) and the candidate-ordering tail kills.  The mixed-radix state
    packing stays exact well past this scale (~2^63 budget)."""
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 256, "n1-standard-v100-4": 256})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=1, iterations=1)
    assert result.found
    assert result.search_stats.candidates_killed_unevaluated > 0


@pytest.mark.skipif(os.environ.get("BENCH_SCALE", "smoke") != "full",
                    reason="4096-GPU point runs only under BENCH_SCALE=full")
def test_bench_planner_heterogeneous_4096_gpus(benchmark, job):
    """Sailor planner on 2048 A100 + 2048 V100 -- 4x beyond the paper.

    The current ceiling of the recorded scaling trajectory; single round,
    like every full-scale-only point."""
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 512, "n1-standard-v100-4": 512})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=1, iterations=1)
    assert result.found
    assert result.search_stats.candidates_killed_unevaluated > 0


@pytest.mark.skipif(os.environ.get("BENCH_SCALE", "smoke") != "full",
                    reason="8192-GPU point runs only under BENCH_SCALE=full")
def test_bench_planner_heterogeneous_8192_gpus(benchmark, job):
    """Sailor planner on 4096 A100 + 4096 V100 -- 8x beyond the paper.

    The first point past the enumeration wall: it is reachable because
    the fused combine kernel takes the inner elementwise pass off the
    backward profile and the candidate tail kills run on
    availability-aware floors.  Single round, like every full-scale-only
    point."""
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 1024, "n1-standard-v100-4": 1024})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, Objective.max_throughput()),
        rounds=1, iterations=1)
    assert result.found
    assert result.search_stats.candidates_killed_unevaluated > 0


def test_bench_planner_budget_constrained_64_gpus(benchmark, job, topology, env):
    """Budget-constrained search on the mixed cluster (Table 3's slow case).

    The budget is ~70% of the unconstrained optimum's cost, so it binds and
    exercises the straggler-approximation loop of section 4.2.3.  Three
    rounds: single-round recordings of the budget benches swing by whole
    seconds on this box, and the compare gate reads the median-of-rounds.
    """
    planner = SailorPlanner(env)
    objective = Objective.max_throughput(max_cost_per_iteration_usd=0.031)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, objective),
        rounds=3, iterations=1)
    assert result.found
    assert result.evaluation.cost_per_iteration_usd <= 0.031
    # `make ci` acceptance bar (this point is in the smoke subset): the
    # straggler convergence certificates must actually fire on a binding
    # budget.  Since the budget-aware dispatch threshold
    # (``engine_min_states_budget``) this pool (~81 root states) runs on
    # the engine path -- measured faster than the scalar recursion here,
    # see the dp_solver dispatch decision table.
    assert result.search_stats.suffix_certified > 0
    assert result.search_stats.suffix_iterations > 0


def test_bench_planner_budget_constrained_128_gpus(benchmark, job):
    """Budget-constrained search at engine scale (128 GPUs, ~70% budget).

    The scenario the straggler convergence certificates target: at this
    scale the engine and batched budget threading engage, and before the
    certificates ~1.8M scalar ``_solve_suffix`` iterations per call --
    almost all proving suffix budgets infeasible one solve at a time --
    dominated the profile.  Three rounds; the gate reads the median.
    """
    topology = ClusterTopology.single_zone("us-central1-a", {
        "a2-highgpu-4g": 16, "n1-standard-v100-4": 16})
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    objective = Objective.max_throughput(max_cost_per_iteration_usd=0.0364)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, objective),
        rounds=3, iterations=1)
    assert result.found
    assert result.evaluation.cost_per_iteration_usd <= 0.0364
    # Engine-scale certificates: resolved in-layer, not via scalar fallback.
    assert result.search_stats.suffix_certified > 0
    # `make ci` acceptance bar: the ordering tail kill must arm on the
    # binding-budget search too (the kill compares iteration-time floors
    # against the budget incumbent's iteration time).
    assert result.search_stats.candidates_killed_unevaluated > 0


def test_bench_planner_budget_constrained_geo_64_gpus(benchmark, job):
    """Budget-constrained search over two zones (Table 3, geo flavour).

    The budget (~70% of the unconstrained optimum) binds, and cross-zone
    plans carry egress the DP's compute-only cost model cannot see -- this
    is the scenario where the egress-covering ``cost_floor`` arms the
    candidate gate under a budget objective.  Three rounds for a stable
    median (see the single-zone bench).
    """
    topology = ClusterTopology(nodes={
        "us-central1-a": {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4},
        "us-central1-b": {"a2-highgpu-4g": 4, "n1-standard-v100-4": 4},
    })
    env = build_environment(job, topology)
    planner = SailorPlanner(env)
    objective = Objective.max_throughput(max_cost_per_iteration_usd=0.0614)
    result = benchmark.pedantic(
        lambda: planner.plan(job, topology, objective),
        rounds=3, iterations=1)
    assert result.found
    assert result.evaluation.cost_per_iteration_usd <= 0.0614
    # The acceptance bar for the cost floor: the candidate gate must
    # actually arm (skip full evaluations) under a binding budget.
    assert result.search_stats.gate_skips > 0
