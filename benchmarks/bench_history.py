#!/usr/bin/env python3
"""Append a one-line summary of a benchmark run to ``BENCH_history.jsonl``.

``make bench`` calls this after recording ``BENCH_new.json``, so the perf
trajectory across PRs is machine-readable (one JSON object per recorded
run: git revision, timestamp, and the median/min seconds of every
benchmark) instead of living only in ROADMAP prose::

    python benchmarks/bench_history.py BENCH_new.json --history BENCH_history.jsonl

Appends exactly one line per invocation; the file is newline-delimited
JSON, so ``jq``/pandas can read the whole trajectory directly.  Only the
standard library is used.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import subprocess
import sys

# Share compare_bench.py's loader (median/mean fallback rules) so the
# recorded trajectory and the CI gate can never disagree about what
# "median" means; the path insert keeps the import working both as a
# script and when the module is loaded from a file by the tests.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from compare_bench import load_stats  # noqa: E402


def git_revision() -> str:
    """Short git revision of the working tree, or ``unknown`` outside git."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def summarize(bench_path: str, scale: str = "unknown") -> dict:
    """One history record: revision, UTC timestamp, scale, medians.

    ``scale`` records the ``BENCH_SCALE`` the run was recorded under, so a
    full-scale trajectory (with the 1024..8192-GPU points) is never read
    side by side with a smoke run of the same benches.
    """
    benches = {
        name: {
            "median_s": round(stats["median"], 6),
            "min_s": round(stats["min"], 6),
            "rounds": stats["rounds"],
        }
        for name, stats in load_stats(bench_path).items()
    }
    return {
        "rev": git_revision(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "source": bench_path,
        "scale": scale,
        "benches": benches,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Append one benchmark-run summary line to the history "
                    "file.")
    parser.add_argument("bench_json", help="pytest-benchmark JSON to record")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="newline-delimited JSON history file to append "
                             "to (default: BENCH_history.jsonl)")
    parser.add_argument("--scale",
                        default=os.environ.get("BENCH_SCALE", "unknown"),
                        help="BENCH_SCALE the run was recorded under "
                             "(default: $BENCH_SCALE, else 'unknown'); "
                             "stamped on the record so full-scale and "
                             "smoke trajectories never mix")
    args = parser.parse_args(argv)

    record = summarize(args.bench_json, scale=args.scale)
    if not record["benches"]:
        print(f"no benchmarks found in {args.bench_json}", file=sys.stderr)
        return 1
    with open(args.history, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"recorded {len(record['benches'])} benches at {record['rev']} "
          f"-> {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
