"""Benchmark regenerating Table 3: Sailor search-time breakdown.

Runs the corresponding experiment harness (``repro.experiments.table3``) once
and prints the table the paper reports.  See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.
"""

from conftest import run_experiment


def test_bench_table3(benchmark, bench_scale):
    table = run_experiment(benchmark, "table3", bench_scale)
    assert table.rows
