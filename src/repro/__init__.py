"""repro: a reproduction of Sailor (SOSP 2025).

Sailor automates distributed training over dynamic, heterogeneous and
geo-distributed clusters.  This package reimplements the full system in
Python: the profiler, the simulator, the planner, an elastic training
runtime (as a discrete-event simulation), the baseline planners it is
compared against, and the experiment harnesses for every figure and table in
the paper's evaluation.

Quickstart::

    from repro import (
        TrainingJobSpec, get_model, ClusterTopology,
        build_environment, SailorPlanner, Objective,
    )

    job = TrainingJobSpec(model=get_model("OPT-350M"))
    topology = ClusterTopology.homogeneous("a2-highgpu-4g", num_nodes=8)
    env = build_environment(job, topology)
    result = SailorPlanner(env).plan(job, topology, Objective.max_throughput())
    print(result.plan.describe())
"""

from repro.core import (
    Objective,
    OptimizationGoal,
    Constraint,
    ParallelizationPlan,
    PlannerResult,
    PlanEvaluation,
    SailorPlanner,
    SailorSimulator,
    StageConfig,
    StageReplica,
)
from repro.core.simulator import ReferenceSimulator, build_environment
from repro.hardware import (
    AvailabilityTrace,
    AvailabilityTraceGenerator,
    ClusterTopology,
    GPUSpec,
    NodeSpec,
    QuotaSet,
    get_gpu,
    get_node_type,
)
from repro.models import TrainingJobSpec, TransformerModelSpec, get_model
from repro.runtime import ElasticTrainingSession, TrainingController

__version__ = "1.0.0"

__all__ = [
    "Objective",
    "OptimizationGoal",
    "Constraint",
    "ParallelizationPlan",
    "PlannerResult",
    "PlanEvaluation",
    "SailorPlanner",
    "SailorSimulator",
    "StageConfig",
    "StageReplica",
    "ReferenceSimulator",
    "build_environment",
    "AvailabilityTrace",
    "AvailabilityTraceGenerator",
    "ClusterTopology",
    "GPUSpec",
    "NodeSpec",
    "QuotaSet",
    "get_gpu",
    "get_node_type",
    "TrainingJobSpec",
    "TransformerModelSpec",
    "get_model",
    "ElasticTrainingSession",
    "TrainingController",
    "__version__",
]
