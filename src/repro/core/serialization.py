"""JSON (de)serialisation of plans, evaluations and planner results.

The Sailor controller broadcasts the chosen plan and rank topology to every
worker over gRPC (paper section 5.5), and operators want to archive what was
deployed and why.  This module provides a stable, versioned JSON encoding
for the plan datatypes so they can cross process boundaries, be stored next
to checkpoints, and be diffed between reconfigurations.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.plan import (
    ParallelizationPlan,
    PlanEvaluation,
    PlannerResult,
    SearchStats,
    StageConfig,
    StageReplica,
)
from repro.models.catalog import get_model
from repro.models.partition import LayerPartition
from repro.models.spec import TrainingJobSpec


#: Format version written into every document; bump on breaking changes.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def job_to_dict(job: TrainingJobSpec) -> dict[str, Any]:
    """Encode a training-job spec (the model is referenced by name)."""
    return {
        "model": job.model.name,
        "global_batch_size": job.global_batch_size,
        "sequence_length": job.sequence_length,
        "optimizer": job.optimizer,
        "dtype": job.dtype,
        "activation_checkpointing": job.activation_checkpointing,
    }


def replica_to_dict(replica: StageReplica) -> dict[str, Any]:
    """Encode one stage replica."""
    return {
        "node_type": replica.node_type,
        "tensor_parallel": replica.tensor_parallel,
        "zone": replica.zone,
    }


def stage_to_dict(stage: StageConfig) -> dict[str, Any]:
    """Encode one pipeline stage (partition + replicas)."""
    partition = stage.partition
    return {
        "stage_index": partition.stage_index,
        "num_stages": partition.num_stages,
        "first_layer": partition.first_layer,
        "num_layers": partition.num_layers,
        "has_embedding": partition.has_embedding,
        "has_lm_head": partition.has_lm_head,
        "replicas": [replica_to_dict(r) for r in stage.replicas],
    }


def plan_to_dict(plan: ParallelizationPlan) -> dict[str, Any]:
    """Encode a full parallelization plan."""
    return {
        "format_version": FORMAT_VERSION,
        "job": job_to_dict(plan.job),
        "microbatch_size": plan.microbatch_size,
        "stages": [stage_to_dict(s) for s in plan.stages],
    }


def evaluation_to_dict(evaluation: PlanEvaluation) -> dict[str, Any]:
    """Encode a simulator evaluation."""
    return {
        "iteration_time_s": evaluation.iteration_time_s,
        "throughput_iters_per_s": evaluation.throughput_iters_per_s,
        "cost_per_iteration_usd": evaluation.cost_per_iteration_usd,
        "compute_cost_usd": evaluation.compute_cost_usd,
        "communication_cost_usd": evaluation.communication_cost_usd,
        "peak_memory_bytes_per_stage": list(evaluation.peak_memory_bytes_per_stage),
        "is_valid": evaluation.is_valid,
        "oom_stages": list(evaluation.oom_stages),
        "pipeline_time_s": evaluation.pipeline_time_s,
        "sync_time_s": evaluation.sync_time_s,
        "update_time_s": evaluation.update_time_s,
        "straggler_stage": evaluation.straggler_stage,
    }


def result_to_dict(result: PlannerResult) -> dict[str, Any]:
    """Encode a planner result (plan may be absent when nothing was found)."""
    return {
        "format_version": FORMAT_VERSION,
        "planner_name": result.planner_name,
        "search_time_s": result.search_time_s,
        "candidates_evaluated": result.candidates_evaluated,
        "oom_plans_generated": result.oom_plans_generated,
        "notes": result.notes,
        "complete": result.complete,
        "optimality_gap_bound": result.optimality_gap_bound,
        "incomplete_branches": list(result.incomplete_branches),
        "search_stats": result.search_stats.as_dict(),
        "plan": plan_to_dict(result.plan) if result.plan is not None else None,
        "evaluation": (evaluation_to_dict(result.evaluation)
                       if result.evaluation is not None else None),
    }


def plan_to_json(plan: ParallelizationPlan, *, indent: int | None = 2) -> str:
    """Encode a plan as a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=True)


def result_to_json(result: PlannerResult, *, indent: int | None = 2) -> str:
    """Encode a planner result as a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def job_from_dict(data: dict[str, Any]) -> TrainingJobSpec:
    """Decode a training-job spec (the model must exist in the catalog)."""
    return TrainingJobSpec(
        model=get_model(data["model"]),
        global_batch_size=int(data["global_batch_size"]),
        sequence_length=int(data["sequence_length"]),
        optimizer=data.get("optimizer", "adam"),
        dtype=data.get("dtype", "fp16"),
        activation_checkpointing=bool(data.get("activation_checkpointing", False)),
    )


def replica_from_dict(data: dict[str, Any]) -> StageReplica:
    """Decode one stage replica."""
    return StageReplica(node_type=data["node_type"],
                        tensor_parallel=int(data["tensor_parallel"]),
                        zone=data["zone"])


def stage_from_dict(data: dict[str, Any]) -> StageConfig:
    """Decode one pipeline stage."""
    partition = LayerPartition(
        stage_index=int(data["stage_index"]),
        num_stages=int(data["num_stages"]),
        first_layer=int(data["first_layer"]),
        num_layers=int(data["num_layers"]),
        has_embedding=bool(data["has_embedding"]),
        has_lm_head=bool(data["has_lm_head"]),
    )
    replicas = [replica_from_dict(r) for r in data["replicas"]]
    return StageConfig(partition=partition, replicas=replicas)


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("format_version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"document format version {version} is newer than supported "
            f"({FORMAT_VERSION})")


def plan_from_dict(data: dict[str, Any]) -> ParallelizationPlan:
    """Decode a plan; validation of the plan invariants happens on build."""
    _check_version(data)
    job = job_from_dict(data["job"])
    stages = [stage_from_dict(s) for s in data["stages"]]
    return ParallelizationPlan(job=job, stages=stages,
                               microbatch_size=int(data["microbatch_size"]))


def plan_from_json(text: str) -> ParallelizationPlan:
    """Decode a plan from a JSON string."""
    return plan_from_dict(json.loads(text))


def evaluation_from_dict(data: dict[str, Any]) -> PlanEvaluation:
    """Decode a simulator evaluation."""
    return PlanEvaluation(
        iteration_time_s=float(data["iteration_time_s"]),
        throughput_iters_per_s=float(data["throughput_iters_per_s"]),
        cost_per_iteration_usd=float(data["cost_per_iteration_usd"]),
        peak_memory_bytes_per_stage=[float(x) for x in
                                     data["peak_memory_bytes_per_stage"]],
        is_valid=bool(data["is_valid"]),
        oom_stages=[int(x) for x in data.get("oom_stages", [])],
        compute_cost_usd=float(data.get("compute_cost_usd", 0.0)),
        communication_cost_usd=float(data.get("communication_cost_usd", 0.0)),
        pipeline_time_s=float(data.get("pipeline_time_s", 0.0)),
        sync_time_s=float(data.get("sync_time_s", 0.0)),
        update_time_s=float(data.get("update_time_s", 0.0)),
        straggler_stage=int(data.get("straggler_stage", 0)),
    )


def result_from_dict(data: dict[str, Any]) -> PlannerResult:
    """Decode a planner result."""
    _check_version(data)
    plan = plan_from_dict(data["plan"]) if data.get("plan") else None
    evaluation = (evaluation_from_dict(data["evaluation"])
                  if data.get("evaluation") else None)
    return PlannerResult(
        plan=plan,
        evaluation=evaluation,
        search_time_s=float(data["search_time_s"]),
        planner_name=data.get("planner_name", "unknown"),
        candidates_evaluated=int(data.get("candidates_evaluated", 0)),
        oom_plans_generated=int(data.get("oom_plans_generated", 0)),
        notes=data.get("notes", ""),
        search_stats=SearchStats.from_dict(data.get("search_stats", {})),
        complete=bool(data.get("complete", True)),
        optimality_gap_bound=float(data.get("optimality_gap_bound", 0.0)),
        incomplete_branches=[str(b) for b in
                             data.get("incomplete_branches", [])],
    )


def result_from_json(text: str) -> PlannerResult:
    """Decode a planner result from a JSON string."""
    return result_from_dict(json.loads(text))
