"""The Sailor planner (paper section 4.2).

Jointly selects a *resource allocation* (which nodes, of which type, in
which zones) and a *job parallelization plan* (pipeline depth, per-stage
tensor-parallel degrees per GPU type, shared data-parallel degree,
microbatch size) that optimises the user's objective under optional
constraints.  The search combines:

* the pruning heuristics H1-H6 (:mod:`repro.core.heuristics`),
* the per-stage dynamic program (:mod:`repro.core.dp_solver`), and
* the Sailor simulator for the final accuracy check of each candidate
  (:mod:`repro.core.simulator`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.dp_solver import DPSolver, DPSolverConfig, DPSolution, StageOption
from repro.core.heuristics import (
    ConsolidatedTopology,
    HeuristicConfig,
    consolidate_zones,
    data_parallel_candidates,
    microbatch_candidates,
    min_tp_per_stage,
    pipeline_parallel_candidates,
    tp_options_for_stage,
)
from repro.core.objectives import Objective, OptimizationGoal
from repro.core.plan import (
    ParallelizationPlan,
    PlanEvaluation,
    PlannerResult,
    StageConfig,
    StageReplica,
)
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.partition import uniform_partition
from repro.models.spec import TrainingJobSpec


@dataclass
class PlannerConfig:
    """Configuration of the Sailor planner search."""

    heuristics: HeuristicConfig = field(default_factory=HeuristicConfig)
    dp_config: DPSolverConfig = field(default_factory=DPSolverConfig)
    #: Stop exploring further data-parallel degrees after this many
    #: consecutive non-improving candidates (H3/H4 early stop).
    dp_patience: int = 1
    #: Optional wall-clock limit for one planning call, in seconds.
    time_limit_s: float | None = None


class SailorPlanner:
    """Joint resource-allocation + parallelization-plan search."""

    name = "sailor"

    def __init__(self, env: SimulationEnvironment,
                 config: PlannerConfig | None = None) -> None:
        self.env = env
        self.config = config or PlannerConfig()
        self.simulator = SailorSimulator(env)

    # -- public API -------------------------------------------------------------

    def plan(self, job: TrainingJobSpec, topology: ClusterTopology,
             objective: Objective | None = None) -> PlannerResult:
        """Search for the best plan on the currently-available topology."""
        objective = objective or Objective.max_throughput()
        start = time.perf_counter()
        heuristics = self.config.heuristics

        consolidated = consolidate_zones(topology, heuristics)
        resources = self._resource_map(consolidated.topology)
        total_nodes = sum(resources.values())

        best_plan: ParallelizationPlan | None = None
        best_eval: PlanEvaluation | None = None
        candidates_evaluated = 0
        oom_plans = 0
        maximize_throughput = objective.goal is OptimizationGoal.MAX_THROUGHPUT
        budget = objective.constraint.max_cost_per_iteration_usd

        for pp in pipeline_parallel_candidates(job, total_nodes, heuristics):
            if self._timed_out(start):
                break
            partitions = uniform_partition(job.model, pp)
            for mbs in microbatch_candidates(job, heuristics):
                if self._timed_out(start):
                    break
                tp_req = min_tp_per_stage(
                    job, partitions, consolidated.topology.node_types(), mbs,
                    num_microbatches_in_flight_cap=pp, env=self.env,
                    config=heuristics)
                if any(not per_stage for per_stage in tp_req):
                    continue  # some stage fits on no available GPU type
                tp_options = [tp_options_for_stage(per_stage, heuristics)
                              for per_stage in tp_req]

                max_dp = self._max_data_parallel(resources, tp_options, pp)
                dp_candidates = data_parallel_candidates(
                    job, mbs, max_dp, maximize_throughput=maximize_throughput,
                    config=heuristics)

                stale = 0
                best_score_this_branch: float | None = None
                for dp in dp_candidates:
                    if self._timed_out(start):
                        break
                    num_microbatches = job.num_microbatches(dp, mbs)
                    solver = DPSolver(
                        env=self.env, job=job, partitions=partitions,
                        tp_options_per_stage=tp_options, microbatch_size=mbs,
                        data_parallel=dp, num_microbatches=num_microbatches,
                        goal=objective.goal, config=self.config.dp_config)
                    solution = solver.solve(resources, budget_per_iteration=budget)
                    if solution is None:
                        continue

                    plan = self._build_plan(job, partitions, mbs, solution,
                                            consolidated)
                    if plan is None:
                        continue
                    evaluation = self.simulator.evaluate(plan)
                    candidates_evaluated += 1
                    if not evaluation.is_valid:
                        oom_plans += 1
                        continue
                    meets = objective.constraint.satisfied_by(
                        evaluation, total_gpus=plan.total_gpus)

                    score = objective.score(evaluation)
                    if meets and objective.better(evaluation, best_eval):
                        best_plan, best_eval = plan, evaluation

                    # H3/H4 early stop within this (P, mbs) branch.
                    if heuristics.ordered_data_parallel:
                        if (best_score_this_branch is not None
                                and score <= best_score_this_branch + 1e-12):
                            stale += 1
                            if stale > self.config.dp_patience:
                                break
                        else:
                            stale = 0
                        if best_score_this_branch is None or score > best_score_this_branch:
                            best_score_this_branch = score

        return PlannerResult(
            plan=best_plan,
            evaluation=best_eval,
            search_time_s=time.perf_counter() - start,
            planner_name=self.name,
            candidates_evaluated=candidates_evaluated,
            oom_plans_generated=oom_plans,
        )

    # -- helpers ------------------------------------------------------------------

    def _timed_out(self, start: float) -> bool:
        limit = self.config.time_limit_s
        return limit is not None and (time.perf_counter() - start) > limit

    @staticmethod
    def _resource_map(topology: ClusterTopology) -> dict[tuple[str, str], int]:
        resources: dict[tuple[str, str], int] = {}
        for zone, per_type in topology.nodes.items():
            for node_type, count in per_type.items():
                if count > 0:
                    resources[(zone, node_type)] = count
        return resources

    @staticmethod
    def _max_data_parallel(resources: dict[tuple[str, str], int],
                           tp_options: list[dict[str, list[int]]],
                           pipeline_parallel: int) -> int:
        """Upper bound on the data-parallel degree the resources allow."""
        # Replica capacity of the whole pool for the cheapest (smallest TP)
        # option of each node type, divided across the pipeline stages.
        total_replica_slots = 0
        for (zone, node_type), count in resources.items():
            spec = get_node_type(node_type)
            min_tp = min((min(opts[node_type]) for opts in tp_options
                          if node_type in opts), default=None)
            if min_tp is None:
                continue
            total_replica_slots += count * (spec.gpus_per_node // min_tp)
        return max(0, total_replica_slots // max(1, pipeline_parallel))

    def _build_plan(self, job: TrainingJobSpec, partitions, microbatch_size: int,
                    solution: DPSolution,
                    consolidated: ConsolidatedTopology) -> ParallelizationPlan | None:
        """Materialise a DP solution into a plan on the *real* zones (H6)."""
        # Remaining real nodes per (zone, node type), shared across stages.
        remaining: dict[tuple[str, str], int] = {}
        for pseudo, members in consolidated.members.items():
            for zone, node_type, count in members:
                key = (zone, node_type)
                remaining[key] = remaining.get(key, 0) + count

        stages: list[StageConfig] = []
        for partition, assignment in zip(partitions, solution.assignments):
            replicas: list[StageReplica] = []
            for option, count in assignment.placements:
                placed = self._place_replicas(option, count, consolidated, remaining)
                if placed is None:
                    return None
                replicas.extend(placed)
            stages.append(StageConfig(partition=partition, replicas=replicas))
        try:
            return ParallelizationPlan(job=job, stages=stages,
                                       microbatch_size=microbatch_size)
        except ValueError:
            return None

    @staticmethod
    def _place_replicas(option: StageOption, count: int,
                        consolidated: ConsolidatedTopology,
                        remaining: dict[tuple[str, str], int],
                        ) -> list[StageReplica] | None:
        """Spread ``count`` replicas of one option over real zones' nodes."""
        real_zones = consolidated.real_zones(option.zone, option.node_type)
        if not real_zones:
            real_zones = [(option.zone, remaining.get((option.zone, option.node_type), 0))]
        replicas: list[StageReplica] = []
        open_zone: str | None = None
        open_slots = 0
        per_node = get_node_type(option.node_type).gpus_per_node
        for _ in range(count):
            if open_slots < option.tensor_parallel:
                # Open a new node in a real zone that still has capacity.
                open_zone = None
                for zone, _quota in real_zones:
                    if remaining.get((zone, option.node_type), 0) > 0:
                        remaining[(zone, option.node_type)] -= 1
                        open_zone = zone
                        open_slots = per_node
                        break
                if open_zone is None:
                    return None
            replicas.append(StageReplica(node_type=option.node_type,
                                         tensor_parallel=option.tensor_parallel,
                                         zone=open_zone))
            open_slots -= option.tensor_parallel
        return replicas
