"""The Sailor planner (paper section 4.2).

Jointly selects a *resource allocation* (which nodes, of which type, in
which zones) and a *job parallelization plan* (pipeline depth, per-stage
tensor-parallel degrees per GPU type, shared data-parallel degree,
microbatch size) that optimises the user's objective under optional
constraints.  The search combines:

* the pruning heuristics H1-H6 (:mod:`repro.core.heuristics`),
* the per-stage dynamic program (:mod:`repro.core.dp_solver`), with all
  per-candidate caches hoisted into a shared
  :class:`~repro.core.search_cache.PlannerSearchContext`, and
* the Sailor simulator for the final accuracy check of each candidate
  (:mod:`repro.core.simulator`).

The search decomposes into independent ``(pipeline depth, microbatch size)``
branches; :class:`ParallelPlanner` is an opt-in driver that fans the
branches out over a process pool and merges the branch winners
deterministically (same result as the serial search).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory

from repro.core.dp_solver import DPSolver, DPSolverConfig, DPSolution, StageOption
from repro.core.heuristics import (
    ConsolidatedTopology,
    HeuristicConfig,
    consolidate_zones,
    data_parallel_candidates,
    microbatch_candidates,
    min_tp_per_stage,
    pipeline_parallel_candidates,
    tp_options_for_stage,
)
from repro.core.objectives import Objective, OptimizationGoal
from repro.core.plan import (
    ParallelizationPlan,
    PlanEvaluation,
    PlannerResult,
    SearchStats,
    StageConfig,
    StageReplica,
)
from repro.core.search_cache import PlannerSearchContext
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@dataclass
class PlannerConfig:
    """Configuration of the Sailor planner search."""

    heuristics: HeuristicConfig = field(default_factory=HeuristicConfig)
    dp_config: DPSolverConfig = field(default_factory=DPSolverConfig)
    #: Stop exploring further data-parallel degrees after this many
    #: consecutive non-improving candidates (H3/H4 early stop).
    dp_patience: int = 1
    #: Optional wall-clock limit for one planning call, in seconds.
    time_limit_s: float | None = None
    #: When > 1, ``SailorPlanner.plan`` fans the (P, mbs) branches out over
    #: this many worker processes (see :class:`ParallelPlanner`).
    parallel_workers: int | None = None
    #: Candidate-level incumbent gate: skip the full simulator evaluation of
    #: a candidate whose conservative floor -- iteration time (pipeline +
    #: update, no sync) under the throughput objective, monetary cost
    #: (compute at the time floor + exact egress) under the cost objective
    #: -- already loses to the branch incumbent.  The gate replays the
    #: skipped candidate's bookkeeping (OOM counting, H3/H4 staleness) from
    #: cheap vectorized checks, so the chosen plan is byte-identical with
    #: the gate on or off.  Under a budget or throughput constraint a skip
    #: additionally requires the constraint's verdict to be provable from
    #: the floors (a floor already over the budget / under the throughput
    #: bar); undecidable candidates fall through to the full evaluation, so
    #: the constraint bookkeeping stays exact.  ``False`` disables the gate
    #: for the equivalence tests.
    enable_candidate_gate: bool = True


@dataclass
class _BranchOutcome:
    """Best candidate of one (pipeline depth, microbatch size) branch."""

    plan: ParallelizationPlan | None = None
    evaluation: PlanEvaluation | None = None
    candidates_evaluated: int = 0
    oom_plans_generated: int = 0


class SailorPlanner:
    """Joint resource-allocation + parallelization-plan search."""

    name = "sailor"

    def __init__(self, env: SimulationEnvironment,
                 config: PlannerConfig | None = None) -> None:
        self.env = env
        self.config = config or PlannerConfig()
        self.simulator = SailorSimulator(env)

    # -- public API -------------------------------------------------------------

    def plan(self, job: TrainingJobSpec, topology: ClusterTopology,
             objective: Objective | None = None,
             context: PlannerSearchContext | None = None) -> PlannerResult:
        """Search for the best plan on the currently-available topology.

        ``context`` optionally supplies a long-lived
        :class:`~repro.core.search_cache.PlannerSearchContext` to search in.
        The context is topology-independent (resource availability enters
        every cache key explicitly), so a caller replanning against
        successive availability snapshots of the same (env, job, goal) --
        the online controller under churn -- reuses partitions, stage
        compute/sync/cost tables, forward layers and budget bounds across
        calls with zero invalidation, and the chosen plan stays identical
        to a from-scratch solve on the same pool.  The reported
        ``search_stats`` are always the *delta* this call contributed.
        The parallel driver builds per-worker contexts and ignores an
        external one.
        """
        objective = objective or Objective.max_throughput()
        workers = self.config.parallel_workers
        if workers is not None and workers > 1:
            return ParallelPlanner(self.env, config=self.config,
                                   max_workers=workers).plan(job, topology,
                                                             objective)
        start = time.perf_counter()
        heuristics = self.config.heuristics
        deadline = (None if self.config.time_limit_s is None
                    else start + self.config.time_limit_s)

        consolidated = consolidate_zones(topology, heuristics)
        resources = self._resource_map(consolidated.topology)
        total_nodes = sum(resources.values())
        if context is None:
            context = PlannerSearchContext(self.env, job, objective.goal)
        elif context.job is not job or context.goal is not objective.goal:
            raise ValueError("search context is bound to a different "
                             "(job, goal) than this planning call")
        stats_before = context.stats.copy()

        outcomes: list[_BranchOutcome] = []
        for pp, mbs in self._branch_specs(job, total_nodes, heuristics):
            if deadline is not None and time.perf_counter() > deadline:
                break
            outcomes.append(self._plan_branch(job, objective, consolidated,
                                              resources, pp, mbs, context,
                                              deadline))
        best_plan, best_eval, candidates, ooms = self._merge_outcomes(
            objective, outcomes)

        return PlannerResult(
            plan=best_plan,
            evaluation=best_eval,
            search_time_s=time.perf_counter() - start,
            planner_name=self.name,
            candidates_evaluated=candidates,
            oom_plans_generated=ooms,
            search_stats=context.stats.diff(stats_before),
        )

    # -- branch search -----------------------------------------------------------

    @staticmethod
    def _merge_outcomes(objective: Objective,
                        outcomes: list[_BranchOutcome],
                        ) -> tuple[ParallelizationPlan | None,
                                   PlanEvaluation | None, int, int]:
        """Pick the overall winner among branch outcomes, in branch order.

        Shared by the serial and parallel drivers so their incumbent
        comparison (and therefore the chosen plan) cannot diverge.
        """
        best_plan: ParallelizationPlan | None = None
        best_eval: PlanEvaluation | None = None
        candidates = 0
        ooms = 0
        for outcome in outcomes:
            candidates += outcome.candidates_evaluated
            ooms += outcome.oom_plans_generated
            if (outcome.evaluation is not None
                    and objective.better(outcome.evaluation, best_eval)):
                best_plan, best_eval = outcome.plan, outcome.evaluation
        return best_plan, best_eval, candidates, ooms

    @staticmethod
    def _branch_specs(job: TrainingJobSpec, total_nodes: int,
                      heuristics: HeuristicConfig) -> list[tuple[int, int]]:
        """Independent (pipeline depth, microbatch size) branches, in the
        order the serial search explores them."""
        return [(pp, mbs)
                for pp in pipeline_parallel_candidates(job, total_nodes,
                                                       heuristics)
                for mbs in microbatch_candidates(job, heuristics)]

    def _plan_branch(self, job: TrainingJobSpec, objective: Objective,
                     consolidated: ConsolidatedTopology,
                     resources: dict[tuple[str, str], int],
                     pp: int, mbs: int, context: PlannerSearchContext,
                     deadline: float | None) -> _BranchOutcome:
        """Search every data-parallel candidate of one (P, mbs) branch."""
        heuristics = self.config.heuristics
        outcome = _BranchOutcome()
        if deadline is not None and time.perf_counter() > deadline:
            return outcome  # expired before setup (queued branch task)
        maximize_throughput = objective.goal is OptimizationGoal.MAX_THROUGHPUT
        constraint = objective.constraint
        budget = constraint.max_cost_per_iteration_usd
        min_throughput = constraint.min_throughput_iters_per_s
        gate_armed = self.config.enable_candidate_gate

        partitions = context.partitions(pp)
        tp_req = min_tp_per_stage(
            job, partitions, consolidated.topology.node_types(), mbs,
            num_microbatches_in_flight_cap=pp, env=self.env,
            config=heuristics)
        if any(not per_stage for per_stage in tp_req):
            return outcome  # some stage fits on no available GPU type
        tp_options = [tp_options_for_stage(per_stage, heuristics)
                      for per_stage in tp_req]

        max_dp = self._max_data_parallel(resources, tp_options, pp)
        dp_candidates = data_parallel_candidates(
            job, mbs, max_dp, maximize_throughput=maximize_throughput,
            config=heuristics)

        stale = 0
        best_score_this_branch: float | None = None
        for dp in dp_candidates:
            if deadline is not None and time.perf_counter() > deadline:
                break
            num_microbatches = job.num_microbatches(dp, mbs)
            solver = DPSolver(
                env=self.env, job=job, partitions=partitions,
                tp_options_per_stage=tp_options, microbatch_size=mbs,
                data_parallel=dp, num_microbatches=num_microbatches,
                goal=objective.goal, config=self.config.dp_config,
                context=context)
            solution = solver.solve(resources, budget_per_iteration=budget)
            if solution is None:
                continue

            plan = self._build_plan(job, partitions, mbs, solution,
                                    consolidated)
            if plan is None:
                continue

            # Candidate-level incumbent gate (ROADMAP).  Two exact skip
            # rules, both replaying every observable side effect of the
            # full path from cheap vectorized checks so the chosen plan is
            # byte-identical with the gate on or off:
            #
            # 1. *Constraint violation*: a cost floor already over the
            #    budget (or a throughput ceiling under the floor) proves
            #    ``meets`` False no matter the incumbent -- the full path
            #    would evaluate, fail ``satisfied_by`` and move on, so the
            #    only bookkeeping to replay is the OOM counter.  This is
            #    what arms the gate on binding Table 3 budgets.
            # 2. *Incumbent beaten* (unconstrained objectives): when the
            #    floor already loses to the branch incumbent the candidate
            #    cannot become the new incumbent; the H3/H4 staleness
            #    bookkeeping's "score <= branch best" condition is proven
            #    by the same comparison.  With a cost/throughput bound this
            #    rule stays dormant unless rule 1 fired -- ``meets`` is
            #    never guessed; undecidable candidates take the full
            #    evaluation.
            if gate_armed:
                if budget is not None or min_throughput is not None:
                    violated = False
                    if budget is not None:
                        violated = self.simulator.cost_floor(plan) > budget
                    if not violated and min_throughput is not None:
                        floor = self.simulator.iteration_time_floor(plan)
                        if floor > 0:
                            violated = 1.0 / floor < min_throughput
                    if violated:
                        context.stats.gate_skips += 1
                        outcome.candidates_evaluated += 1
                        if self.simulator.oom_stages(plan):
                            outcome.oom_plans_generated += 1
                        continue
                elif outcome.evaluation is not None:
                    floor = self.simulator.iteration_time_floor(plan)
                    if maximize_throughput:
                        beaten = floor >= outcome.evaluation.iteration_time_s
                    else:
                        cost_floor = self.simulator.cost_floor(plan)
                        beaten = (cost_floor
                                  >= outcome.evaluation.cost_per_iteration_usd)
                    if beaten:
                        context.stats.gate_skips += 1
                        outcome.candidates_evaluated += 1
                        if self.simulator.oom_stages(plan):
                            outcome.oom_plans_generated += 1
                            continue
                        meets = (constraint.max_gpus is None
                                 or plan.total_gpus <= constraint.max_gpus)
                        if heuristics.ordered_data_parallel and meets:
                            stale += 1
                            if stale > self.config.dp_patience:
                                break
                        continue

            evaluation = self.simulator.evaluate(plan)
            outcome.candidates_evaluated += 1
            if not evaluation.is_valid:
                outcome.oom_plans_generated += 1
                continue
            meets = objective.constraint.satisfied_by(
                evaluation, total_gpus=plan.total_gpus)

            if meets and objective.better(evaluation, outcome.evaluation):
                outcome.plan, outcome.evaluation = plan, evaluation

            # H3/H4 early stop within this (P, mbs) branch.  Only feasible
            # candidates may update the branch incumbent or exhaust the
            # patience: an infeasible candidate's score is not attainable, so
            # letting it raise the bar could stop the branch before a valid
            # plan is found.
            if heuristics.ordered_data_parallel and meets:
                score = objective.score(evaluation)
                if (best_score_this_branch is not None
                        and score <= best_score_this_branch + 1e-12):
                    stale += 1
                    if stale > self.config.dp_patience:
                        break
                else:
                    stale = 0
                if best_score_this_branch is None or score > best_score_this_branch:
                    best_score_this_branch = score
        return outcome

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _resource_map(topology: ClusterTopology) -> dict[tuple[str, str], int]:
        resources: dict[tuple[str, str], int] = {}
        for zone, per_type in topology.nodes.items():
            for node_type, count in per_type.items():
                if count > 0:
                    resources[(zone, node_type)] = count
        return resources

    @staticmethod
    def _max_data_parallel(resources: dict[tuple[str, str], int],
                           tp_options: list[dict[str, list[int]]],
                           pipeline_parallel: int) -> int:
        """Upper bound on the data-parallel degree the resources allow."""
        # Replica capacity of the whole pool for the cheapest (smallest TP)
        # option of each node type, divided across the pipeline stages.
        total_replica_slots = 0
        for (zone, node_type), count in resources.items():
            spec = get_node_type(node_type)
            min_tp = min((min(opts[node_type]) for opts in tp_options
                          if node_type in opts), default=None)
            if min_tp is None:
                continue
            total_replica_slots += count * (spec.gpus_per_node // min_tp)
        return max(0, total_replica_slots // max(1, pipeline_parallel))

    def _build_plan(self, job: TrainingJobSpec, partitions, microbatch_size: int,
                    solution: DPSolution,
                    consolidated: ConsolidatedTopology) -> ParallelizationPlan | None:
        """Materialise a DP solution into a plan on the *real* zones (H6)."""
        # Remaining real nodes per (zone, node type), shared across stages.
        remaining: dict[tuple[str, str], int] = {}
        for pseudo, members in consolidated.members.items():
            for zone, node_type, count in members:
                key = (zone, node_type)
                remaining[key] = remaining.get(key, 0) + count

        stages: list[StageConfig] = []
        for partition, assignment in zip(partitions, solution.assignments):
            replicas: list[StageReplica] = []
            for option, count in assignment.placements:
                placed = self._place_replicas(option, count, consolidated, remaining)
                if placed is None:
                    return None
                replicas.extend(placed)
            stages.append(StageConfig(partition=partition, replicas=replicas))
        try:
            return ParallelizationPlan(job=job, stages=stages,
                                       microbatch_size=microbatch_size)
        except ValueError:
            return None

    @staticmethod
    def _place_replicas(option: StageOption, count: int,
                        consolidated: ConsolidatedTopology,
                        remaining: dict[tuple[str, str], int],
                        ) -> list[StageReplica] | None:
        """Spread ``count`` replicas of one option over real zones' nodes."""
        real_zones = consolidated.real_zones(option.zone, option.node_type)
        if not real_zones:
            real_zones = [(option.zone, remaining.get((option.zone, option.node_type), 0))]
        replicas: list[StageReplica] = []
        open_zone: str | None = None
        open_slots = 0
        per_node = get_node_type(option.node_type).gpus_per_node
        for _ in range(count):
            if open_slots < option.tensor_parallel:
                # Open a new node in a real zone that still has capacity.
                open_zone = None
                for zone, _quota in real_zones:
                    if remaining.get((zone, option.node_type), 0) > 0:
                        remaining[(zone, option.node_type)] -= 1
                        open_zone = zone
                        open_slots = per_node
                        break
                if open_zone is None:
                    return None
            replicas.append(StageReplica(node_type=option.node_type,
                                         tensor_parallel=option.tensor_parallel,
                                         zone=open_zone))
            open_slots -= option.tensor_parallel
        return replicas


# ---------------------------------------------------------------------------
# Parallel search driver
# ---------------------------------------------------------------------------

#: Search invariants installed once per worker process (see _init_worker);
#: only (pp, mbs, wall_deadline) travel with each branch task.  The
#: in-process fallback path uses a local state dict instead, so a single
#: ParallelPlanner call in the main process never pins the environment here.
_WORKER_STATE: dict = {}


def _make_worker_state(env, job, objective, config, consolidated,
                       resources) -> dict:
    """Bundle one planning call's invariants, including the worker's shared
    search context (reused across every branch the worker executes, so the
    cross-candidate caches -- compute/sync/cost, master combos, and the
    resource-state engine's forward layer cache -- are shared by every
    (P, mbs, D) candidate the worker sees, exactly as in the serial driver)."""
    return {
        "planner": SailorPlanner(env, config=config),
        "job": job,
        "objective": objective,
        "consolidated": consolidated,
        "resources": resources,
        "context": PlannerSearchContext(env, job, objective.goal),
    }


def _init_worker(payload: bytes) -> None:
    """Process-pool initializer: receive the per-call invariants once.

    The driver pre-serializes the invariants -- dominated by the profile
    store inside the environment -- into one pickle blob, so the expensive
    object-graph walk happens once per planning call instead of once per
    worker process (initargs are re-pickled for every worker; a ``bytes``
    payload makes that re-pickling a memcpy).  This is the fallback path
    when the shared-memory store is unavailable; see :func:`_init_worker_shm`.
    """
    _WORKER_STATE.clear()
    _WORKER_STATE.update(_make_worker_state(*pickle.loads(payload)))


def _init_worker_shm(name: str, size: int) -> None:
    """Process-pool initializer: attach to the driver's shared-memory blob.

    The driver writes the pre-serialized invariants into one
    ``multiprocessing.shared_memory`` segment; each worker attaches, reads
    the ``size`` payload bytes and unpickles locally.  Unlike the ``bytes``
    initargs fallback the blob is never copied through the executor's task
    pipe per worker -- only ``(name, size)`` travels -- which is what makes
    worker startup O(1) in the profile-store size.  The driver owns the
    segment's lifetime and unlinks it once the pool is done.  (CPython <=
    3.12 registers the segment with the resource tracker on *attach* too;
    under the fork start method the workers share the driver's tracker, so
    the duplicate registrations collapse and the driver's ``unlink``
    retires the single entry.  Under spawn a worker-owned tracker may
    unlink the segment first -- after every branch result has already been
    returned -- which the driver's unlink tolerates.)
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:size])
    finally:
        segment.close()
    _init_worker(payload)


def _plan_branch_task(payload: tuple,
                      state: dict | None = None,
                      ) -> tuple[_BranchOutcome, SearchStats]:
    """Worker entry point: search one (P, mbs) branch.

    ``wall_deadline`` is an absolute ``time.time()`` instant shared by every
    branch task, so ``time_limit_s`` bounds the whole planning call rather
    than restarting per branch; it is converted to this process's
    ``perf_counter`` timeline on entry.  The worker's search context is
    shared across its branches, so the returned stats are the *delta* this
    branch contributed (summing deltas across tasks equals the total work).
    """
    pp, mbs, wall_deadline = payload
    if state is None:
        state = _WORKER_STATE
    planner = state["planner"]
    job = state["job"]
    objective = state["objective"]
    context = state["context"]
    before = context.stats.copy()
    deadline = (None if wall_deadline is None
                else time.perf_counter() + (wall_deadline - time.time()))
    outcome = planner._plan_branch(job, objective, state["consolidated"],
                                   state["resources"], pp, mbs, context,
                                   deadline)
    return outcome, context.stats.diff(before)


class ParallelPlanner:
    """Opt-in multi-process driver for the Sailor planner search.

    The (pipeline depth, microbatch size) branches of the search are
    independent -- they share no incumbent and no early-stop state -- so
    they can run in separate worker processes.  Each worker builds its own
    :class:`~repro.core.search_cache.PlannerSearchContext`, returns its
    branch's best scored plan, and the driver merges the branch winners *in
    branch order* with the same comparison the serial search uses, so the
    chosen plan is identical to the serial planner's.

    The planning invariants (dominated by the profile store inside the
    environment) are pickled once per call and published through a
    ``multiprocessing.shared_memory`` segment that workers attach to, so
    worker startup cost is independent of the profile-store size; the
    ``bytes``-initargs path remains as a fallback for platforms without
    shared memory.

    ``time_limit_s`` bounds the whole planning call: the driver fixes one
    absolute wall-clock deadline up front and every branch task honours it,
    so late-starting branches get only the time that remains.
    """

    name = "sailor"

    def __init__(self, env: SimulationEnvironment,
                 config: PlannerConfig | None = None,
                 max_workers: int | None = None) -> None:
        self.env = env
        self.config = config or PlannerConfig()
        self.max_workers = (max_workers or self.config.parallel_workers
                            or os.cpu_count() or 1)

    def plan(self, job: TrainingJobSpec, topology: ClusterTopology,
             objective: Objective | None = None) -> PlannerResult:
        """Search for the best plan, fanning branches out over processes."""
        objective = objective or Objective.max_throughput()
        start = time.perf_counter()
        heuristics = self.config.heuristics

        consolidated = consolidate_zones(topology, heuristics)
        resources = SailorPlanner._resource_map(consolidated.topology)
        total_nodes = sum(resources.values())
        specs = SailorPlanner._branch_specs(job, total_nodes, heuristics)

        # Workers must not recurse into the parallel driver themselves.
        worker_config = replace(self.config, parallel_workers=None)
        # One absolute deadline for the whole call, on the wall clock so it
        # is meaningful in every worker process.
        wall_deadline = (None if self.config.time_limit_s is None
                         else time.time() + self.config.time_limit_s)
        invariants = (self.env, job, objective, worker_config, consolidated,
                      resources)
        payloads = [(pp, mbs, wall_deadline) for pp, mbs in specs]

        stats = SearchStats()
        if len(payloads) <= 1 or self.max_workers <= 1:
            local_state = _make_worker_state(*invariants)
            results = [_plan_branch_task(payload, state=local_state)
                       for payload in payloads]
        else:
            workers = min(self.max_workers, len(payloads))
            # Serialize the invariants (profiles included) exactly once and
            # publish them through a shared-memory segment the workers
            # attach to; when shared memory is unavailable (no /dev/shm,
            # exotic platforms) fall back to shipping the blob via initargs.
            #
            # Lifecycle: the single try/finally below starts *before* the
            # segment is created, so every exit path -- a worker raising
            # mid-branch (pool.map re-raises), pool shutdown on
            # KeyboardInterrupt, and even a non-OSError between creation
            # and the pool block -- retires the segment.  (An OSError
            # during creation/population falls back to initargs-bytes; a
            # half-created segment from that path is retired by the same
            # finally.)
            blob = pickle.dumps(invariants, protocol=pickle.HIGHEST_PROTOCOL)
            segment = None
            try:
                try:
                    segment = shared_memory.SharedMemory(create=True,
                                                         size=max(1, len(blob)))
                    segment.buf[:len(blob)] = blob
                    initializer, initargs = _init_worker_shm, (segment.name,
                                                               len(blob))
                except OSError:
                    initializer, initargs = _init_worker, (blob,)
                with ProcessPoolExecutor(max_workers=workers,
                                         initializer=initializer,
                                         initargs=initargs) as pool:
                    results = list(pool.map(_plan_branch_task, payloads))
            finally:
                if segment is not None:
                    segment.close()
                    try:
                        segment.unlink()
                    except FileNotFoundError:
                        pass  # a worker's resource tracker beat us to it

        for _, branch_stats in results:
            stats.merge(branch_stats)
        best_plan, best_eval, candidates, ooms = SailorPlanner._merge_outcomes(
            objective, [outcome for outcome, _ in results])

        return PlannerResult(
            plan=best_plan,
            evaluation=best_eval,
            search_time_s=time.perf_counter() - start,
            planner_name=self.name,
            candidates_evaluated=candidates,
            oom_plans_generated=ooms,
            notes=f"parallel driver, {min(self.max_workers, max(1, len(payloads)))} workers",
            search_stats=stats,
        )
