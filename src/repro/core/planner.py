"""The Sailor planner (paper section 4.2).

Jointly selects a *resource allocation* (which nodes, of which type, in
which zones) and a *job parallelization plan* (pipeline depth, per-stage
tensor-parallel degrees per GPU type, shared data-parallel degree,
microbatch size) that optimises the user's objective under optional
constraints.  The search combines:

* the pruning heuristics H1-H6 (:mod:`repro.core.heuristics`),
* the per-stage dynamic program (:mod:`repro.core.dp_solver`), with all
  per-candidate caches hoisted into a shared
  :class:`~repro.core.search_cache.PlannerSearchContext`, and
* the Sailor simulator for the final accuracy check of each candidate
  (:mod:`repro.core.simulator`).

The search decomposes into independent ``(pipeline depth, microbatch size)``
branches; :class:`ParallelPlanner` is an opt-in driver that fans the
branches out over a process pool and merges the branch winners
deterministically (same result as the serial search).
"""

from __future__ import annotations

import bisect
import math
import multiprocessing
import os
import pickle
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory

from repro.core.budget import SearchBudget, SearchBudgetExhausted
from repro.core.dp_solver import DPSolver, DPSolverConfig, DPSolution, StageOption
from repro.core.heuristics import (
    ConsolidatedTopology,
    HeuristicConfig,
    consolidate_zones,
    data_parallel_candidates,
    microbatch_candidates,
    min_tp_per_stage,
    pipeline_parallel_candidates,
    tp_options_for_stage,
)
from repro.core.objectives import Objective, OptimizationGoal
from repro.core.plan import (
    ParallelizationPlan,
    PlanEvaluation,
    PlannerResult,
    SearchStats,
    StageConfig,
    StageReplica,
)
from repro.core.search_cache import PlannerSearchContext, tp_options_key
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


#: Relative slack on the unexplored-candidate lower bounds (see
#: ``SailorPlanner._unexplored_bound``): keeps the gap certificate
#: admissible under float association drift between the bound arithmetic
#: and the simulator's evaluation of the same stage times.
_GAP_BOUND_SLACK = 1.0 - 1e-9


@dataclass
class PlannerConfig:
    """Configuration of the Sailor planner search."""

    # lint: disable=cache-key -- composite: shapes candidate *enumeration*
    # only; every cached artifact is keyed by the full (partition, mbs,
    # node type, TP, resources) tuple it describes, so changing the
    # heuristics reroutes lookups rather than forking cached values.
    heuristics: HeuristicConfig = field(default_factory=HeuristicConfig)
    # lint: disable=cache-key -- composite handed to DPSolver; its leaf
    # fields are linted individually against the solver's keys in
    # dp_solver.py, and the composite itself is never hashed.
    dp_config: DPSolverConfig = field(default_factory=DPSolverConfig)
    #: Stop exploring further data-parallel degrees after this many
    #: consecutive non-improving candidates (H3/H4 early stop).
    # lint: disable=cache-key -- early-stop knob: changes which candidates
    # are explored, never the value any (partition, mbs, ...) key maps to.
    dp_patience: int = 1
    #: Optional wall-clock limit for one planning call, in seconds.  With
    #: the cooperative cancellation budget threaded through the DP hot
    #: loops, the search halts within a bounded number of inner iterations
    #: of the deadline (plus a bounded salvage epilogue that prices the
    #: unexplored branches for the optimality-gap certificate) and returns
    #: the best incumbent found, marked ``complete=False``.
    # lint: disable=cache-key -- anytime budget consumed only by
    # SearchBudget; exhaustion raises *before* any cache write, so a
    # truncated solve never stores a partial artifact under an exact key
    # (pinned by the anytime/churn suites).
    time_limit_s: float | None = None
    #: Optional deterministic node budget: the search halts after this many
    #: cooperative cancellation ticks (DP nodes, engine layers, forward
    #: chunks...).  Gives tests a wall-clock-free way to exercise the
    #: anytime path; each parallel worker counts its own ticks.
    # lint: disable=cache-key -- same contract as time_limit_s: enters the
    # search only through SearchBudget, which unwinds before cache writes.
    max_search_nodes: int | None = None
    #: Parallel driver only: extra wall-clock grace (beyond ``time_limit_s``)
    #: a branch task may take before its worker is declared wedged and the
    #: branch is salvaged via retry + inline re-run.  ``None`` disables
    #: wedge detection (a crashed worker is still recovered through
    #: ``BrokenProcessPool``).
    # lint: disable=cache-key -- driver-only fault-tolerance knob, never
    # read inside a solve; a salvaged branch re-runs the same deterministic
    # search, so no cached value can depend on it.
    branch_timeout_s: float | None = None
    #: When > 1, ``SailorPlanner.plan`` fans the (P, mbs) branches out over
    #: this many worker processes (see :class:`ParallelPlanner`).
    # lint: disable=cache-key -- dispatch-only: selects the driver; each
    # worker builds its own context and the merged plan is pinned identical
    # to the serial search by the parallel-equivalence suite.
    parallel_workers: int | None = None
    #: Candidate-level incumbent gate: skip the full simulator evaluation of
    #: a candidate whose conservative floor -- iteration time (pipeline +
    #: update, no sync) under the throughput objective, monetary cost
    #: (compute at the time floor + exact egress) under the cost objective
    #: -- already loses to the branch incumbent.  The gate replays the
    #: skipped candidate's bookkeeping (OOM counting, H3/H4 staleness) from
    #: cheap vectorized checks, so the chosen plan is byte-identical with
    #: the gate on or off.  Under a budget or throughput constraint a skip
    #: additionally requires the constraint's verdict to be provable from
    #: the floors (a floor already over the budget / under the throughput
    #: bar); undecidable candidates fall through to the full evaluation, so
    #: the constraint bookkeeping stays exact.  ``False`` disables the gate
    #: for the equivalence tests.
    enable_candidate_gate: bool = True
    #: Cost-bound-driven candidate scheduling: precompute an admissible
    #: evaluation floor for every data-parallel candidate of a branch (the
    #: availability-free per-stage minima of ``_unexplored_bound``, i.e.
    #: the candidate list viewed in cost-bound order) and, at the top of
    #: each iteration, kill the *entire remaining tail* once its best floor
    #: already loses to the branch incumbent
    #: (``SearchStats.candidates_killed_unevaluated`` counts them).  Unlike
    #: the incumbent gate -- which runs after the DP solve and only skips
    #: the simulator evaluation -- a tail kill skips the DP solve itself.
    #: Killing only whole tails is what makes the scheduling
    #: value-preserving: ``Objective.better`` is strict, so no killed
    #: candidate could have replaced the incumbent, and because nothing
    #: after the cut is evaluated the H3/H4 staleness divergence cannot
    #: propagate to a surviving candidate.  (Physically re-sorting the
    #: evaluation order by bound would *not* be value-preserving: the
    #: H3/H4 early stop and the first-wins tie-break are
    #: evaluation-order-dependent.)  The floors are simulator floors, not
    #: the DP engine's ``cost_lb`` tables: the kill compares against the
    #: *simulator's* incumbent value, which the DP model does not bound.
    #: Armed only together with ``dp_config.enable_pruning``; ``False``
    #: restores the exhaustive per-candidate loop.
    candidate_ordering: bool = True
    #: Dominated-family interval memo: before any forward build, price a
    #: whole (P, mbs) family with an admissible availability-free floor --
    #: the minimum of ``_candidate_floor`` over the family's data-parallel
    #: members, with the stage minima and per-member floors
    #: interval-memoised in the search context (the budget memo's
    #: validity-range idea one level up: an entry, once computed, answers
    #: every availability snapshot whose candidate interval contains that
    #: member) -- and skip the family *wholesale* when the floor already
    #: loses to the cross-branch incumbent
    #: (``SearchStats.families_skipped``).  Value-preserving for the same
    #: reason as the tail kill: ``Objective.better`` is strict, so no
    #: skipped member could have replaced the incumbent, and a skip
    #: removes an entire family (a within-enumeration-order cut), so no
    #: surviving branch sees different H3/H4 or tie-break state.  The
    #: parallel driver replays the serial skip decisions in branch order
    #: from the workers' reported floors (``_family_dominated`` is the
    #: single shared predicate), so both drivers skip identical families.
    #: Armed only together with ``dp_config.enable_pruning``; ``False``
    #: restores the unconditional per-branch search for the equivalence
    #: suites.
    family_interval_memo: bool = True
    #: Availability-aware tail-kill floors: tighten the candidate-ordering
    #: tail kill from availability-free stage minima to minima over the
    #: (zone, node type, TP) options actually present in the pool, with a
    #: per-stage replica-capacity threshold -- a stage hosting D replicas
    #: over at most ``max_mixed_types_per_stage`` options must place
    #: ``ceil(D / min(2, max_mixed))`` of them on one option, so only
    #: options with at least that root-pool capacity can set the stage's
    #: time.  Still admissible (the root pool is a superset of every DP
    #: sub-state's pool, so the threshold only ever *widens* the option
    #: set vs. reality), hence value-preserving exactly like
    #: ``candidate_ordering`` itself, and still used only for
    #: within-order tail kills;
    #: ``_unexplored_bound`` keeps the availability-free floors, so the
    #: optimality-gap certificates are unchanged.  The per-(branch, pool)
    #: tables are cached in the search context
    #: (``SearchStats.availability_floor_hits``), so churn replans against
    #: an unchanged pool reuse them warm.  ``False`` falls back to the
    #: availability-free tail floors.
    availability_aware_floors: bool = True


@dataclass
class _BranchOutcome:
    """Best candidate of one (pipeline depth, microbatch size) branch."""

    plan: ParallelizationPlan | None = None
    evaluation: PlanEvaluation | None = None
    candidates_evaluated: int = 0
    oom_plans_generated: int = 0
    #: Branch label ("P<pp>/mbs<mbs>") for incomplete-branch reporting.
    label: str = ""
    #: False when the deadline / node budget cut the branch's candidate
    #: enumeration short (H3/H4 early stops still count as complete: they
    #: are part of the unbounded search, not a truncation of it).
    complete: bool = True
    #: Admissible lower bound on the objective's minimised scalar over the
    #: branch's *unexplored* candidates; +inf when none could win.
    unexplored_lb: float = math.inf
    #: Admissible availability-free floor of the whole family's minimised
    #: scalar (``PlannerConfig.family_interval_memo``); ``None`` when the
    #: family gate was not armed for this branch (no TP options, no DP
    #: candidates, pruning off), so the parallel driver's replay never
    #: drops an unpriced branch.
    family_floor: float | None = None


class SailorPlanner:
    """Joint resource-allocation + parallelization-plan search."""

    name = "sailor"

    def __init__(self, env: SimulationEnvironment,
                 config: PlannerConfig | None = None) -> None:
        self.env = env
        self.config = config or PlannerConfig()
        self.simulator = SailorSimulator(env)

    # -- public API -------------------------------------------------------------

    def plan(self, job: TrainingJobSpec, topology: ClusterTopology,
             objective: Objective | None = None,
             context: PlannerSearchContext | None = None) -> PlannerResult:
        """Search for the best plan on the currently-available topology.

        ``context`` optionally supplies a long-lived
        :class:`~repro.core.search_cache.PlannerSearchContext` to search in.
        The context is topology-independent (resource availability enters
        every cache key explicitly), so a caller replanning against
        successive availability snapshots of the same (env, job, goal) --
        the online controller under churn -- reuses partitions, stage
        compute/sync/cost tables, forward layers and budget bounds across
        calls with zero invalidation, and the chosen plan stays identical
        to a from-scratch solve on the same pool.  The reported
        ``search_stats`` are always the *delta* this call contributed.
        The parallel driver builds per-worker contexts and ignores an
        external one.
        """
        objective = objective or Objective.max_throughput()
        workers = self.config.parallel_workers
        if workers is not None and workers > 1:
            return ParallelPlanner(self.env, config=self.config,
                                   max_workers=workers).plan(job, topology,
                                                             objective)
        # lint: disable=determinism -- observability (search_time_s) plus
        # the anytime deadline, which reaches the search only through
        # SearchBudget; neither branches the search directly.
        start = time.perf_counter()
        heuristics = self.config.heuristics
        deadline = (None if self.config.time_limit_s is None
                    else start + self.config.time_limit_s)

        consolidated = consolidate_zones(topology, heuristics)
        resources = self._resource_map(consolidated.topology)
        total_nodes = sum(resources.values())
        if context is None:
            context = PlannerSearchContext(self.env, job, objective.goal)
        elif context.job is not job or context.goal is not objective.goal:
            raise ValueError("search context is bound to a different "
                             "(job, goal) than this planning call")
        stats_before = context.stats.copy()
        search_budget = SearchBudget.maybe(
            deadline, self.config.max_search_nodes)

        # Every branch is visited even after the budget trips: an expired
        # branch skips its DP solves and only prices its unexplored
        # candidates (a bounded epilogue), which is what makes the reported
        # optimality gap admissible over the *whole* candidate space.
        # The running cross-branch incumbent exists solely to arm the
        # dominated-family gate; the final winner is still picked by
        # ``_merge_outcomes`` with the identical comparison, so threading
        # it cannot change the chosen plan.
        outcomes: list[_BranchOutcome] = []
        incumbent_eval: PlanEvaluation | None = None
        for pp, mbs in self._branch_specs(job, total_nodes, heuristics):
            outcome = self._plan_branch(job, objective, consolidated,
                                        resources, pp, mbs, context,
                                        search_budget,
                                        incumbent=incumbent_eval)
            outcomes.append(outcome)
            if (outcome.evaluation is not None
                    and objective.better(outcome.evaluation, incumbent_eval)):
                incumbent_eval = outcome.evaluation
        best_plan, best_eval, candidates, ooms = self._merge_outcomes(
            objective, outcomes)
        complete, gap, incomplete = self._anytime_summary(
            objective, outcomes, best_eval)

        return PlannerResult(
            plan=best_plan,
            evaluation=best_eval,
            # lint: disable=determinism -- reporting only, not plan-affecting.
            search_time_s=time.perf_counter() - start,
            planner_name=self.name,
            candidates_evaluated=candidates,
            oom_plans_generated=ooms,
            search_stats=context.stats.diff(stats_before),
            complete=complete,
            optimality_gap_bound=gap,
            incomplete_branches=incomplete,
        )

    # -- branch search -----------------------------------------------------------

    @staticmethod
    def _merge_outcomes(objective: Objective,
                        outcomes: list[_BranchOutcome],
                        ) -> tuple[ParallelizationPlan | None,
                                   PlanEvaluation | None, int, int]:
        """Pick the overall winner among branch outcomes, in branch order.

        Shared by the serial and parallel drivers so their incumbent
        comparison (and therefore the chosen plan) cannot diverge.
        """
        best_plan: ParallelizationPlan | None = None
        best_eval: PlanEvaluation | None = None
        candidates = 0
        ooms = 0
        for outcome in outcomes:
            candidates += outcome.candidates_evaluated
            ooms += outcome.oom_plans_generated
            if (outcome.evaluation is not None
                    and objective.better(outcome.evaluation, best_eval)):
                best_plan, best_eval = outcome.plan, outcome.evaluation
        return best_plan, best_eval, candidates, ooms

    @staticmethod
    def _incumbent_value(objective: Objective,
                         evaluation: PlanEvaluation) -> float:
        """The minimised scalar the optimality gap is certified against."""
        if objective.goal is OptimizationGoal.MIN_COST:
            return evaluation.cost_per_iteration_usd
        return evaluation.iteration_time_s

    @staticmethod
    def _anytime_summary(objective: Objective,
                         outcomes: list[_BranchOutcome],
                         best_eval: PlanEvaluation | None,
                         ) -> tuple[bool, float, list[str]]:
        """(complete, optimality_gap_bound, incomplete branch labels).

        The gap is relative to the incumbent's minimised scalar: the true
        optimum is no better than ``value * (1 - gap)``.  ``lb > value``
        (every unexplored candidate provably loses to the incumbent) clamps
        to 0.0; no incumbent at all yields ``inf``.
        """
        incomplete = [o.label for o in outcomes if not o.complete]
        if not incomplete:
            return True, 0.0, []
        lb = min((o.unexplored_lb for o in outcomes if not o.complete),
                 default=math.inf)
        if best_eval is None:
            return False, math.inf, incomplete
        value = SailorPlanner._incumbent_value(objective, best_eval)
        if not value > 0 or lb == math.inf:
            return False, 0.0, incomplete
        return False, max(0.0, (value - lb) / value), incomplete

    @staticmethod
    def _branch_specs(job: TrainingJobSpec, total_nodes: int,
                      heuristics: HeuristicConfig) -> list[tuple[int, int]]:
        """Independent (pipeline depth, microbatch size) branches, in the
        order the serial search explores them."""
        return [(pp, mbs)
                for pp in pipeline_parallel_candidates(job, total_nodes,
                                                       heuristics)
                for mbs in microbatch_candidates(job, heuristics)]

    def _plan_branch(self, job: TrainingJobSpec, objective: Objective,
                     consolidated: ConsolidatedTopology,
                     resources: dict[tuple[str, str], int],
                     pp: int, mbs: int, context: PlannerSearchContext,
                     search_budget: SearchBudget | None = None,
                     incumbent: PlanEvaluation | None = None,
                     ) -> _BranchOutcome:
        """Search every data-parallel candidate of one (P, mbs) branch.

        With a ``search_budget``, expiry between candidates (or a
        :class:`~repro.core.budget.SearchBudgetExhausted` raised inside a
        solve) keeps the branch incumbent found so far and prices the
        unexplored candidates with an admissible lower bound, so the merged
        result can certify its remaining optimality gap.
        """
        heuristics = self.config.heuristics
        outcome = _BranchOutcome(label=f"P{pp}/mbs{mbs}")
        maximize_throughput = objective.goal is OptimizationGoal.MAX_THROUGHPUT
        constraint = objective.constraint
        budget = constraint.max_cost_per_iteration_usd
        min_throughput = constraint.min_throughput_iters_per_s
        gate_armed = self.config.enable_candidate_gate

        partitions = context.partitions(pp)
        tp_req = min_tp_per_stage(
            job, partitions, consolidated.topology.node_types(), mbs,
            num_microbatches_in_flight_cap=pp, env=self.env,
            config=heuristics)
        if any(not per_stage for per_stage in tp_req):
            # Some stage fits on no available GPU type: the branch has no
            # candidates at all, so it is complete even under a deadline.
            self._count_branch(context, outcome)
            return outcome
        tp_options = [tp_options_for_stage(per_stage, heuristics)
                      for per_stage in tp_req]

        max_dp = self._max_data_parallel(resources, tp_options, pp)
        dp_candidates = data_parallel_candidates(
            job, mbs, max_dp, maximize_throughput=maximize_throughput,
            config=heuristics)

        # Dominated-family interval memo (see PlannerConfig
        # .family_interval_memo): price the whole family from the
        # interval-memoised availability-free floors and skip it wholesale
        # -- before any forward build or DP solve -- when it provably
        # cannot *strictly* beat the cross-branch incumbent.  The floor is
        # recorded on the outcome either way so the parallel driver can
        # replay this exact decision from its workers' results.
        if (self.config.family_interval_memo
                and self.config.dp_config.enable_pruning and dp_candidates):
            outcome.family_floor = self._family_floor(
                job, context, partitions, tp_options, mbs, pp, dp_candidates,
                not maximize_throughput)
            if self._family_dominated(objective, outcome.family_floor,
                                      incumbent):
                context.stats.families_skipped += 1
                self._count_branch(context, outcome)
                return outcome

        # Cost-bound-driven candidate scheduling (see PlannerConfig
        # .candidate_ordering): suffix minima of the per-candidate
        # admissible floors, so one comparison at the top of the loop
        # prices the whole unexplored tail.  Branch-local state only --
        # serial and parallel workers take identical kill decisions, and
        # the incumbent gate on/off does not perturb them (the gate never
        # changes the branch incumbent's evolution).  With
        # ``availability_aware_floors`` the per-candidate floors come from
        # the pool-aware tables instead of the availability-free minima;
        # both are admissible, so either way only provably-losing tails
        # are killed.
        tail_floor: list[float] | None = None
        if (self.config.candidate_ordering
                and self.config.dp_config.enable_pruning and dp_candidates):
            avail_tables = None
            if self.config.availability_aware_floors:
                avail_tables = self._availability_tables(
                    context, partitions, tp_options, mbs, pp, resources)
            if avail_tables is not None:
                max_mixed = self.config.dp_config.max_mixed_types_per_stage
                tail_floor = [
                    self._candidate_floor_available(job, avail_tables, mbs,
                                                    dp,
                                                    not maximize_throughput,
                                                    max_mixed)
                    for dp in dp_candidates]
            else:
                floors = self._stage_floors(context, partitions, tp_options,
                                            mbs)
                if floors is not None:
                    tail_floor = [
                        self._candidate_floor(job, floors, mbs, dp,
                                              not maximize_throughput)
                        for dp in dp_candidates]
            if tail_floor is not None:
                for i in range(len(tail_floor) - 2, -1, -1):
                    if tail_floor[i + 1] < tail_floor[i]:
                        tail_floor[i] = tail_floor[i + 1]

        stale = 0
        best_score_this_branch: float | None = None
        cut_from: int | None = None
        for dp_index, dp in enumerate(dp_candidates):
            if search_budget is not None and search_budget.expired():
                cut_from = dp_index
                break
            if tail_floor is not None and outcome.evaluation is not None:
                incumbent = self._incumbent_value(objective,
                                                  outcome.evaluation)
                if incumbent > 0 and tail_floor[dp_index] >= incumbent:
                    # No remaining candidate can *strictly* beat the branch
                    # incumbent (its floor is already >= the incumbent's
                    # minimised scalar, and ties keep the incumbent), so
                    # the whole tail is killed before its DP solves.
                    context.stats.candidates_killed_unevaluated += (
                        len(dp_candidates) - dp_index)
                    break
            num_microbatches = job.num_microbatches(dp, mbs)
            solver = DPSolver(
                env=self.env, job=job, partitions=partitions,
                tp_options_per_stage=tp_options, microbatch_size=mbs,
                data_parallel=dp, num_microbatches=num_microbatches,
                goal=objective.goal, config=self.config.dp_config,
                context=context, search_budget=search_budget)
            try:
                solution = solver.solve(resources,
                                        budget_per_iteration=budget)
            except SearchBudgetExhausted:
                # Salvage: the pre-deadline incumbent in ``outcome`` stands;
                # the aborted candidate joins the unexplored set below.
                context.stats.budget_interrupts += 1
                cut_from = dp_index
                break
            if solution is None:
                continue

            plan = self._build_plan(job, partitions, mbs, solution,
                                    consolidated)
            if plan is None:
                continue

            # Candidate-level incumbent gate (ROADMAP).  Two exact skip
            # rules, both replaying every observable side effect of the
            # full path from cheap vectorized checks so the chosen plan is
            # byte-identical with the gate on or off:
            #
            # 1. *Constraint violation*: a cost floor already over the
            #    budget (or a throughput ceiling under the floor) proves
            #    ``meets`` False no matter the incumbent -- the full path
            #    would evaluate, fail ``satisfied_by`` and move on, so the
            #    only bookkeeping to replay is the OOM counter.  This is
            #    what arms the gate on binding Table 3 budgets.
            # 2. *Incumbent beaten* (unconstrained objectives): when the
            #    floor already loses to the branch incumbent the candidate
            #    cannot become the new incumbent; the H3/H4 staleness
            #    bookkeeping's "score <= branch best" condition is proven
            #    by the same comparison.  With a cost/throughput bound this
            #    rule stays dormant unless rule 1 fired -- ``meets`` is
            #    never guessed; undecidable candidates take the full
            #    evaluation.
            if gate_armed:
                if budget is not None or min_throughput is not None:
                    violated = False
                    if budget is not None:
                        violated = self.simulator.cost_floor(plan) > budget
                    if not violated and min_throughput is not None:
                        floor = self.simulator.iteration_time_floor(plan)
                        if floor > 0:
                            violated = 1.0 / floor < min_throughput
                    if violated:
                        context.stats.gate_skips += 1
                        outcome.candidates_evaluated += 1
                        if self.simulator.oom_stages(plan):
                            outcome.oom_plans_generated += 1
                        continue
                elif outcome.evaluation is not None:
                    floor = self.simulator.iteration_time_floor(plan)
                    if maximize_throughput:
                        beaten = floor >= outcome.evaluation.iteration_time_s
                    else:
                        cost_floor = self.simulator.cost_floor(plan)
                        beaten = (cost_floor
                                  >= outcome.evaluation.cost_per_iteration_usd)
                    if beaten:
                        context.stats.gate_skips += 1
                        outcome.candidates_evaluated += 1
                        if self.simulator.oom_stages(plan):
                            outcome.oom_plans_generated += 1
                            continue
                        meets = (constraint.max_gpus is None
                                 or plan.total_gpus <= constraint.max_gpus)
                        if heuristics.ordered_data_parallel and meets:
                            stale += 1
                            if stale > self.config.dp_patience:
                                break
                        continue

            evaluation = self.simulator.evaluate(plan)
            outcome.candidates_evaluated += 1
            if not evaluation.is_valid:
                outcome.oom_plans_generated += 1
                continue
            meets = objective.constraint.satisfied_by(
                evaluation, total_gpus=plan.total_gpus)

            if meets and objective.better(evaluation, outcome.evaluation):
                outcome.plan, outcome.evaluation = plan, evaluation

            # H3/H4 early stop within this (P, mbs) branch.  Only feasible
            # candidates may update the branch incumbent or exhaust the
            # patience: an infeasible candidate's score is not attainable, so
            # letting it raise the bar could stop the branch before a valid
            # plan is found.
            if heuristics.ordered_data_parallel and meets:
                score = objective.score(evaluation)
                if (best_score_this_branch is not None
                        and score <= best_score_this_branch + 1e-12):
                    stale += 1
                    if stale > self.config.dp_patience:
                        break
                else:
                    stale = 0
                if best_score_this_branch is None or score > best_score_this_branch:
                    best_score_this_branch = score
        if cut_from is not None:
            outcome.complete = False
            outcome.unexplored_lb = self._unexplored_bound(
                job, objective, context, partitions, tp_options, mbs,
                dp_candidates[cut_from:])
        self._count_branch(context, outcome)
        return outcome

    @staticmethod
    def _count_branch(context: PlannerSearchContext,
                      outcome: _BranchOutcome) -> None:
        if outcome.complete:
            context.stats.branches_complete += 1
        else:
            context.stats.branches_incomplete += 1

    def _unexplored_bound(self, job: TrainingJobSpec, objective: Objective,
                          context: PlannerSearchContext, partitions,
                          tp_options: list[dict[str, list[int]]], mbs: int,
                          dp_candidates: list[int]) -> float:
        """Admissible lower bound over a branch's unexplored candidates.

        Modeled on ``DPSolver._prepare_bounds`` but availability-free: the
        per-stage minima range over *every* (node type, TP) option the
        branch admits -- a superset of what any placement could use, so the
        bound holds for every unexplored ``(P, mbs, D)`` candidate:

        * iteration time ``>= sum(best_time) + (Nb-1) * max(best_time)``
          (pipeline ramp with zero comm/sync/update overhead);
        * cost ``>= D * sum(best whole-node rate per replica) * time_lb``
          (compute at the time floor, zero egress).

        Both are floors of the *simulator's* evaluation, which is what the
        incumbent values the gap compares against.  The small relative
        slack absorbs float association drift between the bound arithmetic
        and the simulator's.  The same floors drive the candidate-ordering
        tail kill (``PlannerConfig.candidate_ordering``).
        """
        floors = self._stage_floors(context, partitions, tp_options, mbs)
        if floors is None:
            return math.inf  # no unexplored candidate can host every stage
        minimize_cost = objective.goal is OptimizationGoal.MIN_COST
        best = math.inf
        for dp in dp_candidates:
            value = self._candidate_floor(job, floors, mbs, dp, minimize_cost)
            if value < best:
                best = value
        return best

    @staticmethod
    def _stage_floors(context: PlannerSearchContext, partitions,
                      tp_options: list[dict[str, list[int]]], mbs: int,
                      ) -> tuple[float, float, float] | None:
        """Availability-free per-stage minima of one (P, mbs) branch.

        ``(sum of best stage times, max best stage time, sum of best
        per-replica whole-node rates)`` over *every* (node type, TP) option
        the branch admits -- a superset of what any placement could use --
        or ``None`` when some stage fits on no node type at all.
        """
        sum_t = 0.0
        max_t = 0.0
        rate_sum = 0.0
        for partition, options in zip(partitions, tp_options):
            best_time = math.inf
            best_rate = math.inf
            for node_type, tps in options.items():
                gpus = context.gpus_per_node(node_type)
                node_rate = gpus * context.gpu_price_per_second(node_type)
                for tp in tps:
                    compute = context.stage_compute_time(partition, mbs,
                                                         node_type, tp)
                    if compute < best_time:
                        best_time = compute
                    rate = node_rate / max(1, gpus // tp)
                    if rate < best_rate:
                        best_rate = rate
            if best_time == math.inf:
                return None
            sum_t += best_time
            if best_time > max_t:
                max_t = best_time
            rate_sum += best_rate
        return sum_t, max_t, rate_sum

    @staticmethod
    def _candidate_floor(job: TrainingJobSpec,
                         floors: tuple[float, float, float], mbs: int,
                         dp: int, minimize_cost: bool) -> float:
        """Admissible floor of one ``(P, mbs, D)`` candidate's minimised
        scalar (iteration time, or monetary cost per iteration), from the
        branch's ``_stage_floors``.  Slack as in ``_unexplored_bound``;
        applying it per candidate commutes with the min over candidates
        (multiplication by a positive constant is monotone), so the gap
        certificates are bit-identical to the pre-refactor arithmetic.
        """
        sum_t, max_t, rate_sum = floors
        nb = job.num_microbatches(dp, mbs)
        time_lb = sum_t + (nb - 1) * max_t
        value = (dp * rate_sum * time_lb if minimize_cost else time_lb)
        return value * _GAP_BOUND_SLACK

    def _family_floor(self, job: TrainingJobSpec,
                      context: PlannerSearchContext, partitions,
                      tp_options: list[dict[str, list[int]]], mbs: int,
                      pp: int, dp_candidates: list[int],
                      minimize_cost: bool) -> float:
        """Admissible floor of one (P, mbs) family's minimised scalar.

        ``min`` over the family's data-parallel members of the
        availability-free ``_candidate_floor`` -- a floor of every member,
        hence of the family's best.  Both levels are interval-memoised in
        the search context: the stage minima are availability-independent
        outright, and each member floor, once computed, stays valid for
        every later availability snapshot whose candidate list contains
        that member (a snapshot only decides *which* members exist, never
        what a member's floor is), so churn replans price their families
        from warm tables.
        """
        tp_key = tuple(tp_options_key(options) for options in tp_options)
        floors = context.family_stage_floors(
            pp, mbs, tp_key,
            lambda: self._stage_floors(context, partitions, tp_options, mbs))
        if floors is None:
            return math.inf
        members = context.family_member_floors(pp, mbs, tp_key)
        best = math.inf
        for dp in dp_candidates:
            value = members.get(dp)
            if value is None:
                value = self._candidate_floor(job, floors, mbs, dp,
                                              minimize_cost)
                members[dp] = value
            if value < best:
                best = value
        return best

    @staticmethod
    def _family_dominated(objective: Objective, family_floor: float | None,
                          incumbent: PlanEvaluation | None) -> bool:
        """The family-skip predicate, shared verbatim by the serial gate
        and the parallel driver's replay so the two can never diverge.
        ``None`` floor means the gate was not armed for the branch (never
        skip); otherwise skip exactly when no member could *strictly* beat
        the incumbent's minimised scalar."""
        if family_floor is None or incumbent is None:
            return False
        value = SailorPlanner._incumbent_value(objective, incumbent)
        return value > 0 and family_floor >= value

    @staticmethod
    def _availability_tables(context: PlannerSearchContext, partitions,
                             tp_options: list[dict[str, list[int]]],
                             mbs: int, pp: int,
                             resources: dict[tuple[str, str], int],
                             ) -> tuple | None:
        """Per-stage availability-aware floor tables, cached per pool.

        For each stage: every (zone, node type, TP) option the pool
        actually offers, ordered by whole-pool replica capacity
        descending, with a running prefix minimum of the stage compute
        time -- so a capacity-threshold query is a single bisect -- plus
        the minimum per-replica rate over the present options.  A ``None``
        stage entry marks a stage the pool cannot host at all (every
        candidate floor becomes +inf, vacuously admissible: the DP would
        find nothing either).  Cached per (branch, pool) signature in the
        search context, so churn replans against an unchanged pool reuse
        the tables warm (``SearchStats.availability_floor_hits``).
        """
        resources_key = tuple(sorted(
            (key, count) for key, count in resources.items() if count > 0))
        stage_keys = tuple(tp_options_key(options) for options in tp_options)
        signature = (pp, mbs, stage_keys, resources_key)

        def build() -> tuple:
            tables = []
            for partition, options, tp_key in zip(partitions, tp_options,
                                                  stage_keys):
                entries = []
                for option, max_replicas in context.stage_options(
                        options, tp_key, resources_key):
                    gpus = context.gpus_per_node(option.node_type)
                    node_rate = gpus * context.gpu_price_per_second(
                        option.node_type)
                    rate = node_rate / max(1, gpus // option.tensor_parallel)
                    compute = context.stage_compute_time(
                        partition, mbs, option.node_type,
                        option.tensor_parallel)
                    entries.append((max_replicas, compute, rate))
                if not entries:
                    tables.append(None)
                    continue
                # Negated capacities ascending: the options with capacity
                # >= k are exactly the prefix bisect_right(-k) selects.
                entries.sort(key=lambda entry: -entry[0])
                neg_caps = [-entry[0] for entry in entries]
                pref_min_t: list[float] = []
                best_t = math.inf
                min_rate = math.inf
                for _, compute, rate in entries:
                    if compute < best_t:
                        best_t = compute
                    pref_min_t.append(best_t)
                    if rate < min_rate:
                        min_rate = rate
                tables.append((neg_caps, pref_min_t, min_rate))
            return tuple(tables)

        return context.availability_floors(signature, build)

    @staticmethod
    def _candidate_floor_available(job: TrainingJobSpec, tables: tuple,
                                   mbs: int, dp: int, minimize_cost: bool,
                                   max_mixed: int) -> float:
        """Availability-aware admissible floor of one (P, mbs, D) candidate.

        A stage hosts its D replicas on at most ``min(2, max_mixed)``
        options (``stage_master_combos`` never mixes more than two per
        stage), so some option of any feasible combo carries at least
        ``k = ceil(D / min(2, max_mixed))`` replicas -- and only options
        whose *root-pool* capacity reaches ``k`` can be that carrier.  The
        stage's time is the max over its combo's options, hence >= the
        carrier's time >= the prefix minimum at the capacity threshold.
        DP sub-states only ever shrink capacities, so thresholding on the
        root pool keeps the admitted option set a superset of reality and
        the bound admissible.  The rate floor uses presence only
        (threshold 1): a combo option may carry a single replica.  Slack
        as in ``_candidate_floor``.
        """
        mixing = min(2, max(1, max_mixed))
        k = -(-dp // mixing)
        sum_t = 0.0
        max_t = 0.0
        rate_sum = 0.0
        for table in tables:
            if table is None:
                return math.inf
            neg_caps, pref_min_t, min_rate = table
            count = bisect.bisect_right(neg_caps, -k)
            if count == 0:
                return math.inf
            stage_t = pref_min_t[count - 1]
            sum_t += stage_t
            if stage_t > max_t:
                max_t = stage_t
            rate_sum += min_rate
        nb = job.num_microbatches(dp, mbs)
        time_lb = sum_t + (nb - 1) * max_t
        value = (dp * rate_sum * time_lb if minimize_cost else time_lb)
        return value * _GAP_BOUND_SLACK

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _resource_map(topology: ClusterTopology) -> dict[tuple[str, str], int]:
        resources: dict[tuple[str, str], int] = {}
        for zone, per_type in topology.nodes.items():
            for node_type, count in per_type.items():
                if count > 0:
                    resources[(zone, node_type)] = count
        return resources

    @staticmethod
    def _max_data_parallel(resources: dict[tuple[str, str], int],
                           tp_options: list[dict[str, list[int]]],
                           pipeline_parallel: int) -> int:
        """Upper bound on the data-parallel degree the resources allow."""
        # Replica capacity of the whole pool for the cheapest (smallest TP)
        # option of each node type, divided across the pipeline stages.
        total_replica_slots = 0
        for (zone, node_type), count in resources.items():
            spec = get_node_type(node_type)
            min_tp = min((min(opts[node_type]) for opts in tp_options
                          if node_type in opts), default=None)
            if min_tp is None:
                continue
            total_replica_slots += count * (spec.gpus_per_node // min_tp)
        return max(0, total_replica_slots // max(1, pipeline_parallel))

    def _build_plan(self, job: TrainingJobSpec, partitions, microbatch_size: int,
                    solution: DPSolution,
                    consolidated: ConsolidatedTopology) -> ParallelizationPlan | None:
        """Materialise a DP solution into a plan on the *real* zones (H6)."""
        # Remaining real nodes per (zone, node type), shared across stages.
        remaining: dict[tuple[str, str], int] = {}
        for pseudo, members in consolidated.members.items():
            for zone, node_type, count in members:
                key = (zone, node_type)
                remaining[key] = remaining.get(key, 0) + count

        stages: list[StageConfig] = []
        for partition, assignment in zip(partitions, solution.assignments):
            replicas: list[StageReplica] = []
            for option, count in assignment.placements:
                placed = self._place_replicas(option, count, consolidated, remaining)
                if placed is None:
                    return None
                replicas.extend(placed)
            stages.append(StageConfig(partition=partition, replicas=replicas))
        try:
            return ParallelizationPlan(job=job, stages=stages,
                                       microbatch_size=microbatch_size)
        except ValueError:
            return None

    @staticmethod
    def _place_replicas(option: StageOption, count: int,
                        consolidated: ConsolidatedTopology,
                        remaining: dict[tuple[str, str], int],
                        ) -> list[StageReplica] | None:
        """Spread ``count`` replicas of one option over real zones' nodes."""
        real_zones = consolidated.real_zones(option.zone, option.node_type)
        if not real_zones:
            real_zones = [(option.zone, remaining.get((option.zone, option.node_type), 0))]
        replicas: list[StageReplica] = []
        open_zone: str | None = None
        open_slots = 0
        per_node = get_node_type(option.node_type).gpus_per_node
        for _ in range(count):
            if open_slots < option.tensor_parallel:
                # Open a new node in a real zone that still has capacity.
                open_zone = None
                for zone, _quota in real_zones:
                    if remaining.get((zone, option.node_type), 0) > 0:
                        remaining[(zone, option.node_type)] -= 1
                        open_zone = zone
                        open_slots = per_node
                        break
                if open_zone is None:
                    return None
            replicas.append(StageReplica(node_type=option.node_type,
                                         tensor_parallel=option.tensor_parallel,
                                         zone=open_zone))
            open_slots -= option.tensor_parallel
        return replicas


# ---------------------------------------------------------------------------
# Parallel search driver
# ---------------------------------------------------------------------------

#: Search invariants installed once per worker process (see _init_worker);
#: only (pp, mbs, wall_deadline) travel with each branch task.  The
#: in-process fallback path uses a local state dict instead, so a single
#: ParallelPlanner call in the main process never pins the environment here.
_WORKER_STATE: dict = {}


def _make_worker_state(env, job, objective, config, consolidated,
                       resources) -> dict:
    """Bundle one planning call's invariants, including the worker's shared
    search context (reused across every branch the worker executes, so the
    cross-candidate caches -- compute/sync/cost, master combos, and the
    resource-state engine's forward layer cache -- are shared by every
    (P, mbs, D) candidate the worker sees, exactly as in the serial driver)."""
    return {
        "planner": SailorPlanner(env, config=config),
        "job": job,
        "objective": objective,
        "consolidated": consolidated,
        "resources": resources,
        "context": PlannerSearchContext(env, job, objective.goal),
    }


def _init_worker(payload: bytes) -> None:
    """Process-pool initializer: receive the per-call invariants once.

    The driver pre-serializes the invariants -- dominated by the profile
    store inside the environment -- into one pickle blob, so the expensive
    object-graph walk happens once per planning call instead of once per
    worker process (initargs are re-pickled for every worker; a ``bytes``
    payload makes that re-pickling a memcpy).  This is the fallback path
    when the shared-memory store is unavailable; see :func:`_init_worker_shm`.
    """
    _WORKER_STATE.clear()
    _WORKER_STATE.update(_make_worker_state(*pickle.loads(payload)))


def _init_worker_shm(name: str, size: int) -> None:
    """Process-pool initializer: attach to the driver's shared-memory blob.

    The driver writes the pre-serialized invariants into one
    ``multiprocessing.shared_memory`` segment; each worker attaches, reads
    the ``size`` payload bytes and unpickles locally.  Unlike the ``bytes``
    initargs fallback the blob is never copied through the executor's task
    pipe per worker -- only ``(name, size)`` travels -- which is what makes
    worker startup O(1) in the profile-store size.  The driver owns the
    segment's lifetime and unlinks it once the pool is done.  (CPython <=
    3.12 registers the segment with the resource tracker on *attach* too;
    under the fork start method the workers share the driver's tracker, so
    the duplicate registrations collapse and the driver's ``unlink``
    retires the single entry.  Under spawn a worker-owned tracker may
    unlink the segment first -- after every branch result has already been
    returned -- which the driver's unlink tolerates.)
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        payload = bytes(segment.buf[:size])
    finally:
        segment.close()
    _init_worker(payload)


def _maybe_inject_fault(pp: int, mbs: int) -> None:
    """Test-only fault hook for the fault-tolerant parallel driver.

    Armed via environment variables (modeled on the seeded fault scenarios
    in :mod:`repro.runtime.faults`, but at the *planner worker* layer):

    * ``SAILOR_PLANNER_FAULT="<kind>:<pp>:<mbs>[:<seconds>]"`` -- fire on
      the matching branch (``*`` wildcards both selectors).  ``sigkill``
      terminates the worker process uncleanly mid-branch (the
      ``BrokenProcessPool`` salvage path); ``hang`` sleeps for ``seconds``
      (default 30) to wedge the worker (the per-branch-timeout path).
    * ``SAILOR_PLANNER_FAULT_ONCE=<path>`` -- fire only once across every
      process that sees the spec, via atomic create of ``path`` (so the
      retry pool succeeds and the salvage can be asserted lossless).

    The hook only ever fires in a pool worker (never in the driver or the
    inline re-run), so an armed fault cannot take down the planning call.
    """
    spec = os.environ.get("SAILOR_PLANNER_FAULT")
    if not spec:
        return
    parts = spec.split(":")
    if len(parts) < 3:
        return
    kind, want_pp, want_mbs = parts[0], parts[1], parts[2]
    if want_pp not in ("*", str(pp)) or want_mbs not in ("*", str(mbs)):
        return
    if multiprocessing.parent_process() is None:
        return  # never fault the driver process
    once_path = os.environ.get("SAILOR_PLANNER_FAULT_ONCE")
    if once_path:
        try:
            os.close(os.open(once_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return  # the fault already fired once
    if kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(parts[3]) if len(parts) > 3 else 30.0)


def _plan_branch_task(payload: tuple,
                      state: dict | None = None,
                      ) -> tuple[_BranchOutcome, SearchStats]:
    """Worker entry point: search one (P, mbs) branch.

    ``wall_deadline`` is an absolute ``time.time()`` instant shared by every
    branch task, so ``time_limit_s`` bounds the whole planning call rather
    than restarting per branch; it is converted to this process's
    ``perf_counter`` timeline on entry.  The worker's search context is
    shared across its branches, so the returned stats are the *delta* this
    branch contributed (summing deltas across tasks equals the total work).
    """
    pp, mbs, wall_deadline = payload
    if state is None:
        state = _WORKER_STATE
        _maybe_inject_fault(pp, mbs)
    planner = state["planner"]
    job = state["job"]
    objective = state["objective"]
    context = state["context"]
    before = context.stats.copy()
    # lint: disable=determinism -- rebases the shared wall-clock deadline
    # onto this worker's perf_counter epoch; the clock reaches the search
    # only through the SearchBudget built from it.
    deadline = (None if wall_deadline is None
                else time.perf_counter() + (wall_deadline - time.time()))
    search_budget = SearchBudget.maybe(deadline,
                                       planner.config.max_search_nodes)
    outcome = planner._plan_branch(job, objective, state["consolidated"],
                                   state["resources"], pp, mbs, context,
                                   search_budget)
    return outcome, context.stats.diff(before)


class ParallelPlanner:
    """Opt-in multi-process driver for the Sailor planner search.

    The (pipeline depth, microbatch size) branches of the search are
    independent -- they share no incumbent and no early-stop state -- so
    they can run in separate worker processes.  Each worker builds its own
    :class:`~repro.core.search_cache.PlannerSearchContext`, returns its
    branch's best scored plan, and the driver merges the branch winners *in
    branch order* with the same comparison the serial search uses, so the
    chosen plan is identical to the serial planner's.

    The planning invariants (dominated by the profile store inside the
    environment) are pickled once per call and published through a
    ``multiprocessing.shared_memory`` segment that workers attach to, so
    worker startup cost is independent of the profile-store size; the
    ``bytes``-initargs path remains as a fallback for platforms without
    shared memory.

    ``time_limit_s`` bounds the whole planning call: the driver fixes one
    absolute wall-clock deadline up front and every branch task honours it,
    so late-starting branches get only the time that remains.
    """

    name = "sailor"

    def __init__(self, env: SimulationEnvironment,
                 config: PlannerConfig | None = None,
                 max_workers: int | None = None) -> None:
        self.env = env
        self.config = config or PlannerConfig()
        self.max_workers = (max_workers or self.config.parallel_workers
                            or os.cpu_count() or 1)

    def plan(self, job: TrainingJobSpec, topology: ClusterTopology,
             objective: Objective | None = None) -> PlannerResult:
        """Search for the best plan, fanning branches out over processes."""
        objective = objective or Objective.max_throughput()
        # lint: disable=determinism -- observability (search_time_s) only.
        start = time.perf_counter()
        heuristics = self.config.heuristics

        consolidated = consolidate_zones(topology, heuristics)
        resources = SailorPlanner._resource_map(consolidated.topology)
        total_nodes = sum(resources.values())
        specs = SailorPlanner._branch_specs(job, total_nodes, heuristics)

        # Workers must not recurse into the parallel driver themselves.
        worker_config = replace(self.config, parallel_workers=None)
        # One absolute deadline for the whole call, on the wall clock so it
        # is meaningful in every worker process.
        # lint: disable=determinism -- the cross-process anytime deadline;
        # each worker rebases it into a SearchBudget, the sole gate through
        # which it can truncate (never reorder) the search.
        wall_deadline = (None if self.config.time_limit_s is None
                         else time.time() + self.config.time_limit_s)
        invariants = (self.env, job, objective, worker_config, consolidated,
                      resources)
        payloads = [(pp, mbs, wall_deadline) for pp, mbs in specs]

        stats = SearchStats()
        salvaged: list[str] = []
        if len(payloads) <= 1 or self.max_workers <= 1:
            local_state = _make_worker_state(*invariants)
            results = [_plan_branch_task(payload, state=local_state)
                       for payload in payloads]
        else:
            workers = min(self.max_workers, len(payloads))
            # Serialize the invariants (profiles included) exactly once and
            # publish them through a shared-memory segment the workers
            # attach to; when shared memory is unavailable (no /dev/shm,
            # exotic platforms) fall back to shipping the blob via initargs.
            #
            # Lifecycle: the single try/finally below starts *before* the
            # segment is created, so every exit path -- a worker raising a
            # genuine error mid-branch (re-raised by the gather), pool
            # shutdown on KeyboardInterrupt, and even a non-OSError between
            # creation and the pool block -- retires the segment.  (An
            # OSError during creation/population falls back to
            # initargs-bytes; a half-created segment from that path is
            # retired by the same finally.)  The segment outlives the retry
            # pool too, so retried branches reuse the same initializer.
            blob = pickle.dumps(invariants, protocol=pickle.HIGHEST_PROTOCOL)
            segment = None
            try:
                try:
                    segment = shared_memory.SharedMemory(create=True,
                                                         size=max(1, len(blob)))
                    segment.buf[:len(blob)] = blob
                    initializer, initargs = _init_worker_shm, (segment.name,
                                                               len(blob))
                except OSError:
                    initializer, initargs = _init_worker, (blob,)
                # Fault-tolerant gather: a crashed (BrokenProcessPool) or
                # wedged (per-branch timeout) worker marks its branches
                # dead instead of killing the call.  Dead branches are
                # retried once on a fresh pool, then re-run inline
                # serially; the merged result lists them and is marked
                # incomplete even when fully recovered.
                results, dead = self._run_pool(payloads, workers,
                                               initializer, initargs)
                if dead:
                    salvaged = [f"P{payloads[i][0]}/mbs{payloads[i][1]}"
                                for i in dead]
                    retry_payloads = [payloads[i] for i in dead]
                    retried, still_dead = self._run_pool(
                        retry_payloads, min(workers, len(dead)),
                        initializer, initargs)
                    for offset, index in enumerate(dead):
                        results[index] = retried[offset]
                    if still_dead:
                        # Inline re-run in the driver process: the fault
                        # hook never fires here, and a genuine error
                        # surfaces with its real traceback.
                        local_state = _make_worker_state(*invariants)
                        for offset in still_dead:
                            index = dead[offset]
                            results[index] = _plan_branch_task(
                                payloads[index], state=local_state)
            finally:
                if segment is not None:
                    segment.close()
                    try:
                        segment.unlink()
                    except FileNotFoundError:
                        pass  # a worker's resource tracker beat us to it

        # Replay the serial driver's dominated-family skips (see
        # PlannerConfig.family_interval_memo): workers run with no
        # cross-branch incumbent -- they only *price* their family -- so
        # the driver re-takes the serial skip decisions in branch order
        # from the reported floors, through the same shared predicate.  A
        # dropped branch is replaced by exactly what a serial skip
        # produces: an empty complete outcome plus a stats delta of one
        # skipped family (zero DP solves, zero evaluations), which keeps
        # the chosen plan, candidates_evaluated and nodes_explored
        # byte-identical to the serial search.  A dropped branch cannot
        # have carried the winner: its best evaluation is >= its family
        # floor >= the incumbent's minimised scalar, and
        # ``Objective.better`` is strict.
        if self.config.family_interval_memo:
            incumbent_eval = None
            for index, (outcome, _) in enumerate(results):
                if SailorPlanner._family_dominated(
                        objective, outcome.family_floor, incumbent_eval):
                    results[index] = (
                        _BranchOutcome(label=outcome.label,
                                       family_floor=outcome.family_floor),
                        SearchStats(families_skipped=1, branches_complete=1))
                elif (outcome.evaluation is not None
                      and objective.better(outcome.evaluation,
                                           incumbent_eval)):
                    incumbent_eval = outcome.evaluation

        for _, branch_stats in results:
            stats.merge(branch_stats)
        outcomes = [outcome for outcome, _ in results]
        best_plan, best_eval, candidates, ooms = SailorPlanner._merge_outcomes(
            objective, outcomes)
        complete, gap, incomplete = SailorPlanner._anytime_summary(
            objective, outcomes, best_eval)
        if salvaged:
            # Fault-degraded: even a lossless salvage is reported as
            # incomplete so callers can tell a degraded call from a clean
            # one (the gap still certifies the recovered values).
            complete = False
            affected = set(salvaged)
            incomplete = [o.label for o in outcomes
                          if not o.complete or o.label in affected]

        notes = (f"parallel driver, "
                 f"{min(self.max_workers, max(1, len(payloads)))} workers")
        if salvaged:
            notes += f", salvaged {len(salvaged)} branch(es)"
        return PlannerResult(
            plan=best_plan,
            evaluation=best_eval,
            # lint: disable=determinism -- reporting only, not plan-affecting.
            search_time_s=time.perf_counter() - start,
            planner_name=self.name,
            candidates_evaluated=candidates,
            oom_plans_generated=ooms,
            notes=notes,
            search_stats=stats,
            complete=complete,
            optimality_gap_bound=gap,
            incomplete_branches=incomplete,
        )

    def _run_pool(self, payloads: list[tuple], workers: int,
                  initializer, initargs,
                  ) -> tuple[list, list[int]]:
        """Run branch tasks on one pool; report dead indices, don't raise.

        Returns ``(results, dead)`` where ``results[i]`` is the task result
        or None for every index in ``dead``.  Only worker *death* is
        absorbed -- ``BrokenProcessPool`` (crash) and the per-branch
        timeout (wedge, with ``branch_timeout_s`` grace beyond the call
        deadline).  Genuine task exceptions (and ``KeyboardInterrupt``)
        propagate exactly as under the old ``pool.map`` driver.
        """
        grace = self.config.branch_timeout_s
        gather_deadline = None
        if grace is not None:
            # lint: disable=determinism -- wedge detection in the
            # fault-tolerant gather: decides when to *salvage* a branch,
            # and a salvaged branch re-runs the same deterministic search,
            # so the chosen plan cannot depend on this clock.
            gather_deadline = (time.monotonic() + grace
                               + (self.config.time_limit_s or 0.0))
        results: list = [None] * len(payloads)
        dead: list[int] = []
        pool = ProcessPoolExecutor(max_workers=workers,
                                   initializer=initializer,
                                   initargs=initargs)
        try:
            futures: list = []
            for payload in payloads:
                try:
                    futures.append(pool.submit(_plan_branch_task, payload))
                except BrokenProcessPool:
                    futures.append(None)  # pool died mid-submit
            for index, future in enumerate(futures):
                if future is None:
                    dead.append(index)
                    continue
                # lint: disable=determinism -- same wedge-detection clock as
                # gather_deadline above; affects recovery timing only.
                timeout = (None if gather_deadline is None
                           else max(0.0, gather_deadline - time.monotonic()))
                try:
                    results[index] = future.result(timeout=timeout)
                except (BrokenProcessPool, _FuturesTimeout):
                    dead.append(index)
        finally:
            # A clean pool drains normally; a pool with dead branches is
            # abandoned without waiting and its workers are killed, so a
            # wedged worker cannot pin the process (or the retry) forever.
            pool.shutdown(wait=not dead, cancel_futures=bool(dead))
            if dead:
                processes = dict(getattr(pool, "_processes", None) or {})
                for process in processes.values():
                    try:
                        process.kill()
                    # lint: disable=swallowed-exceptions -- racing a normal
                    # exit of a process we are killing anyway; there is
                    # nothing to recover and nothing worth reporting.
                    except Exception:
                        pass
        return results, dead
