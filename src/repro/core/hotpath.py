"""The ``@hot_path`` marker: a zero-cost anchor for the hot-loop lint.

Profiling (``profile_planner.py --phases``) puts essentially all planner
wall time inside a handful of functions -- the forward reachability pass,
the backward scoring kernels, the batched budget threading and the fused
evaluation kernels.  PR 8 taught those functions an allocation
discipline (no fresh full-size ``np.where``/``astype``/``copy``
temporaries; fuse in place); the marker makes the discipline enforceable:
``repro.analysis`` rule ``hot-loop-alloc`` flags fresh full-size
temporaries inside any function carrying it.

The decorator does nothing at runtime beyond tagging the function object
at import time -- no wrapper, no indirection, no per-call cost.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def hot_path(fn: F) -> F:
    """Mark ``fn`` as planner-hot (lint anchor; zero runtime cost)."""
    fn.__hot_path__ = True
    return fn
