"""Objectives and constraints for the planner.

Users submit an objective -- maximise throughput or minimise monetary cost
per iteration -- and optional constraints: a budget ceiling (USD per
iteration) and/or a throughput floor (iterations per second).  Both the
Sailor planner and the constraint-adapted baselines (section 5.2.4) consume
these datatypes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.plan import PlanEvaluation


class OptimizationGoal(enum.Enum):
    """What the planner optimises."""

    MAX_THROUGHPUT = "max_throughput"
    MIN_COST = "min_cost"


@dataclass(frozen=True)
class Constraint:
    """Optional limits a valid plan must satisfy.

    Attributes
    ----------
    max_cost_per_iteration_usd:
        Budget ceiling per iteration (``None`` = unconstrained).
    min_throughput_iters_per_s:
        Throughput floor (``None`` = unconstrained).
    max_gpus:
        Hard cap on the number of GPUs a plan may use.
    """

    max_cost_per_iteration_usd: float | None = None
    min_throughput_iters_per_s: float | None = None
    max_gpus: int | None = None

    def __post_init__(self) -> None:
        if (self.max_cost_per_iteration_usd is not None
                and self.max_cost_per_iteration_usd <= 0):
            raise ValueError("max_cost_per_iteration_usd must be positive")
        if (self.min_throughput_iters_per_s is not None
                and self.min_throughput_iters_per_s <= 0):
            raise ValueError("min_throughput_iters_per_s must be positive")
        if self.max_gpus is not None and self.max_gpus < 1:
            raise ValueError("max_gpus must be >= 1")

    @property
    def is_unconstrained(self) -> bool:
        """True when no limit is set."""
        return (self.max_cost_per_iteration_usd is None
                and self.min_throughput_iters_per_s is None
                and self.max_gpus is None)

    def satisfied_by(self, evaluation: PlanEvaluation,
                     total_gpus: int | None = None) -> bool:
        """Check whether an evaluated plan satisfies every limit."""
        if not evaluation.is_valid:
            return False
        if (self.max_cost_per_iteration_usd is not None
                and evaluation.cost_per_iteration_usd > self.max_cost_per_iteration_usd):
            return False
        if (self.min_throughput_iters_per_s is not None
                and evaluation.throughput_iters_per_s < self.min_throughput_iters_per_s):
            return False
        if (self.max_gpus is not None and total_gpus is not None
                and total_gpus > self.max_gpus):
            return False
        return True


@dataclass(frozen=True)
class Objective:
    """Objective + constraints bundle passed to a planner."""

    goal: OptimizationGoal = OptimizationGoal.MAX_THROUGHPUT
    constraint: Constraint = Constraint()

    def score(self, evaluation: PlanEvaluation) -> float:
        """Scalar score where *larger is better* under this objective."""
        if self.goal is OptimizationGoal.MAX_THROUGHPUT:
            return evaluation.throughput_iters_per_s
        return -evaluation.cost_per_iteration_usd

    def better(self, candidate: PlanEvaluation,
               incumbent: PlanEvaluation | None) -> bool:
        """True when ``candidate`` beats the current ``incumbent``."""
        if incumbent is None:
            return True
        return self.score(candidate) > self.score(incumbent)

    @classmethod
    def max_throughput(cls, max_cost_per_iteration_usd: float | None = None,
                       max_gpus: int | None = None) -> "Objective":
        """Maximise throughput, optionally under a budget ceiling."""
        return cls(goal=OptimizationGoal.MAX_THROUGHPUT,
                   constraint=Constraint(
                       max_cost_per_iteration_usd=max_cost_per_iteration_usd,
                       max_gpus=max_gpus))

    @classmethod
    def min_cost(cls, min_throughput_iters_per_s: float | None = None,
                 max_gpus: int | None = None) -> "Objective":
        """Minimise USD per iteration, optionally above a throughput floor."""
        return cls(goal=OptimizationGoal.MIN_COST,
                   constraint=Constraint(
                       min_throughput_iters_per_s=min_throughput_iters_per_s,
                       max_gpus=max_gpus))
