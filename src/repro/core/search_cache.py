"""Cross-candidate caches shared by one planner invocation.

Motivation
----------
``SailorPlanner.plan`` explores one DP-solver candidate per
``(pipeline depth, microbatch size, data-parallel degree)`` triple.  The
quantities the solver needs -- per-stage compute times, gradient-sync
times, cost rates and the per-stage resource-combo enumeration -- depend
only on a *subset* of those knobs, so recomputing them inside every
:class:`~repro.core.dp_solver.DPSolver` wastes the bulk of the planner's
time.  :class:`PlannerSearchContext` hoists those caches out of the solver
so they are filled once per planner call and shared by every candidate
(and, in the serial driver, by every ``(P, mbs)`` branch).

Cache keys and invalidation rules
---------------------------------
All caches live on one :class:`PlannerSearchContext`, which is bound to a
single ``(environment, job, optimisation goal)`` triple.  A context must be
discarded whenever any of those change -- there is deliberately *no*
invalidation logic inside the context, because profiles, prices and the
job spec are immutable for the duration of one planning call.  Topology
changes (nodes appearing or disappearing) do **not** require a new
context: resource availability enters every key explicitly, so stale
entries can never be observed, only unused ones.

The keys (conceptually ``(pp, mbs, stage, node_type, tp)`` and
refinements; a :class:`~repro.models.partition.LayerPartition` value-hashes
``(pp, stage)`` plus the embedding/LM-head flags, so it is used in place of
the raw ``(pp, stage)`` pair):

=====================  ====================================================
cache                  key
=====================  ====================================================
partitions             ``pp`` (uniform layer split of the job's model)
stage compute time     ``(partition, mbs, node_type, tp)``
stage parameter count  ``partition``
stage sync time        ``(partition, dp, placements)``
stage cost rate        ``placements``
stage assignment       ``(partition, mbs, dp, placements)``
stage options          ``(tp_key, resources)``
stage master combos    ``(partition, mbs, dp, tp_key, resources, goal,
                       combo-config knobs)``
link class             ``(zone_a, zone_b)``
node specs / prices    ``node_type``
=====================  ====================================================

``placements`` is the canonical tuple ``((StageOption, count), ...)`` and
``resources`` the canonical sorted tuple ``(((zone, node_type), count),
...)``; both are hashable by construction.  ``tp_key`` canonicalises the
per-stage tensor-parallel option dict.

The context also owns the :class:`~repro.core.plan.SearchStats` counters
(nodes explored, memo hits, pruned branches, cache hits/misses, and the
candidate-level incumbent gate's ``gate_skips``) that
:class:`~repro.core.plan.PlannerResult` exposes, which is what makes the
speedup observable from benchmarks and ``examples/compare_planners.py``.

The *evaluation* side of the planner has a sibling context:
:class:`~repro.core.simulator.eval_context.EvaluationContext` plays the
same role for ``SailorSimulator.evaluate`` (per-environment caches plus
vectorized kernels over canonical plan arrays) that this class plays for
the DP search.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.collectives import ring_allreduce_time
from repro.core.objectives import OptimizationGoal
from repro.core.plan import SearchStats
from repro.hardware.network import LinkClass
from repro.hardware.nodes import get_node_type
from repro.models.partition import LayerPartition, uniform_partition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (environment -> plan)
    from repro.core.simulator.environment import SimulationEnvironment
    from repro.models.spec import TrainingJobSpec


#: Canonical resource state: sorted ``(((zone, node_type), count), ...)``.
ResourceKey = tuple[tuple[tuple[str, str], int], ...]


@dataclass(frozen=True, slots=True)
class StageOption:
    """One way to host replicas of a stage: a (zone, node type, TP) choice."""

    zone: str
    node_type: str
    tensor_parallel: int

    @property
    def gpus_per_node(self) -> int:
        return get_node_type(self.node_type).gpus_per_node

    @property
    def replicas_per_node(self) -> int:
        """How many replicas of this option fit on one node."""
        return max(1, self.gpus_per_node // self.tensor_parallel)

    def nodes_needed(self, replicas: int) -> int:
        """Whole nodes needed to host ``replicas`` replicas."""
        return math.ceil(replicas / self.replicas_per_node)


@dataclass(frozen=True, slots=True)
class StageAssignment:
    """Resources given to one stage: replica counts per option.

    Instances are frozen and shared across DP candidates via the
    :class:`PlannerSearchContext` assignment cache, so the whole-node
    footprint is precomputed once at construction instead of on every
    ``nodes_used`` access in the recursion.  Note the footprint is a plain
    dict, so instances are *not* hashable despite ``frozen=True``.
    """

    stage_index: int
    placements: tuple[tuple[StageOption, int], ...]
    compute_time_s: float
    sync_time_s: float
    cost_rate_usd_per_s: float
    #: Whole nodes consumed, keyed by (zone, node type); derived from
    #: ``placements`` when omitted.  A caller-provided dict is copied so the
    #: assignment never aliases mutable state (e.g. a cached combo footprint).
    nodes_used: dict[tuple[str, str], int] | None = None

    def __post_init__(self) -> None:
        if self.nodes_used is None:
            used: dict[tuple[str, str], int] = {}
            for option, count in self.placements:
                key = (option.zone, option.node_type)
                used[key] = used.get(key, 0) + option.nodes_needed(count)
            object.__setattr__(self, "nodes_used", used)
        else:
            object.__setattr__(self, "nodes_used", dict(self.nodes_used))

    @property
    def total_replicas(self) -> int:
        return sum(count for _, count in self.placements)

    @property
    def zones(self) -> list[str]:
        return sorted({opt.zone for opt, _ in self.placements})


def tp_options_key(tp_options: dict[str, list[int]]) -> tuple:
    """Hashable canonical form of a per-stage TP-option dict."""
    return tuple(sorted((node_type, tuple(degrees))
                        for node_type, degrees in tp_options.items()))


class PlannerSearchContext:
    """Shared caches + search counters for one planner invocation.

    See the module docstring for the exact cache keys and the (absence of)
    invalidation rules.  One context serves every DP candidate of one
    ``SailorPlanner.plan`` call; the parallel driver builds one per worker
    process and merges the stats afterwards.
    """

    def __init__(self, env: "SimulationEnvironment", job: "TrainingJobSpec",
                 goal: OptimizationGoal = OptimizationGoal.MAX_THROUGHPUT) -> None:
        self.env = env
        self.job = job
        self.goal = goal
        self.stats = SearchStats()
        self._partitions: dict[int, list[LayerPartition]] = {}
        self._compute_time: dict[tuple, float] = {}
        self._stage_params: dict[LayerPartition, int] = {}
        self._sync_time: dict[tuple, float] = {}
        self._cost_rate: dict[tuple, float] = {}
        self._assignment: dict[tuple, StageAssignment] = {}
        self._options: dict[tuple, list[tuple[StageOption, int]]] = {}
        self._combos: dict[tuple, list[list]] = {}
        #: Cross-candidate forward-reachability cache (resource-state
        #: engine): ForwardLayers keyed by the solver's forward signature
        #: (clamped root + per-stage footprint matrices + clamps + limit).
        #: Layer reachability is microbatch-size independent, so every
        #: (P, mbs, D) candidate with the same signature -- typically all
        #: mbs variants of one (P, D) -- shares one forward pass.  The
        #: cached ForwardLayers also lazily grow the backward CSR argmin
        #: skeletons (``ForwardLayers.backward_csr``): the sparsity pattern
        #: of each layer's feasible (row, combo) pairs, which is likewise
        #: mbs-independent, so every candidate sharing a forward pass
        #: shares the backward reduction's structure too
        #: (``SearchStats.backward_shared_hits``).  Bounded FIFO: one
        #: planner call produces one signature per (P, D)-shaped
        #: candidate, far below the cap; the bound only guards pathological
        #: topologies from accumulating layer arrays without limit.
        self._forward_layers: dict[tuple, object] = {}
        self._forward_layers_max = 256
        #: Budget-certificate bound tables (resource-state engine):
        #: BudgetBoundTables (straggler, cost *and* sync floors -- the cost
        #: floor folds the minimal attainable sync overhead, see
        #: ``resource_state.compute_budget_bounds``) keyed by (forward
        #: signature, num microbatches, per-stage compute/sync/rate blobs)
        #: -- everything the bound recursion reads -- so only bit-identical
        #: bound passes are ever shared.  Same bounded-FIFO policy as the
        #: forward layers.
        self._budget_bounds: dict[tuple, object] = {}
        self._budget_bounds_max = 256
        #: Interval memo over partition counts (family floors): per
        #: ``(pp, mbs, tp_key)`` family, the availability-free per-stage
        #: minima triple of ``SailorPlanner._stage_floors``, plus the
        #: per-member ``{dp: floor}`` table it induces.  The memo reuses
        #: PR 3's interval-keyed validity-range idea one level up: each
        #: entry is valid for *every* availability snapshot (the minima
        #: range over every option the family admits, a superset of any
        #: pool's), and each per-``dp`` member floor is valid for every
        #: availability whose candidate interval contains ``dp`` -- so
        #: churn replans reuse the whole table warm with zero
        #: invalidation.  Unbounded by design: the key space is the
        #: (pp, mbs) enumeration itself, a few hundred entries at most.
        self._family_stage_floors: dict[tuple, tuple | None] = {}
        self._family_member_floors: dict[tuple, dict[int, float]] = {}
        #: Availability-aware tail-kill floor tables
        #: (``SailorPlanner._availability_stage_tables``), keyed by the
        #: full availability signature ``(pp, mbs, tp_key, resources)``.
        #: Bounded FIFO like the forward layers: one entry per (branch,
        #: pool) pair, so an online controller replanning across many
        #: availability snapshots cannot accumulate tables without limit.
        #: Hits are counted on ``stats.availability_floor_hits`` -- the
        #: observable behind the churn-replans-reuse-them-warm claim.
        self._availability_floors: dict[tuple, object] = {}
        self._availability_floors_max = 256
        self._link_class: dict[tuple[str, str], LinkClass] = {}
        self._region: dict[str, str] = {}
        self._gpus_per_node: dict[str, int] = {}
        self._gpu_price: dict[str, float] = {}
        self._replicas_per_node: dict[tuple[str, int], int] = {}

    # -- hardware lookups -------------------------------------------------------

    def region_of(self, zone: str) -> str:
        region = self._region.get(zone)
        if region is None:
            region = self.env.region_of(zone)
            self._region[zone] = region
        return region

    def gpus_per_node(self, node_type: str) -> int:
        count = self._gpus_per_node.get(node_type)
        if count is None:
            count = get_node_type(node_type).gpus_per_node
            self._gpus_per_node[node_type] = count
        return count

    def replicas_per_node(self, node_type: str, tensor_parallel: int) -> int:
        """Replicas of one (node type, TP) choice that fit on one node.

        Context-scoped (like every hardware lookup here) so a re-registered
        node type can never leak a stale value across planning calls.
        """
        key = (node_type, tensor_parallel)
        cached = self._replicas_per_node.get(key)
        if cached is None:
            cached = max(1, self.gpus_per_node(node_type) // tensor_parallel)
            self._replicas_per_node[key] = cached
        return cached

    def gpu_price_per_second(self, node_type: str) -> float:
        price = self._gpu_price.get(node_type)
        if price is None:
            spec = get_node_type(node_type)
            price = self.env.prices.gpu_price_per_second(spec.gpu.name)
            self._gpu_price[node_type] = price
        return price

    # -- model-side caches ------------------------------------------------------

    def partitions(self, pipeline_parallel: int) -> list[LayerPartition]:
        """Uniform layer partition of the job's model, cached per depth."""
        cached = self._partitions.get(pipeline_parallel)
        if cached is None:
            cached = uniform_partition(self.job.model, pipeline_parallel)
            self._partitions[pipeline_parallel] = cached
        return cached

    def stage_params(self, partition: LayerPartition) -> int:
        params = self._stage_params.get(partition)
        if params is None:
            params = partition.stage_params(self.job.model)
            self._stage_params[partition] = params
        return params

    # -- stage metrics ----------------------------------------------------------

    def stage_compute_time(self, partition: LayerPartition, microbatch_size: int,
                           node_type: str, tensor_parallel: int) -> float:
        """Per-microbatch forward+backward time of a stage on one option."""
        key = (partition, microbatch_size, node_type, tensor_parallel)
        cached = self._compute_time.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        gpu_type = get_node_type(node_type).gpu.name
        profile = self.env.profiles.job_profile(gpu_type)
        layer = profile.layer(microbatch_size, tensor_parallel)
        total = partition.num_layers * layer.fwd_bwd_s
        if partition.has_embedding:
            total += profile.embedding(microbatch_size, tensor_parallel).fwd_bwd_s
        if partition.has_lm_head:
            total += profile.head(microbatch_size, tensor_parallel).fwd_bwd_s
        self._compute_time[key] = total
        return total

    def stage_sync_time(self, partition: LayerPartition, data_parallel: int,
                        placements: tuple[tuple[StageOption, int], ...]) -> float:
        """Approximate gradient all-reduce time of a stage's replicas."""
        if data_parallel == 1:
            return 0.0
        key = (partition, data_parallel, placements)
        cached = self._sync_time.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        stage_params = self.stage_params(partition)
        message = max(stage_params / opt.tensor_parallel * 2.0
                      for opt, _ in placements)
        zones = sorted({opt.zone for opt, _ in placements})
        node_types = sorted({opt.node_type for opt, _ in placements})
        if len(zones) == 1:
            link_class = LinkClass.INTRA_ZONE
        else:
            link_class = self.link_class(zones[0], zones[-1])
        profile = self.env.profiles.network_profile(
            node_types[0], node_types[-1], link_class)
        total = ring_allreduce_time(message, data_parallel, profile.transfer_time)
        self._sync_time[key] = total
        return total

    def link_class(self, zone_a: str, zone_b: str) -> LinkClass:
        key = (zone_a, zone_b)
        cached = self._link_class.get(key)
        if cached is None:
            cached = self.env.link_class(zone_a, zone_b)
            self._link_class[key] = cached
        return cached

    def stage_cost_rate(self,
                        placements: tuple[tuple[StageOption, int], ...]) -> float:
        """USD per second of the whole nodes a stage occupies."""
        cached = self._cost_rate.get(placements)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        total = 0.0
        for option, count in placements:
            nodes = option.nodes_needed(count)
            total += (nodes * self.gpus_per_node(option.node_type)
                      * self.gpu_price_per_second(option.node_type))
        self._cost_rate[placements] = total
        return total

    def stage_assignment(self, partition: LayerPartition, microbatch_size: int,
                         data_parallel: int,
                         placements: tuple[tuple[StageOption, int], ...],
                         nodes_used: dict[tuple[str, str], int] | None = None,
                         ) -> StageAssignment:
        """Fully-costed assignment of one combo, shared across candidates."""
        key = (partition, microbatch_size, data_parallel, placements)
        cached = self._assignment.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        assignment = self.build_stage_assignment(
            partition, microbatch_size, data_parallel, placements,
            nodes_used=nodes_used)
        self._assignment[key] = assignment
        return assignment

    def build_stage_assignment(self, partition: LayerPartition,
                               microbatch_size: int, data_parallel: int,
                               placements: tuple[tuple[StageOption, int], ...],
                               nodes_used: dict[tuple[str, str], int] | None = None,
                               compute_time_s: float | None = None,
                               ) -> StageAssignment:
        """Construct a fully-costed assignment without the keyed memo.

        The DP solver stores the assignment on its master-combo entry, which
        already deduplicates within a planner call, so the keyed memo above
        would only add (partition, placements)-hashing overhead on that
        path; the component caches (compute/sync/cost) still apply.
        ``compute_time_s`` lets the caller pass the stage compute time the
        master-combo ranking already established for these placements.
        """
        if compute_time_s is None:
            compute_time_s = max(
                self.stage_compute_time(partition, microbatch_size,
                                        opt.node_type, opt.tensor_parallel)
                for opt, _ in placements)
        sync = self.stage_sync_time(partition, data_parallel, placements)
        cost_rate = self.stage_cost_rate(placements)
        return StageAssignment(
            stage_index=partition.stage_index, placements=placements,
            compute_time_s=compute_time_s, sync_time_s=sync,
            cost_rate_usd_per_s=cost_rate, nodes_used=nodes_used)

    # -- resource-state forward layers ------------------------------------------

    def forward_layers(self, signature: tuple, build):
        """Forward-reachability layers for one footprint signature.

        ``build`` is invoked on a miss (it runs the chunked forward pass);
        hits are counted on ``stats.layer_cache_hits`` -- the observable
        behind the cross-candidate sharing claim.  Entries are evicted FIFO
        beyond the (generous) cap; see the attribute comment in
        ``__init__``.
        """
        cached = self._forward_layers.get(signature)
        if cached is not None:
            self.stats.layer_cache_hits += 1
            return cached
        layers = build()
        if len(self._forward_layers) >= self._forward_layers_max:
            self._forward_layers.pop(next(iter(self._forward_layers)))
        self._forward_layers[signature] = layers
        return layers

    def budget_bounds(self, signature: tuple, build):
        """Budget-certificate bound tables for one bound signature.

        The straggler/cost lower bounds the budget search certifies
        against (``resource_state.compute_budget_bounds``); ``build`` runs
        the batched bound pass on a miss.  Keyed alongside the forward
        layers so candidates sharing a forward pass *and* its per-stage
        compute/rate scalars (plus the microbatch count) share one bound
        table.
        """
        cached = self._budget_bounds.get(signature)
        if cached is not None:
            return cached
        bounds = build()
        if len(self._budget_bounds) >= self._budget_bounds_max:
            self._budget_bounds.pop(next(iter(self._budget_bounds)))
        self._budget_bounds[signature] = bounds
        return bounds

    # -- enumeration-level floors -----------------------------------------------

    def family_stage_floors(self, pp: int, mbs: int, tp_key: tuple, build):
        """Availability-free stage-minima triple of one (P, mbs) family.

        ``build`` runs ``SailorPlanner._stage_floors`` on a miss.  The
        entry is availability-independent (see the attribute comment), so
        it needs no pool in its key and survives churn untouched.
        """
        key = (pp, mbs, tp_key)
        if key in self._family_stage_floors:
            return self._family_stage_floors[key]
        floors = build()
        self._family_stage_floors[key] = floors
        return floors

    def family_member_floors(self, pp: int, mbs: int,
                             tp_key: tuple) -> dict[int, float]:
        """Mutable ``{dp: floor}`` member table of one (P, mbs) family.

        Extended lazily by the planner as availability snapshots expose
        new data-parallel members; an entry, once computed, answers every
        later snapshot whose candidate interval contains that ``dp``
        (the goal is context-bound, so it needs no place in the key).
        """
        key = (pp, mbs, tp_key)
        table = self._family_member_floors.get(key)
        if table is None:
            table = {}
            self._family_member_floors[key] = table
        return table

    def availability_floors(self, signature: tuple, build):
        """Availability-aware floor tables for one (branch, pool) signature.

        ``build`` assembles the per-stage threshold tables
        (``SailorPlanner._availability_stage_tables``) on a miss; hits are
        counted on ``stats.availability_floor_hits``.  Bounded FIFO, same
        policy as the forward layers.
        """
        cached = self._availability_floors.get(signature)
        if cached is not None:
            self.stats.availability_floor_hits += 1
            return cached
        tables = build()
        if len(self._availability_floors) >= self._availability_floors_max:
            self._availability_floors.pop(
                next(iter(self._availability_floors)))
        self._availability_floors[signature] = tables
        return tables

    # -- combo enumeration ------------------------------------------------------

    def stage_options(self, tp_options: dict[str, list[int]], tp_key: tuple,
                      resources: ResourceKey) -> list[tuple[StageOption, int]]:
        """All (option, max replicas) pairs available for a stage."""
        key = (tp_key, resources)
        cached = self._options.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1
        options: list[tuple[StageOption, int]] = []
        for (zone, node_type), count in resources:
            if count <= 0 or node_type not in tp_options:
                continue
            for tp in tp_options[node_type]:
                option = StageOption(zone=zone, node_type=node_type,
                                     tensor_parallel=tp)
                max_replicas = count * self.replicas_per_node(node_type, tp)
                if max_replicas >= 1:
                    options.append((option, max_replicas))
        self._options[key] = options
        return options

    def stage_master_combos(self, partition: LayerPartition,
                            microbatch_size: int, data_parallel: int,
                            tp_options: dict[str, list[int]], tp_key: tuple,
                            resources: ResourceKey, max_mixed: int,
                            split_fractions: tuple[float, ...]) -> list[list]:
        """Every resource combo able to host the stage's ``D`` replicas.

        Honours H5: every combo stays within a single region.  Combos are
        ranked by the stage compute time they imply (cost rate for the cost
        objective) and returned *untruncated* as mutable ``[placements,
        whole-node footprint, lazily-built StageAssignment, frozen
        footprint items, stage compute time]`` entries.  The DP solver
        filters this master list per resource state
        (a combo generated from a resource subset is exactly a master combo
        whose node footprint fits the subset), which replaces a quadratic
        enumeration plus sort per DP node with one linear scan.
        """
        key = (partition, microbatch_size, data_parallel, tp_key, resources,
               self.goal, max_mixed, split_fractions)
        cached = self._combos.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        self.stats.cache_misses += 1

        needed = data_parallel
        options = self.stage_options(tp_options, tp_key, resources)
        by_region: dict[str, list[tuple[StageOption, int]]] = {}
        for option, max_replicas in options:
            by_region.setdefault(self.region_of(option.zone), []).append(
                (option, max_replicas))

        combos: list[tuple[tuple[StageOption, int], ...]] = []
        for region_options in by_region.values():
            # Single-option combos.
            for option, max_replicas in region_options:
                if max_replicas >= needed:
                    combos.append(((option, needed),))
            # Two-option combos (heterogeneous stage or two zones).
            if max_mixed >= 2 and needed >= 2:
                for (opt_a, max_a), (opt_b, max_b) in itertools.combinations(
                        region_options, 2):
                    if opt_a.zone == opt_b.zone and opt_a.node_type == opt_b.node_type:
                        continue
                    for k in _split_counts(needed, split_fractions):
                        if k <= max_a and (needed - k) <= max_b:
                            combos.append(((opt_a, k), (opt_b, needed - k)))

        # Entries are [placements, footprint, assignment-or-None,
        # footprint-items, stage-compute-time]: the footprint and ranking
        # need only cached per-option scalars, while the full assignment
        # (whose sync time is the expensive part) is built lazily by the
        # solver for combos that actually fit a state.  The items tuple is
        # the footprint frozen for the solver's per-state fit scan (no dict
        # iteration per DP node), and the compute time -- needed for the
        # throughput ranking anyway -- is reused by the lazy assignment
        # build instead of being recomputed per combo.
        entries = []
        for placements in combos:
            footprint: dict[tuple[str, str], int] = {}
            for option, count in placements:
                node_key = (option.zone, option.node_type)
                per_node = self.replicas_per_node(option.node_type,
                                                  option.tensor_parallel)
                footprint[node_key] = (footprint.get(node_key, 0)
                                       + math.ceil(count / per_node))
            compute = max(
                self.stage_compute_time(partition, microbatch_size,
                                        opt.node_type, opt.tensor_parallel)
                for opt, _ in placements)
            entries.append([placements, footprint, None,
                            tuple(footprint.items()), compute])

        # Rank by the stage metric, breaking ties on the canonical placement
        # tuple.  The tiebreak matters for correctness of the per-state
        # filter: a stable sort alone would preserve *generation* order,
        # which depends on which (zone, region) pairs a resource state still
        # holds -- so a filtered master list could disagree with a fresh
        # per-state enumeration about which equal-metric combos survive
        # truncation.  A state-independent total order removes that.
        def tiebreak(placements: tuple[tuple[StageOption, int], ...]) -> tuple:
            return tuple((opt.zone, opt.node_type, opt.tensor_parallel, count)
                         for opt, count in placements)

        if self.goal is OptimizationGoal.MIN_COST:
            entries.sort(key=lambda entry: (self.stage_cost_rate(entry[0]),
                                            tiebreak(entry[0])))
        else:
            entries.sort(key=lambda entry: (entry[4], tiebreak(entry[0])))
        self._combos[key] = entries
        return entries


def _split_counts(total: int, fractions: tuple[float, ...]) -> list[int]:
    """Coarse split points for mixing two options within one stage."""
    if total < 2:
        return []
    points = {1, total - 1}
    for fraction in fractions:
        k = int(round(total * fraction))
        if 1 <= k <= total - 1:
            points.add(k)
    return sorted(points)
