"""Cooperative search-budget enforcement for anytime planning.

A planning call that must honour a wall-clock deadline (or a deterministic
node budget, for tests) cannot rely on checks *between* candidates alone:
one deep budget suffix solve can blow past any deadline.  This module
provides the cheap cooperative check that the DP hot loops
(:meth:`~repro.core.dp_solver.DPSolver._solve`, ``_solve_suffix``,
``_solve_budget_batched``) and the :class:`~repro.core.resource_state
.ResourceStateEngine` layer sweeps call once per inner step:

* :class:`SearchBudget` -- a shared countdown over wall-clock time and/or an
  explored-node allowance.  ``tick()`` is a few attribute operations in the
  common case; the clock is only consulted every ``check_interval`` ticks,
  so a budget-carrying solve stays within a bounded number of inner
  iterations of its deadline without measurable overhead.
* :class:`SearchBudgetExhausted` -- the cooperative-cancellation signal.  It
  is *salvageable*: the raiser attaches progress counters, and every caller
  up the stack keeps the incumbent found so far instead of discarding it
  (see :meth:`~repro.core.planner.SailorPlanner._plan_branch`).

When no budget is supplied (``time_limit_s=None`` and no node budget), no
``SearchBudget`` is created and every hot loop pays a single ``is None``
test -- unbounded searches stay byte-identical to the uncancellable ones.
"""

from __future__ import annotations

import time

__all__ = ["SearchBudget", "SearchBudgetExhausted"]


class SearchBudgetExhausted(RuntimeError):
    """Raised by a cooperative cancellation point when the budget is spent.

    The exception is a *salvage* signal, not an error: catchers keep the
    best incumbent found before the interrupt and report the result as
    incomplete with a certified optimality-gap bound.  ``reason`` is
    ``"deadline"`` (wall clock) or ``"node_budget"`` (deterministic tick
    allowance); ``ticks`` counts cancellation-point visits at raise time.
    Raisers with partial state attach progress via :meth:`attach` so the
    caller can report how much work the interrupted solve completed.
    """

    def __init__(self, reason: str, ticks: int) -> None:
        super().__init__(f"search budget exhausted ({reason}) "
                         f"after {ticks} ticks")
        self.reason = reason
        self.ticks = ticks
        self.progress: dict[str, int] = {}

    def attach(self, **progress: int) -> None:
        """Record salvage metadata (partial memo sizes, nodes explored)."""
        self.progress.update(progress)


class SearchBudget:
    """Shared deadline / node-budget countdown for one planning call.

    ``tick()`` is designed for hot loops: it increments an integer, compares
    it against the optional node allowance, and only reads the clock every
    ``check_interval`` ticks.  Once tripped the budget stays exhausted --
    every later ``tick()`` re-raises immediately, which lets deeply nested
    solves unwind without re-checking the clock.
    """

    __slots__ = ("deadline", "max_ticks", "check_interval", "ticks",
                 "exhausted_reason", "_next_clock_check")

    def __init__(self, deadline: float | None = None,
                 max_ticks: int | None = None,
                 check_interval: int = 64) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        #: Absolute ``time.perf_counter()`` deadline, or None.
        self.deadline = deadline
        #: Deterministic tick allowance, or None.
        self.max_ticks = max_ticks
        self.check_interval = check_interval
        self.ticks = 0
        self.exhausted_reason: str | None = None
        self._next_clock_check = check_interval

    @classmethod
    def maybe(cls, deadline: float | None = None,
              max_ticks: int | None = None) -> "SearchBudget | None":
        """A budget if any constraint is set, else None (zero-cost path)."""
        if deadline is None and max_ticks is None:
            return None
        return cls(deadline=deadline, max_ticks=max_ticks)

    @property
    def exhausted(self) -> bool:
        """Whether the budget has tripped (sticky)."""
        return self.exhausted_reason is not None

    def _trip(self, reason: str) -> None:
        self.exhausted_reason = reason
        raise SearchBudgetExhausted(reason, self.ticks)

    def tick(self) -> None:
        """Cooperative cancellation point; raises once the budget is spent."""
        if self.exhausted_reason is not None:
            raise SearchBudgetExhausted(self.exhausted_reason, self.ticks)
        ticks = self.ticks + 1
        self.ticks = ticks
        if self.max_ticks is not None and ticks >= self.max_ticks:
            self._trip("node_budget")
        if ticks >= self._next_clock_check:
            self._next_clock_check = ticks + self.check_interval
            if self.deadline is not None \
                    and time.perf_counter() >= self.deadline:
                self._trip("deadline")

    def expired(self) -> bool:
        """Non-raising check (for between-candidate control flow)."""
        if self.exhausted_reason is not None:
            return True
        if self.deadline is not None \
                and time.perf_counter() >= self.deadline:
            self.exhausted_reason = "deadline"
            return True
        if self.max_ticks is not None and self.ticks >= self.max_ticks:
            self.exhausted_reason = "node_budget"
            return True
        return False
