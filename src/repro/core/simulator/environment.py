"""Simulation environment: everything an estimator needs besides the plan.

Bundles the profile store (per-GPU-type job profiles and fitted network
curves), the cloud layout (zone-to-region mapping) and the price catalog,
plus helpers to resolve the link between two stage replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import StageReplica
from repro.hardware.network import LinkClass, NetworkModel
from repro.hardware.nodes import get_node_type, list_node_types
from repro.hardware.pricing import PriceCatalog, default_price_catalog
from repro.hardware.topology import ClusterTopology, default_cloud_layout
from repro.models.spec import TrainingJobSpec
from repro.profiler.compute import ComputeProfiler
from repro.profiler.network import NetworkProfiler
from repro.profiler.profiles import JobProfile, NetworkProfile, ProfileStore


@dataclass
class SimulationEnvironment:
    """Profiles + cloud layout + prices used by all estimators."""

    profiles: ProfileStore
    zone_to_region: dict[str, str] = field(default_factory=default_cloud_layout)
    prices: PriceCatalog = field(default_factory=default_price_catalog)

    def region_of(self, zone: str) -> str:
        """Region a zone belongs to (GCP naming fallback)."""
        return self.zone_to_region.get(zone, zone.rsplit("-", 1)[0])

    def link_class(self, zone_a: str, zone_b: str) -> LinkClass:
        """Locality class of traffic between two zones."""
        if zone_a == zone_b:
            return LinkClass.INTRA_ZONE
        if self.region_of(zone_a) == self.region_of(zone_b):
            return LinkClass.INTER_ZONE
        return LinkClass.INTER_REGION

    def job_profile(self, replica: StageReplica) -> JobProfile:
        """Job profile of the GPU type a replica runs on."""
        return self.profiles.job_profile(replica.gpu_type)

    def link_between(self, replica_a: StageReplica,
                     replica_b: StageReplica) -> NetworkProfile:
        """Fitted network curve for traffic between two replicas."""
        link_class = self.link_class(replica_a.zone, replica_b.zone)
        return self.profiles.network_profile(
            replica_a.node_type, replica_b.node_type, link_class)

    def link_for_replicas(self, replicas: list[StageReplica]) -> NetworkProfile:
        """Worst (slowest) pairwise link among a group of replicas.

        Used to bound the data-parallel all-reduce of a stage whose replicas
        span nodes, zones or regions.
        """
        if not replicas:
            raise ValueError("need at least one replica")
        if len(replicas) == 1:
            return self.link_between(replicas[0], replicas[0])
        worst: NetworkProfile | None = None
        worst_bw = float("inf")
        probe = 64 * 1024 * 1024  # 64 MiB, a typical gradient bucket
        # A pair's profile depends only on (node types, link class), so a
        # repeated combination yields the same bandwidth and -- the
        # comparison being strict -- can never displace the incumbent:
        # probing each distinct combination once is behavior-preserving and
        # turns the O(D^2) curve evaluations into O(distinct classes).
        #
        # The pair scan itself is also collapsed: a replica's contribution
        # is fully determined by its (node_type, zone) group, so once a
        # leading replica's group has been scanned against every group
        # present, later replicas of that group can contribute no new
        # ordered combination and their whole inner loop is skipped.  The
        # scan order over *new* combinations is exactly the naive double
        # loop's first-encounter order, so the returned profile (including
        # equal-bandwidth ties, resolved by the strict comparison to the
        # earliest encounter) is unchanged.
        group_of: dict[tuple[str, str], int] = {}
        groups: list[tuple[str, str]] = []
        gids = []
        for replica in replicas:
            key = (replica.node_type, replica.zone)
            gid = group_of.get(key)
            if gid is None:
                gid = len(groups)
                group_of[key] = gid
                groups.append(key)
            gids.append(gid)
        if len(groups) == 1:
            # All replicas share one (node type, zone): every pair probes
            # the same intra-zone profile the naive scan would return.
            return self.link_between(replicas[0], replicas[0])
        all_gids = frozenset(gids)
        link_classes: dict[tuple[str, str], LinkClass] = {}
        scanned: dict[int, set[int]] = {}
        seen: set[tuple[str, str, LinkClass]] = set()
        num = len(replicas)
        for i in range(num - 1):
            ga = gids[i]
            partners = scanned.get(ga)
            if partners is None:
                partners = scanned[ga] = set()
            elif len(partners) == len(all_gids):
                continue
            node_a, zone_a = groups[ga]
            for j in range(i + 1, num):
                gb = gids[j]
                if gb in partners:
                    continue
                partners.add(gb)
                node_b, zone_b = groups[gb]
                zone_pair = (zone_a, zone_b)
                link_class = link_classes.get(zone_pair)
                if link_class is None:
                    link_class = self.link_class(zone_a, zone_b)
                    link_classes[zone_pair] = link_class
                pair_key = (node_a, node_b, link_class)
                if pair_key in seen:
                    continue
                seen.add(pair_key)
                profile = self.profiles.network_profile(node_a, node_b,
                                                        link_class)
                bw = profile.bandwidth(probe)
                if bw < worst_bw:
                    worst, worst_bw = profile, bw
        assert worst is not None
        return worst


def build_environment(job: TrainingJobSpec,
                      topology: ClusterTopology,
                      *,
                      microbatch_sizes: list[int] | None = None,
                      noise_std: float = 0.0,
                      seed: int = 0,
                      prices: PriceCatalog | None = None,
                      network: NetworkModel | None = None) -> SimulationEnvironment:
    """Profile a job on every GPU type of a topology and bundle the result.

    This is the convenience entry point examples and experiments use: it runs
    the (simulated) job profiler once per GPU type present in ``topology`` and
    the network profiler over every node-type pair, exactly like the real
    Sailor profiler would (section 4.1).
    """
    network = network or topology.network
    store = ProfileStore()
    compute_profiler = ComputeProfiler(noise_std=noise_std, seed=seed)

    node_types = [get_node_type(t) for t in topology.node_types()]
    if not node_types:
        node_types = list_node_types()

    # One job profile per GPU type, covering every TP degree any node type
    # with that GPU supports (e.g. both 4-GPU and 8-GPU A100 nodes).
    tp_by_gpu: dict[str, set[int]] = {}
    gpu_specs = {}
    for node in node_types:
        gpu_specs[node.gpu.name] = node.gpu
        tp_by_gpu.setdefault(node.gpu.name, set()).update(node.valid_tp_degrees)
    for gpu_name, gpu in gpu_specs.items():
        store.add_job_profile(compute_profiler.profile(
            job, gpu,
            microbatch_sizes=microbatch_sizes,
            tensor_parallel_degrees=sorted(tp_by_gpu[gpu_name])))

    network_profiler = NetworkProfiler(network, noise_std=noise_std, seed=seed + 1)
    network_profiler.profile_all_pairs(node_types, store=store)

    return SimulationEnvironment(
        profiles=store,
        zone_to_region=dict(topology.zone_to_region),
        prices=prices or default_price_catalog(),
    )
