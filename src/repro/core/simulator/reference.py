"""Fine-grained reference simulator (ground-truth stand-in).

The paper validates estimator accuracy against real hardware (Figures 3, 5,
6, 10, 11).  Without GPUs, this module provides the measurement target: an
event-driven 1F1B simulation at per-microbatch granularity that models
effects the analytic estimators approximate or ignore:

* exact pipeline bubbles (dependency-driven schedule instead of the
  ``(Nb - 1) * straggler`` closed form),
* partial overlap of gradient synchronisation with the backward pass,
* extra memory consumers (temporary workspaces, allocator fragmentation,
  larger framework overhead), and
* per-kernel jitter.

Estimator error for any planner is then ``|estimate - reference| / reference``,
which is how the estimation-error experiments are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import ParallelizationPlan, PlanEvaluation
from repro.core.simulator.cost import CostEstimator
from repro.core.simulator.environment import SimulationEnvironment
from repro.core.simulator.memory import MemoryEstimator
from repro.core.simulator.timing import TimingEstimator


#: Fraction of the data-parallel all-reduce hidden under backward compute.
DEFAULT_SYNC_OVERLAP = 0.30

#: Ground-truth memory accounting differs slightly from the analytic model.
REFERENCE_FRAGMENTATION = 1.10
REFERENCE_OVERHEAD_BYTES = 1.8 * (1024 ** 3)


@dataclass(frozen=True)
class _Op:
    """One forward or backward pass of one microbatch on one stage."""

    stage: int
    microbatch: int
    kind: str  # "fwd" or "bwd"


class ReferenceSimulator:
    """Event-driven 1F1B simulator used as the "real hardware" reference."""

    def __init__(self, env: SimulationEnvironment, *, seed: int = 0,
                 sync_overlap: float = DEFAULT_SYNC_OVERLAP,
                 jitter_std: float = 0.01) -> None:
        if not 0.0 <= sync_overlap < 1.0:
            raise ValueError("sync_overlap must be in [0, 1)")
        self.env = env
        self.sync_overlap = sync_overlap
        self.jitter_std = jitter_std
        self._rng = np.random.default_rng(seed)
        self._timing = TimingEstimator(env)
        self._memory = MemoryEstimator(env)
        self._cost = CostEstimator(env)

    # -- public API ---------------------------------------------------------

    def measure(self, plan: ParallelizationPlan) -> PlanEvaluation:
        """Run the reference simulation and report measured numbers."""
        pipeline_times = [self._simulate_pipeline(plan, d)
                          for d in range(plan.data_parallel)]
        pipeline_time = max(pipeline_times)

        sync = max(self._timing.stage_sync_time(plan, s) for s in plan.stages)
        sync *= (1.0 - self.sync_overlap)
        update = max(self._timing.replica_update_time(plan, stage, replica)
                     for stage in plan.stages for replica in stage.replicas)
        iteration_time = pipeline_time + sync + update

        peaks = self.peak_memory(plan)
        cost = self._cost.breakdown(plan, iteration_time)
        oom = [i for i, (peak, stage) in enumerate(zip(peaks, plan.stages))
               if any(peak > r.node_spec.gpu.memory_bytes for r in stage.replicas)]

        return PlanEvaluation(
            iteration_time_s=iteration_time,
            throughput_iters_per_s=1.0 / iteration_time if iteration_time > 0 else 0.0,
            cost_per_iteration_usd=cost.total_usd,
            peak_memory_bytes_per_stage=peaks,
            is_valid=not oom,
            oom_stages=oom,
            compute_cost_usd=cost.compute_usd,
            communication_cost_usd=cost.communication_usd,
            pipeline_time_s=pipeline_time,
            sync_time_s=sync,
            update_time_s=update,
        )

    def peak_memory(self, plan: ParallelizationPlan) -> list[float]:
        """Measured per-stage peak memory (bytes, max over replicas)."""
        peaks = []
        for stage in plan.stages:
            stage_peak = 0.0
            for replica in stage.replicas:
                breakdown = self._memory.replica_memory(plan, stage, replica)
                profile = self.env.job_profile(replica)
                workspace = 2.0 * profile.boundary_bytes[plan.microbatch_size]
                activations = breakdown.activation_bytes / 1.05  # undo analytic factor
                peak = (breakdown.model_bytes
                        + activations * REFERENCE_FRAGMENTATION
                        + REFERENCE_OVERHEAD_BYTES
                        + workspace)
                stage_peak = max(stage_peak, peak)
            peaks.append(stage_peak)
        return peaks

    # -- 1F1B event simulation ------------------------------------------------

    def _jitter(self) -> float:
        if self.jitter_std <= 0:
            return 1.0
        return float(max(0.8, self._rng.normal(1.0, self.jitter_std)))

    def _simulate_pipeline(self, plan: ParallelizationPlan,
                           data_parallel_index: int) -> float:
        num_stages = plan.pipeline_parallel
        num_microbatches = plan.num_microbatches
        chain = plan.pipeline(data_parallel_index)

        fwd_time: list[float] = []
        bwd_time: list[float] = []
        for stage, replica in zip(plan.stages, chain):
            profile = self.env.job_profile(replica)
            mbs, tp = plan.microbatch_size, replica.tensor_parallel
            layer = profile.layer(mbs, tp)
            fwd = stage.partition.num_layers * layer.forward_s
            bwd = stage.partition.num_layers * layer.backward_s
            if stage.partition.has_embedding:
                fwd += profile.embedding(mbs, tp).forward_s
                bwd += profile.embedding(mbs, tp).backward_s
            if stage.partition.has_lm_head:
                fwd += profile.head(mbs, tp).forward_s
                bwd += profile.head(mbs, tp).backward_s
            fwd_time.append(fwd)
            bwd_time.append(bwd)

        p2p = [0.0] * max(0, num_stages - 1)
        for i in range(num_stages - 1):
            p2p[i] = self._timing.p2p_time(plan, chain[i], chain[i + 1])

        schedules = [self._stage_schedule(i, num_stages, num_microbatches)
                     for i in range(num_stages)]

        finish: dict[_Op, float] = {}
        stage_free = [0.0] * num_stages
        pointers = [0] * num_stages
        total_ops = sum(len(s) for s in schedules)
        scheduled = 0

        while scheduled < total_ops:
            progress = False
            for i in range(num_stages):
                while pointers[i] < len(schedules[i]):
                    op = schedules[i][pointers[i]]
                    ready = self._ready_time(op, finish, p2p, num_stages)
                    if ready is None:
                        break
                    duration = (fwd_time[i] if op.kind == "fwd" else bwd_time[i])
                    duration *= self._jitter()
                    start = max(stage_free[i], ready)
                    finish[op] = start + duration
                    stage_free[i] = finish[op]
                    pointers[i] += 1
                    scheduled += 1
                    progress = True
            if not progress:
                raise RuntimeError("1F1B schedule deadlocked (internal error)")

        return max(stage_free)

    @staticmethod
    def _stage_schedule(stage: int, num_stages: int,
                        num_microbatches: int) -> list[_Op]:
        """1F1B op order for one stage: warm-up fwds, steady 1F1B, cool-down."""
        warmup = min(num_stages - stage - 1, num_microbatches)
        ops: list[_Op] = []
        for m in range(warmup):
            ops.append(_Op(stage, m, "fwd"))
        next_fwd = warmup
        next_bwd = 0
        remaining = num_microbatches - warmup
        for _ in range(remaining):
            ops.append(_Op(stage, next_fwd, "fwd"))
            next_fwd += 1
            ops.append(_Op(stage, next_bwd, "bwd"))
            next_bwd += 1
        while next_bwd < num_microbatches:
            ops.append(_Op(stage, next_bwd, "bwd"))
            next_bwd += 1
        return ops

    @staticmethod
    def _ready_time(op: _Op, finish: dict[_Op, float], p2p: list[float],
                    num_stages: int) -> float | None:
        """Earliest time an op's cross-stage dependency is satisfied.

        Returns ``None`` when the dependency has not been scheduled yet.
        """
        if op.kind == "fwd":
            if op.stage == 0:
                return 0.0
            dep = _Op(op.stage - 1, op.microbatch, "fwd")
            if dep not in finish:
                return None
            return finish[dep] + p2p[op.stage - 1]
        # backward
        if op.stage == num_stages - 1:
            dep = _Op(op.stage, op.microbatch, "fwd")
            if dep not in finish:
                return None
            return finish[dep]
        dep = _Op(op.stage + 1, op.microbatch, "bwd")
        if dep not in finish:
            return None
        return finish[dep] + p2p[op.stage]
