"""Fine-grained reference simulator (ground-truth stand-in).

The paper validates estimator accuracy against real hardware (Figures 3, 5,
6, 10, 11).  Without GPUs, this module provides the measurement target: an
event-driven 1F1B simulation at per-microbatch granularity that models
effects the analytic estimators approximate or ignore:

* exact pipeline bubbles (dependency-driven schedule instead of the
  ``(Nb - 1) * straggler`` closed form),
* partial overlap of gradient synchronisation with the backward pass,
* extra memory consumers (temporary workspaces, allocator fragmentation,
  larger framework overhead), and
* per-kernel jitter.

Estimator error for any planner is then ``|estimate - reference| / reference``,
which is how the estimation-error experiments are computed.

The event loop is integer-indexed: ops are numbered per stage in 1F1B
schedule order, dependencies are resolved with a Kahn-style ready queue
(every op enters the queue exactly once, O(total ops) overall), and kernel
jitter is pre-drawn per ``(stage, kind, microbatch)`` slot so the result is
independent of scheduling order.

Determinism: :meth:`ReferenceSimulator.measure` re-seeds its jitter RNG
from ``(seed, plan)`` on every call, so a measurement depends only on the
simulator's seed and the plan -- never on how many plans were measured
before it.  Estimation-error experiments therefore see the same numbers
regardless of call order.
"""

from __future__ import annotations

import hashlib
from collections import deque

import numpy as np

from repro.core.plan import ParallelizationPlan, PlanEvaluation
from repro.core.simulator.cost import CostEstimator
from repro.core.simulator.environment import SimulationEnvironment
from repro.core.simulator.eval_context import plan_signature
from repro.core.simulator.memory import MemoryEstimator
from repro.core.simulator.timing import TimingEstimator


#: Fraction of the data-parallel all-reduce hidden under backward compute.
DEFAULT_SYNC_OVERLAP = 0.30

#: Ground-truth memory accounting differs slightly from the analytic model.
REFERENCE_FRAGMENTATION = 1.10
REFERENCE_OVERHEAD_BYTES = 1.8 * (1024 ** 3)

#: Op-kind codes of the integer-indexed schedule.
_FWD, _BWD = 0, 1


class ReferenceSimulator:
    """Event-driven 1F1B simulator used as the "real hardware" reference."""

    def __init__(self, env: SimulationEnvironment, *, seed: int = 0,
                 sync_overlap: float = DEFAULT_SYNC_OVERLAP,
                 jitter_std: float = 0.01) -> None:
        if not 0.0 <= sync_overlap < 1.0:
            raise ValueError("sync_overlap must be in [0, 1)")
        self.env = env
        self.seed = seed
        self.sync_overlap = sync_overlap
        self.jitter_std = jitter_std
        self._timing = TimingEstimator(env)
        self._memory = MemoryEstimator(env)
        self._cost = CostEstimator(env)

    # -- public API ---------------------------------------------------------

    def measure(self, plan: ParallelizationPlan) -> PlanEvaluation:
        """Run the reference simulation and report measured numbers.

        Deterministic per ``(seed, plan)``: repeated measurements of the
        same plan return identical numbers regardless of call order.
        """
        rng = self._plan_rng(plan)
        pipeline_times = [self._simulate_pipeline(plan, d, rng)
                          for d in range(plan.data_parallel)]
        pipeline_time = max(pipeline_times)

        sync = max(self._timing.stage_sync_time(plan, s) for s in plan.stages)
        sync *= (1.0 - self.sync_overlap)
        update = max(self._timing.replica_update_time(plan, stage, replica)
                     for stage in plan.stages for replica in stage.replicas)
        iteration_time = pipeline_time + sync + update

        peaks = self.peak_memory(plan)
        cost = self._cost.breakdown(plan, iteration_time)
        oom = [i for i, (peak, stage) in enumerate(zip(peaks, plan.stages))
               if any(peak > r.node_spec.gpu.memory_bytes for r in stage.replicas)]

        return PlanEvaluation(
            iteration_time_s=iteration_time,
            throughput_iters_per_s=1.0 / iteration_time if iteration_time > 0 else 0.0,
            cost_per_iteration_usd=cost.total_usd,
            peak_memory_bytes_per_stage=peaks,
            is_valid=not oom,
            oom_stages=oom,
            compute_cost_usd=cost.compute_usd,
            communication_cost_usd=cost.communication_usd,
            pipeline_time_s=pipeline_time,
            sync_time_s=sync,
            update_time_s=update,
        )

    def peak_memory(self, plan: ParallelizationPlan) -> list[float]:
        """Measured per-stage peak memory (bytes, max over replicas)."""
        peaks = []
        for stage in plan.stages:
            stage_peak = 0.0
            for replica in stage.replicas:
                breakdown = self._memory.replica_memory(plan, stage, replica)
                profile = self.env.job_profile(replica)
                workspace = 2.0 * profile.boundary_bytes[plan.microbatch_size]
                activations = breakdown.activation_bytes / 1.05  # undo analytic factor
                peak = (breakdown.model_bytes
                        + activations * REFERENCE_FRAGMENTATION
                        + REFERENCE_OVERHEAD_BYTES
                        + workspace)
                stage_peak = max(stage_peak, peak)
            peaks.append(stage_peak)
        return peaks

    # -- 1F1B event simulation ------------------------------------------------

    def _plan_rng(self, plan: ParallelizationPlan) -> np.random.Generator:
        """Jitter RNG seeded from (simulator seed, canonical plan identity)."""
        digest = hashlib.blake2b(repr(plan_signature(plan)).encode("utf-8"),
                                 digest_size=8).digest()
        return np.random.default_rng(
            [self.seed, int.from_bytes(digest, "big")])

    def _jitter_grid(self, rng: np.random.Generator, num_stages: int,
                     num_microbatches: int) -> np.ndarray | None:
        """Per-(stage, kind, microbatch) jitter factors, pre-drawn.

        Drawing by slot rather than by scheduling order keeps the result
        independent of the event loop's traversal.
        """
        if self.jitter_std <= 0:
            return None
        draws = rng.normal(1.0, self.jitter_std,
                           size=(num_stages, 2, num_microbatches))
        return np.maximum(0.8, draws)

    def _simulate_pipeline(self, plan: ParallelizationPlan,
                           data_parallel_index: int,
                           rng: np.random.Generator) -> float:
        num_stages = plan.pipeline_parallel
        num_microbatches = plan.num_microbatches
        chain = plan.pipeline(data_parallel_index)

        fwd_time: list[float] = []
        bwd_time: list[float] = []
        for stage, replica in zip(plan.stages, chain):
            profile = self.env.job_profile(replica)
            mbs, tp = plan.microbatch_size, replica.tensor_parallel
            layer = profile.layer(mbs, tp)
            fwd = stage.partition.num_layers * layer.forward_s
            bwd = stage.partition.num_layers * layer.backward_s
            if stage.partition.has_embedding:
                fwd += profile.embedding(mbs, tp).forward_s
                bwd += profile.embedding(mbs, tp).backward_s
            if stage.partition.has_lm_head:
                fwd += profile.head(mbs, tp).forward_s
                bwd += profile.head(mbs, tp).backward_s
            fwd_time.append(fwd)
            bwd_time.append(bwd)

        p2p = [self._timing.p2p_time(plan, chain[i], chain[i + 1])
               for i in range(num_stages - 1)]

        # Per-op durations, jitter applied per (stage, kind, microbatch).
        jitter = self._jitter_grid(rng, num_stages, num_microbatches)
        if jitter is None:
            durations = [[[fwd_time[i]] * num_microbatches,
                          [bwd_time[i]] * num_microbatches]
                         for i in range(num_stages)]
        else:
            base = np.empty((num_stages, 2, 1))
            base[:, _FWD, 0] = fwd_time
            base[:, _BWD, 0] = bwd_time
            durations = (base * jitter).tolist()

        # Integer-indexed 1F1B schedules: kind/microbatch arrays per stage,
        # plus the position of every (kind, microbatch) within its stage.
        kinds: list[list[int]] = []
        mbs_of: list[list[int]] = []
        pos_of = [[[0] * num_microbatches for _ in range(2)]
                  for _ in range(num_stages)]
        for i in range(num_stages):
            k_row, m_row = self._stage_schedule(i, num_stages, num_microbatches)
            kinds.append(k_row)
            mbs_of.append(m_row)
            row_pos = pos_of[i]
            for position, (kind, m) in enumerate(zip(k_row, m_row)):
                row_pos[kind][m] = position

        # Kahn-style ready queue over the dependency DAG: each op waits for
        # its same-stage predecessor and (except first-stage forwards) one
        # cross dependency.  Every op enters the queue exactly once.
        ops_per_stage = 2 * num_microbatches
        indegree = [[0] * ops_per_stage for _ in range(num_stages)]
        cross_ready = [[0.0] * ops_per_stage for _ in range(num_stages)]
        finish = [[0.0] * ops_per_stage for _ in range(num_stages)]
        for i in range(num_stages):
            row = indegree[i]
            k_row = kinds[i]
            for position in range(ops_per_stage):
                deps = 1 if position > 0 else 0
                if not (k_row[position] == _FWD and i == 0):
                    deps += 1  # cross dependency (or last-stage fwd->bwd)
                row[position] = deps

        ready: deque[tuple[int, int]] = deque()
        for i in range(num_stages):
            if indegree[i][0] == 0:
                ready.append((i, 0))
        scheduled = 0
        total_ops = num_stages * ops_per_stage
        last_stage = num_stages - 1
        while ready:
            i, position = ready.popleft()
            kind = kinds[i][position]
            m = mbs_of[i][position]
            prev_finish = finish[i][position - 1] if position > 0 else 0.0
            cross = cross_ready[i][position]
            start = prev_finish if prev_finish >= cross else cross
            done = start + durations[i][kind][m]
            finish[i][position] = done
            scheduled += 1

            # Unlock the same-stage successor.
            nxt = position + 1
            if nxt < ops_per_stage:
                indegree[i][nxt] -= 1
                if indegree[i][nxt] == 0:
                    ready.append((i, nxt))
            # Unlock cross-stage dependents, recording their ready times.
            if kind == _FWD:
                if i < last_stage:
                    dep_pos = pos_of[i + 1][_FWD][m]
                    cross_ready[i + 1][dep_pos] = done + p2p[i]
                    indegree[i + 1][dep_pos] -= 1
                    if indegree[i + 1][dep_pos] == 0:
                        ready.append((i + 1, dep_pos))
                else:
                    dep_pos = pos_of[i][_BWD][m]
                    cross_ready[i][dep_pos] = done
                    indegree[i][dep_pos] -= 1
                    if indegree[i][dep_pos] == 0:
                        ready.append((i, dep_pos))
            elif i > 0:
                dep_pos = pos_of[i - 1][_BWD][m]
                cross_ready[i - 1][dep_pos] = done + p2p[i - 1]
                indegree[i - 1][dep_pos] -= 1
                if indegree[i - 1][dep_pos] == 0:
                    ready.append((i - 1, dep_pos))

        if scheduled != total_ops:
            raise RuntimeError("1F1B schedule deadlocked (internal error)")
        return max(finish[i][-1] for i in range(num_stages))

    @staticmethod
    def _stage_schedule(stage: int, num_stages: int, num_microbatches: int,
                        ) -> tuple[list[int], list[int]]:
        """1F1B op order for one stage: warm-up fwds, steady 1F1B, cool-down.

        Returns parallel ``(kinds, microbatches)`` lists of length
        ``2 * num_microbatches``.
        """
        warmup = min(num_stages - stage - 1, num_microbatches)
        kinds: list[int] = []
        microbatches: list[int] = []
        for m in range(warmup):
            kinds.append(_FWD)
            microbatches.append(m)
        next_fwd = warmup
        next_bwd = 0
        for _ in range(num_microbatches - warmup):
            kinds.append(_FWD)
            microbatches.append(next_fwd)
            next_fwd += 1
            kinds.append(_BWD)
            microbatches.append(next_bwd)
            next_bwd += 1
        while next_bwd < num_microbatches:
            kinds.append(_BWD)
            microbatches.append(next_bwd)
            next_bwd += 1
        return kinds, microbatches
