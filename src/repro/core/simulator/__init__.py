"""Sailor simulator: memory footprint, iteration time and cost estimation.

The planner calls the simulator to evaluate candidate plans without
deploying them (paper section 4.3).  The package splits the estimation into:

* :mod:`repro.core.simulator.environment` -- the bundle of profiles, cloud
  layout and prices every estimator needs.
* :mod:`repro.core.simulator.memory` -- per-worker peak memory footprint and
  OOM detection.
* :mod:`repro.core.simulator.timing` -- 1F1B iteration-time estimation with
  straggler effects.
* :mod:`repro.core.simulator.cost` -- USD per iteration (compute + egress).
* :mod:`repro.core.simulator.eval_context` -- the vectorized evaluation
  layer: canonical per-stage/per-replica NumPy arrays plus fused kernels.
* :mod:`repro.core.simulator.evaluator` -- the :class:`SailorSimulator`
  facade combining the estimators.
* :mod:`repro.core.simulator.reference` -- a fine-grained event-driven
  reference simulator standing in for "real hardware" measurements.

Two-path architecture
---------------------
Evaluation runs on one of two paths that produce **bit-identical** numbers:

* The **vectorized path** (the default).  An
  :class:`~repro.core.simulator.eval_context.EvaluationContext` -- the
  evaluation-side sibling of the planner's
  :class:`~repro.core.search_cache.PlannerSearchContext` -- canonicalizes
  each plan into flat per-stage/per-replica arrays (layer counts, profiled
  timings, TP degrees, activation/boundary bytes, device capacities) and
  computes compute, update, p2p, memory peaks, OOM and the 1F1B closed form
  in one fused NumPy pass.  Profile lookups are cached per replica class,
  link transfers per class pair, gradient sync per stage shape, and whole
  plan arrays / ``PlanEvaluation`` results per plan signature, so repeated
  and structurally-similar candidates cost almost nothing.
* The **scalar path** (``SailorSimulator(env, vectorized=False)``).  The
  original per-replica walks over :class:`MemoryEstimator` /
  :class:`TimingEstimator` / :class:`CostEstimator`, retained as the
  reference implementation; the equivalence test suite asserts the
  vectorized kernels reproduce it bit-for-bit (the kernels replicate the
  scalar floating-point operation order, including explicit left-to-right
  reductions where ``np.sum`` would reassociate).

The vectorized path additionally exposes
:meth:`SailorSimulator.evaluate_many` (batch evaluation over the shared
caches) and :meth:`SailorSimulator.iteration_time_floor` (a conservative
lower bound the planner's candidate-level incumbent gate uses to skip full
evaluation of candidates that provably cannot beat the incumbent).
"""

from repro.core.simulator.environment import SimulationEnvironment, build_environment
from repro.core.simulator.eval_context import (
    EvaluationContext,
    PlanArrays,
    plan_signature,
)
from repro.core.simulator.memory import MemoryEstimator, MemoryBreakdown
from repro.core.simulator.timing import TimingEstimator, TimingBreakdown
from repro.core.simulator.cost import CostEstimator, CostBreakdown
from repro.core.simulator.evaluator import SailorSimulator
from repro.core.simulator.reference import ReferenceSimulator

__all__ = [
    "SimulationEnvironment",
    "build_environment",
    "EvaluationContext",
    "PlanArrays",
    "plan_signature",
    "MemoryEstimator",
    "MemoryBreakdown",
    "TimingEstimator",
    "TimingBreakdown",
    "CostEstimator",
    "CostBreakdown",
    "SailorSimulator",
    "ReferenceSimulator",
]
