"""Sailor simulator: memory footprint, iteration time and cost estimation.

The planner calls the simulator to evaluate candidate plans without
deploying them (paper section 4.3).  The package splits the estimation into:

* :mod:`repro.core.simulator.environment` -- the bundle of profiles, cloud
  layout and prices every estimator needs.
* :mod:`repro.core.simulator.memory` -- per-worker peak memory footprint and
  OOM detection.
* :mod:`repro.core.simulator.timing` -- 1F1B iteration-time estimation with
  straggler effects.
* :mod:`repro.core.simulator.cost` -- USD per iteration (compute + egress).
* :mod:`repro.core.simulator.evaluator` -- the :class:`SailorSimulator`
  facade combining the three.
* :mod:`repro.core.simulator.reference` -- a fine-grained event-driven
  reference simulator standing in for "real hardware" measurements.
"""

from repro.core.simulator.environment import SimulationEnvironment, build_environment
from repro.core.simulator.memory import MemoryEstimator, MemoryBreakdown
from repro.core.simulator.timing import TimingEstimator, TimingBreakdown
from repro.core.simulator.cost import CostEstimator, CostBreakdown
from repro.core.simulator.evaluator import SailorSimulator
from repro.core.simulator.reference import ReferenceSimulator

__all__ = [
    "SimulationEnvironment",
    "build_environment",
    "MemoryEstimator",
    "MemoryBreakdown",
    "TimingEstimator",
    "TimingBreakdown",
    "CostEstimator",
    "CostBreakdown",
    "SailorSimulator",
    "ReferenceSimulator",
]
