"""The Sailor simulator facade.

Combines memory, timing and cost estimation into a single
:meth:`SailorSimulator.evaluate` call that the planner (and the baselines,
when asked to use Sailor's estimator) invokes for every candidate plan.

Two execution paths produce bit-identical results:

* the **vectorized path** (default): plans are canonicalized into flat
  NumPy arrays by a shared :class:`~repro.core.simulator.eval_context.
  EvaluationContext` and evaluated in one fused pass, with full
  ``PlanEvaluation`` results cached per plan signature;
* the **scalar path** (``vectorized=False``): the original per-replica
  walks over the estimator objects, retained as the reference the
  equivalence test suite checks the kernels against.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.plan import ParallelizationPlan, PlanEvaluation
from repro.core.simulator.cost import CostEstimator
from repro.core.simulator.environment import SimulationEnvironment
from repro.core.simulator.eval_context import EvaluationContext, plan_signature
from repro.core.simulator.memory import MemoryEstimator
from repro.core.simulator.timing import TimingEstimator


class SailorSimulator:
    """Estimates memory footprint, iteration time and cost of a plan.

    ``vectorized=False`` selects the scalar reference path;
    ``cache_evaluations`` / ``cache_plans`` control the per-plan-signature
    caches of the vectorized path (benchmarks disable them to measure the
    cold fused pass).
    """

    def __init__(self, env: SimulationEnvironment, *,
                 vectorized: bool = True,
                 cache_evaluations: bool = True,
                 cache_plans: bool = True) -> None:
        self.env = env
        self.memory = MemoryEstimator(env)
        self.timing = TimingEstimator(env)
        self.cost = CostEstimator(env)
        self.context = (EvaluationContext(env, cache_plans=cache_plans)
                        if vectorized else None)
        self._eval_cache: dict[tuple, PlanEvaluation] | None = \
            {} if (vectorized and cache_evaluations) else None
        self.eval_cache_hits = 0
        self.eval_cache_misses = 0

    def evaluate(self, plan: ParallelizationPlan,
                 *, check_memory: bool = True) -> PlanEvaluation:
        """Evaluate a plan: validity (OOM), iteration time, and cost.

        ``check_memory=False`` skips the OOM check (used by estimator-error
        experiments that want timing for configurations known to fit).
        """
        if self.context is None:
            return self._evaluate_scalar(plan, check_memory=check_memory)

        key = None
        if self._eval_cache is not None:
            key = (plan_signature(plan), check_memory)
            cached = self._eval_cache.get(key)
            if cached is not None:
                self.eval_cache_hits += 1
                return self._copy(cached)
            self.eval_cache_misses += 1

        arrays = self.context.plan_arrays(plan)
        oom_stages = list(arrays.oom_stages) if check_memory else []
        timing = self.context.timing_breakdown(plan)
        iteration_time = timing.iteration_time_s
        cost = self.cost.breakdown(plan, iteration_time)
        evaluation = PlanEvaluation(
            iteration_time_s=iteration_time,
            throughput_iters_per_s=(1.0 / iteration_time if iteration_time > 0 else 0.0),
            cost_per_iteration_usd=cost.total_usd,
            peak_memory_bytes_per_stage=arrays.stage_peaks.tolist(),
            is_valid=not oom_stages,
            oom_stages=oom_stages,
            compute_cost_usd=cost.compute_usd,
            communication_cost_usd=cost.communication_usd,
            pipeline_time_s=timing.pipeline_time_s,
            sync_time_s=timing.sync_time_s,
            update_time_s=timing.update_time_s,
            straggler_stage=timing.straggler_stage,
        )
        if self._eval_cache is not None:
            self._eval_cache[key] = evaluation
            return self._copy(evaluation)
        return evaluation

    def evaluate_many(self, plans: list[ParallelizationPlan],
                      *, check_memory: bool = True) -> list[PlanEvaluation]:
        """Evaluate several plans, sharing every per-environment cache.

        Returns one :class:`PlanEvaluation` per input plan, in input order.
        """
        return [self.evaluate(plan, check_memory=check_memory)
                for plan in plans]

    def iteration_time_floor(self, plan: ParallelizationPlan) -> float:
        """Conservative lower bound on :attr:`PlanEvaluation.iteration_time_s`.

        Exactly the pipeline + optimizer-update terms of the full estimate
        with the gradient-sync term dropped; since sync time is non-negative
        and IEEE-754 addition is monotone, the floor never exceeds the full
        estimate (bitwise).  The planner's candidate-level incumbent gate
        skips full evaluation when this floor already loses to the incumbent.
        """
        if self.context is not None:
            return self.context.plan_arrays(plan).iteration_time_floor_s
        pipeline = max(self.timing.pipeline_time(plan, d)
                       for d in range(plan.data_parallel))
        update = max(self.timing.replica_update_time(plan, stage, replica)
                     for stage in plan.stages for replica in stage.replicas)
        return pipeline + update

    def cost_floor(self, plan: ParallelizationPlan) -> float:
        """Conservative lower bound on :attr:`PlanEvaluation.cost_per_iteration_usd`.

        ``C_iter = C_comp(T_iter) + C_egress`` where ``C_comp`` is linear in
        the iteration time with non-negative prices and ``C_egress`` does
        not depend on the time at all.  Evaluating the compute term at
        :meth:`iteration_time_floor` therefore never exceeds the full
        estimate (IEEE-754 multiply/add are monotone), and the egress term
        is carried *exactly* -- which is what lets the planner's candidate
        gate arm under cost and budget objectives: a ``cost_floor`` above
        the budget proves the budget violated just as the full evaluation
        would find it.
        """
        if self.context is not None:
            arrays = self.context.plan_arrays(plan)
            floor_time = arrays.iteration_time_floor_s
            if arrays.comm_usd is None:
                arrays.comm_usd = self.cost.communication_cost(plan)[0]
            comm_usd = arrays.comm_usd
        else:
            floor_time = self.iteration_time_floor(plan)
            comm_usd = self.cost.communication_cost(plan)[0]
        gpu_counts = plan.resource_allocation().gpus_by_type()
        return self.env.prices.compute_cost(gpu_counts, floor_time) + comm_usd

    def oom_stages(self, plan: ParallelizationPlan) -> list[int]:
        """Stage indices with at least one worker that does not fit.

        Identical to the OOM list :meth:`evaluate` reports; the planner's
        incumbent gate uses it to keep gated-candidate bookkeeping exact.
        """
        if self.context is not None:
            return list(self.context.plan_arrays(plan).oom_stages)
        return self.memory.oom_stages(plan)

    # -- scalar reference path ----------------------------------------------

    def _evaluate_scalar(self, plan: ParallelizationPlan,
                         *, check_memory: bool = True) -> PlanEvaluation:
        """Original per-replica evaluation (the equivalence reference)."""
        # One memory pass serves both the OOM check and the per-stage peaks.
        breakdowns = self.memory.plan_breakdowns(plan)
        oom_stages = []
        if check_memory:
            for stage, per_stage in zip(plan.stages, breakdowns):
                if any(not b.fits for b in per_stage):
                    oom_stages.append(stage.stage_index)
        stage_peaks = [max(b.peak_bytes for b in per_stage)
                       for per_stage in breakdowns]

        timing = self.timing.breakdown(plan)
        iteration_time = timing.iteration_time_s
        cost = self.cost.breakdown(plan, iteration_time)

        return PlanEvaluation(
            iteration_time_s=iteration_time,
            throughput_iters_per_s=(1.0 / iteration_time if iteration_time > 0 else 0.0),
            cost_per_iteration_usd=cost.total_usd,
            peak_memory_bytes_per_stage=stage_peaks,
            is_valid=not oom_stages,
            oom_stages=oom_stages,
            compute_cost_usd=cost.compute_usd,
            communication_cost_usd=cost.communication_usd,
            pipeline_time_s=timing.pipeline_time_s,
            sync_time_s=timing.sync_time_s,
            update_time_s=timing.update_time_s,
            straggler_stage=timing.straggler_stage,
        )

    @staticmethod
    def _copy(evaluation: PlanEvaluation) -> PlanEvaluation:
        """Fresh evaluation so cached list fields never alias across callers."""
        return replace(
            evaluation,
            peak_memory_bytes_per_stage=list(evaluation.peak_memory_bytes_per_stage),
            oom_stages=list(evaluation.oom_stages))

    def iteration_time(self, plan: ParallelizationPlan) -> float:
        """Convenience: seconds per iteration."""
        if self.context is not None:
            return self.context.timing_breakdown(plan).iteration_time_s
        return self.timing.iteration_time(plan)

    def throughput(self, plan: ParallelizationPlan) -> float:
        """Convenience: iterations per second."""
        t = self.iteration_time(plan)
        return 1.0 / t if t > 0 else 0.0

    def peak_memory_gb(self, plan: ParallelizationPlan) -> list[float]:
        """Convenience: per-stage peak memory in GiB."""
        if self.context is not None:
            peaks = self.context.plan_arrays(plan).stage_peaks.tolist()
        else:
            peaks = self.memory.stage_peaks(plan)
        return [p / (1024 ** 3) for p in peaks]
