"""The Sailor simulator facade.

Combines memory, timing and cost estimation into a single
:meth:`SailorSimulator.evaluate` call that the planner (and the baselines,
when asked to use Sailor's estimator) invokes for every candidate plan.
"""

from __future__ import annotations

from repro.core.plan import ParallelizationPlan, PlanEvaluation
from repro.core.simulator.cost import CostEstimator
from repro.core.simulator.environment import SimulationEnvironment
from repro.core.simulator.memory import MemoryEstimator
from repro.core.simulator.timing import TimingEstimator


class SailorSimulator:
    """Estimates memory footprint, iteration time and cost of a plan."""

    def __init__(self, env: SimulationEnvironment) -> None:
        self.env = env
        self.memory = MemoryEstimator(env)
        self.timing = TimingEstimator(env)
        self.cost = CostEstimator(env)

    def evaluate(self, plan: ParallelizationPlan,
                 *, check_memory: bool = True) -> PlanEvaluation:
        """Evaluate a plan: validity (OOM), iteration time, and cost.

        ``check_memory=False`` skips the OOM check (used by estimator-error
        experiments that want timing for configurations known to fit).
        """
        oom_stages = self.memory.oom_stages(plan) if check_memory else []
        stage_peaks = self.memory.stage_peaks(plan)

        timing = self.timing.breakdown(plan)
        iteration_time = timing.iteration_time_s
        cost = self.cost.breakdown(plan, iteration_time)

        return PlanEvaluation(
            iteration_time_s=iteration_time,
            throughput_iters_per_s=(1.0 / iteration_time if iteration_time > 0 else 0.0),
            cost_per_iteration_usd=cost.total_usd,
            peak_memory_bytes_per_stage=stage_peaks,
            is_valid=not oom_stages,
            oom_stages=oom_stages,
            compute_cost_usd=cost.compute_usd,
            communication_cost_usd=cost.communication_usd,
            pipeline_time_s=timing.pipeline_time_s,
            sync_time_s=timing.sync_time_s,
            update_time_s=timing.update_time_s,
            straggler_stage=timing.straggler_stage,
        )

    def iteration_time(self, plan: ParallelizationPlan) -> float:
        """Convenience: seconds per iteration."""
        return self.timing.iteration_time(plan)

    def throughput(self, plan: ParallelizationPlan) -> float:
        """Convenience: iterations per second."""
        t = self.iteration_time(plan)
        return 1.0 / t if t > 0 else 0.0

    def peak_memory_gb(self, plan: ParallelizationPlan) -> list[float]:
        """Convenience: per-stage peak memory in GiB."""
        return [p / (1024 ** 3) for p in self.memory.stage_peaks(plan)]
