"""Monetary cost per iteration.

Follows the paper's cost model (section 4.3):

``C_iter = C_comp + C_comm``

* ``C_comp = sum_i N_i * price_per_gpu_i * T_iter`` over GPU types ``i``,
  charging for every GPU of every *allocated node* (you pay for the node
  even if a plan leaves some of its GPUs idle), and
* ``C_comm = sum_{i,j} bytes_ij * price_per_byte_ij`` over zone pairs,
  covering pipeline-parallel activations/gradients and data-parallel
  all-reduce traffic that crosses zone or region boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import ParallelizationPlan, StageConfig
from repro.core.simulator.environment import SimulationEnvironment
from repro.hardware.network import LinkClass


@dataclass
class CostBreakdown:
    """USD per iteration, split into compute and communication."""

    compute_usd: float
    communication_usd: float
    egress_bytes_by_link: dict[LinkClass, float] = field(default_factory=dict)

    @property
    def total_usd(self) -> float:
        """Total cost per iteration."""
        return self.compute_usd + self.communication_usd


class CostEstimator:
    """Estimates USD per iteration for a plan."""

    def __init__(self, env: SimulationEnvironment) -> None:
        self.env = env

    # -- compute ----------------------------------------------------------------

    def compute_cost(self, plan: ParallelizationPlan,
                     iteration_time_s: float) -> float:
        """Cost of the allocated nodes for the duration of one iteration."""
        if iteration_time_s < 0:
            raise ValueError("iteration_time_s must be non-negative")
        allocation = plan.resource_allocation()
        gpu_counts = allocation.gpus_by_type()
        return self.env.prices.compute_cost(gpu_counts, iteration_time_s)

    # -- communication -----------------------------------------------------------

    def cross_zone_bytes(self, plan: ParallelizationPlan) -> dict[LinkClass, float]:
        """Bytes per iteration that leave an availability zone, by link class."""
        out: dict[LinkClass, float] = {
            LinkClass.INTER_ZONE: 0.0, LinkClass.INTER_REGION: 0.0}

        # A plan confined to one zone generates no cross-zone traffic at
        # all; skip the per-pipeline boundary walk (the common case on the
        # planner's evaluation hot path).
        if len(plan.zones()) == 1:
            return out

        # Pipeline-parallel traffic: activations forward and gradients
        # backward cross every stage boundary once per microbatch.
        num_microbatches = plan.num_microbatches
        for d in range(plan.data_parallel):
            chain = plan.pipeline(d)
            for i in range(len(chain) - 1):
                sender, receiver = chain[i], chain[i + 1]
                link_class = self.env.link_class(sender.zone, receiver.zone)
                if not link_class.is_cross_zone:
                    continue
                profile = self.env.job_profile(sender)
                boundary = profile.boundary_bytes[plan.microbatch_size]
                out[link_class] += 2.0 * boundary * num_microbatches

        # Data-parallel traffic: the leader ring of the hierarchical
        # all-reduce carries ~2 * (k-1)/k * message bytes across each
        # adjacent zone pair.
        for stage in plan.stages:
            out_stage = self._stage_dp_cross_zone_bytes(plan, stage)
            for link_class, nbytes in out_stage.items():
                out[link_class] = out.get(link_class, 0.0) + nbytes
        return out

    def _stage_dp_cross_zone_bytes(self, plan: ParallelizationPlan,
                                   stage: StageConfig) -> dict[LinkClass, float]:
        zones = stage.zones
        if stage.data_parallel == 1 or len(zones) == 1:
            return {}
        model = plan.job.model
        stage_params = stage.partition.stage_params(model)
        message = max(stage_params / r.tensor_parallel * 2.0
                      for r in stage.replicas)
        k = len(zones)
        per_link = 2.0 * (k - 1) / k * message
        out: dict[LinkClass, float] = {}
        ring = zones + [zones[0]]
        for a, b in zip(ring[:-1], ring[1:]):
            if a == b:
                continue
            link_class = self.env.link_class(a, b)
            if link_class.is_cross_zone:
                out[link_class] = out.get(link_class, 0.0) + per_link
        return out

    def communication_cost(self, plan: ParallelizationPlan) -> tuple[float, dict[LinkClass, float]]:
        """Egress USD per iteration and the underlying byte counts."""
        bytes_by_link = self.cross_zone_bytes(plan)
        return self.env.prices.egress_cost(bytes_by_link), bytes_by_link

    # -- combined ------------------------------------------------------------------

    def breakdown(self, plan: ParallelizationPlan,
                  iteration_time_s: float) -> CostBreakdown:
        """Full cost breakdown of one iteration."""
        comm_usd, bytes_by_link = self.communication_cost(plan)
        return CostBreakdown(
            compute_usd=self.compute_cost(plan, iteration_time_s),
            communication_usd=comm_usd,
            egress_bytes_by_link=bytes_by_link,
        )

    def cost_per_iteration(self, plan: ParallelizationPlan,
                           iteration_time_s: float) -> float:
        """USD per iteration."""
        return self.breakdown(plan, iteration_time_s).total_usd
