"""Vectorized evaluation context: canonical plan arrays + fused kernels.

Motivation
----------
``SailorSimulator.evaluate`` is the planner's inner loop: it runs once per
surviving ``(P, mbs, D)`` candidate, and the scalar estimators re-walk every
stage/replica several times per call (compute, update, p2p, sync, memory
peaks and OOM are all separate passes).  This module mirrors what
:class:`~repro.core.search_cache.PlannerSearchContext` did for the DP search:
it hoists everything that depends only on the *environment* into caches
shared across candidates, and canonicalizes each plan into flat per-stage /
per-replica NumPy arrays so one fused pass produces every estimate at once.

Three cache levels, all keyed canonically so results are independent of
object identity:

=====================  =====================================================
cache                  key
=====================  =====================================================
replica class          ``(gpu_type, microbatch_size, tensor_parallel)`` --
                       profiled layer/embedding/head times, activation and
                       boundary bytes, device capacity
p2p transfer           ``(sender node_type, sender zone, receiver
                       node_type, receiver zone, microbatch_size)``
stage gradient sync    ``(stage params, ((node_type, tp, zone), ...))``
plan arrays            :func:`plan_signature` of the whole plan
=====================  =====================================================

Numerical equivalence
---------------------
The vectorized kernels replicate the scalar estimators' floating-point
operations *in the same order* (NumPy float64 arithmetic is IEEE-754, the
same as Python floats), and reductions whose order matters (the warm-up /
cool-down sums of the 1F1B closed form) are performed as explicit
left-to-right accumulations rather than ``np.sum`` (whose pairwise
summation would reassociate).  The result is bit-identical to the retained
scalar path, which the equivalence test suite asserts.  The gradient-sync
term is not vectorized -- it needs the fitted network curves' worst-link
search -- but is memoized at replica-class granularity, so each distinct
stage shape computes it once per context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hotpath import hot_path
from repro.core.plan import ParallelizationPlan
from repro.core.simulator.environment import SimulationEnvironment
from repro.core.simulator.memory import (
    FRAGMENTATION_FACTOR,
    FRAMEWORK_OVERHEAD_BYTES,
    USABLE_MEMORY_FRACTION,
)
from repro.core.simulator.timing import TimingBreakdown, TimingEstimator
from repro.hardware.gpus import get_gpu
from repro.hardware.nodes import get_node_type


def plan_signature(plan: ParallelizationPlan) -> tuple:
    """Hashable canonical identity of a plan *for evaluation purposes*.

    Two plans with equal signatures evaluate identically under the same
    environment: the signature covers every plan/job field the estimators
    read (model shape, batch settings, dtype footprint, checkpointing, the
    per-stage partitions and the ordered replica tuples).
    """
    job = plan.job
    model = job.model
    stages = tuple((stage.partition, tuple(stage.replicas))
                   for stage in plan.stages)
    return (model.name, model.num_layers, model.hidden_size, model.vocab_size,
            model.tied_embeddings, job.global_batch_size, job.sequence_length,
            job.bytes_per_param, job.activation_checkpointing,
            plan.microbatch_size, stages)


@dataclass
class PlanArrays:
    """One plan, canonicalized into flat arrays plus fused-pass results.

    All 2-D arrays are ``(num_stages, data_parallel)``; column ``d`` is
    pipeline ``d`` (matching ``plan.pipeline(d)``).
    """

    num_stages: int
    data_parallel: int
    num_microbatches: int
    microbatch_size: int
    stage_indices: list[int]
    total_gpus: int
    #: Per-replica fused results.
    compute: np.ndarray          # fwd+bwd seconds per microbatch
    update: np.ndarray           # optimizer-step seconds
    peak: np.ndarray             # peak memory bytes
    fits: np.ndarray             # bool, peak fits device capacity
    p2p: np.ndarray              # (num_stages - 1, D) boundary transfer seconds
    #: Per-stage / per-plan reductions.
    stage_compute: np.ndarray    # (P,) slowest replica per stage
    stage_peaks: np.ndarray      # (P,) worst peak bytes per stage
    oom_stages: list[int]
    stage_params: list[int]      # (P,) pre-TP parameter counts (sync keys)
    pipeline: np.ndarray         # (D,) 1F1B closed-form pipeline seconds
    update_max: float
    straggler_stage: int
    #: (P,) gradient all-reduce seconds; filled on first timing_breakdown
    #: call.  Left lazy so the planner's incumbent-gate floor (pipeline +
    #: update only) never pays for the worst-link sync search it exists to
    #: skip.
    sync: list[float] | None = None
    #: Egress USD per iteration; filled on first cost_floor call.  The
    #: egress term depends only on the plan's cross-zone byte counts -- not
    #: on the iteration time -- so it is exact (not a floor) and safe to
    #: cache alongside the arrays.
    comm_usd: float | None = None

    @property
    def pipeline_time_s(self) -> float:
        """Slowest pipeline (bounds the iteration)."""
        return float(self.pipeline.max())

    @property
    def iteration_time_floor_s(self) -> float:
        """Conservative lower bound on the iteration time (no sync term).

        ``T_iter = max_d(T_pp_d) + T_sync + T_update`` with ``T_sync >= 0``,
        and IEEE-754 addition is monotone, so dropping the sync term can
        only lower the value -- the floor never exceeds the full estimate.
        """
        return self.pipeline_time_s + self.update_max


class EvaluationContext:
    """Shared caches + vectorized kernels for one simulation environment.

    One context serves every plan evaluated against its environment; it
    must be discarded when the environment (profiles, prices, layout)
    changes.  There is deliberately no invalidation logic: profiles are
    immutable for the lifetime of an environment, and everything
    plan-dependent enters the cache keys through :func:`plan_signature`.
    """

    def __init__(self, env: SimulationEnvironment, *,
                 cache_plans: bool = True) -> None:
        self.env = env
        self._timing = TimingEstimator(env)
        self._arrays: dict[tuple, PlanArrays] | None = \
            {} if cache_plans else None
        #: Cache observability (tested: hit/miss semantics).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self._class_scalars: dict[tuple, tuple] = {}
        self._node_info: dict[str, tuple[str, float]] = {}
        self._p2p: dict[tuple, float] = {}
        self._sync: dict[tuple, float] = {}

    # -- per-class scalar lookups -------------------------------------------

    def _node(self, node_type: str) -> tuple[str, float]:
        """(GPU type, device capacity bytes) of a node type, cached."""
        info = self._node_info.get(node_type)
        if info is None:
            gpu = get_node_type(node_type).gpu
            info = (gpu.name, float(get_gpu(gpu.name).memory_bytes))
            self._node_info[node_type] = info
        return info

    def _replica_class(self, node_type: str, microbatch_size: int,
                       tensor_parallel: int) -> tuple:
        """Profiled scalars of one replica class, gathered once per context.

        Returns ``(layer_fwd_bwd, layer_update, emb_fwd_bwd, emb_update,
        head_fwd_bwd, head_update, act_bytes, boundary_bytes, capacity,
        tensor_parallel)``, all floats, in gather order.
        """
        gpu_type, capacity = self._node(node_type)
        key = (gpu_type, microbatch_size, tensor_parallel)
        cached = self._class_scalars.get(key)
        if cached is None:
            profile = self.env.profiles.job_profile(gpu_type)
            layer = profile.layer(microbatch_size, tensor_parallel)
            emb = profile.embedding(microbatch_size, tensor_parallel)
            head = profile.head(microbatch_size, tensor_parallel)
            cached = (layer.fwd_bwd_s, layer.update_s,
                      emb.fwd_bwd_s, emb.update_s,
                      head.fwd_bwd_s, head.update_s,
                      profile.activations(microbatch_size, tensor_parallel),
                      profile.boundary_bytes[microbatch_size],
                      capacity, float(tensor_parallel))
            self._class_scalars[key] = cached
        return cached

    def _p2p_time(self, plan: ParallelizationPlan, sender, receiver) -> float:
        """Boundary-activation transfer seconds, cached per class pair."""
        key = (sender.node_type, sender.zone, receiver.node_type,
               receiver.zone, plan.microbatch_size)
        cached = self._p2p.get(key)
        if cached is None:
            cached = self._timing.p2p_time(plan, sender, receiver)
            self._p2p[key] = cached
        return cached

    def _stage_sync(self, plan: ParallelizationPlan, stage,
                    stage_params: int) -> float:
        """Gradient all-reduce seconds, memoized per stage shape.

        Computed by the scalar estimator (worst-link search over the fitted
        network curves), so the value is identical to the scalar path; the
        memo key covers everything that computation reads.
        """
        if stage.data_parallel == 1:
            return 0.0
        key = (stage_params,
               tuple((r.node_type, r.tensor_parallel, r.zone)
                     for r in stage.replicas))
        cached = self._sync.get(key)
        if cached is None:
            cached = self._timing.stage_sync_time(plan, stage)
            self._sync[key] = cached
        return cached

    # -- the fused pass ------------------------------------------------------

    def plan_arrays(self, plan: ParallelizationPlan) -> PlanArrays:
        """Canonical arrays + fused evaluation results for one plan, cached."""
        if self._arrays is None:
            return self._build(plan)
        signature = plan_signature(plan)
        cached = self._arrays.get(signature)
        if cached is not None:
            self.plan_cache_hits += 1
            return cached
        self.plan_cache_misses += 1
        arrays = self._build(plan)
        self._arrays[signature] = arrays
        return arrays

    @hot_path
    def _build(self, plan: ParallelizationPlan) -> PlanArrays:
        job = plan.job
        model = job.model
        num_stages = plan.pipeline_parallel
        dp = plan.data_parallel
        nm = plan.num_microbatches
        mbs = plan.microbatch_size

        # One gather pass over the replica grid; everything below is NumPy.
        gathered = np.array(
            [[self._replica_class(r.node_type, mbs, r.tensor_parallel)
              for r in stage.replicas] for stage in plan.stages])
        layer_fb = gathered[..., 0]
        layer_up = gathered[..., 1]
        emb_fb = gathered[..., 2]
        emb_up = gathered[..., 3]
        head_fb = gathered[..., 4]
        head_up = gathered[..., 5]
        act_bytes = gathered[..., 6]
        boundary = gathered[..., 7]
        capacity = gathered[..., 8]
        tp = gathered[..., 9]

        num_layers = np.array([float(s.partition.num_layers)
                               for s in plan.stages])[:, None]
        has_emb = np.array([1.0 if s.partition.has_embedding else 0.0
                            for s in plan.stages])[:, None]
        has_head = np.array([1.0 if s.partition.has_lm_head else 0.0
                             for s in plan.stages])[:, None]
        stage_params_int = [s.partition.stage_params(model)
                            for s in plan.stages]
        stage_params = np.array([float(p)
                                 for p in stage_params_int])[:, None]
        stage_indices = [s.stage_index for s in plan.stages]
        # 1F1B in-flight microbatches: min(Nb, P - stage_index), at least 1.
        in_flight = np.array(
            [float(max(1, min(nm, num_stages - idx)))
             for idx in stage_indices])[:, None]

        # Compute / update: `layers * t_layer (+ emb) (+ head)` in the exact
        # scalar order; adding `0.0 * x` is a bitwise no-op on positives.
        compute = num_layers * layer_fb
        compute = compute + has_emb * emb_fb
        compute = compute + has_head * head_fb
        update = num_layers * layer_up
        update = update + has_emb * emb_up
        update = update + has_head * head_up

        # Memory: M_peak = M_model + M_activation + overhead, per worker.
        model_bytes = (stage_params / tp) * job.bytes_per_param
        if job.activation_checkpointing:
            act_per_mb = num_layers * boundary + act_bytes
        else:
            act_per_mb = num_layers * act_bytes + boundary
        activation = in_flight * act_per_mb * FRAGMENTATION_FACTOR
        peak = model_bytes + activation + FRAMEWORK_OVERHEAD_BYTES
        fits = peak <= capacity * USABLE_MEMORY_FRACTION

        # Inter-stage transfers (class-pair memoized scalar lookups).
        if num_stages > 1:
            p2p = np.array(
                [[self._p2p_time(plan, s, r) for s, r in
                  zip(plan.stages[i].replicas, plan.stages[i + 1].replicas)]
                 for i in range(num_stages - 1)])
        else:
            p2p = np.zeros((0, dp))

        # 1F1B closed form per pipeline.  The warm-up/cool-down sums are
        # explicit left-to-right accumulations: np.sum's pairwise summation
        # would reassociate and break bit-equivalence with the scalar path.
        # lint: disable=hot-loop-alloc -- dp-sized accumulator seed, copied
        # once per plan build so the += chain cannot alias row 0
        warmup = compute[0].copy()
        for s in range(1, num_stages):
            warmup += compute[s]
        if num_stages > 1:
            # lint: disable=hot-loop-alloc -- dp-sized accumulator seed (as
            # above); the arrays here are (stages, dp), never (rows, combos)
            p2p_sum = p2p[0].copy()
            for i in range(1, num_stages - 1):
                p2p_sum += p2p[i]
            warmup = warmup + 2.0 * p2p_sum
            straggler = np.maximum(compute.max(axis=0), p2p.max(axis=0))
        else:
            warmup = warmup + 0.0  # scalar path adds an empty p2p sum
            straggler = compute.max(axis=0)
        pipeline = warmup + (nm - 1) * straggler

        stage_compute = compute.max(axis=1)
        stage_peaks = peak.max(axis=1)
        oom = [stage_indices[s] for s in range(num_stages)
               if not bool(fits[s].all())]

        return PlanArrays(
            num_stages=num_stages,
            data_parallel=dp,
            num_microbatches=nm,
            microbatch_size=mbs,
            stage_indices=stage_indices,
            total_gpus=plan.total_gpus,
            compute=compute,
            update=update,
            peak=peak,
            fits=fits,
            p2p=p2p,
            stage_compute=stage_compute,
            stage_peaks=stage_peaks,
            oom_stages=oom,
            stage_params=stage_params_int,
            pipeline=pipeline,
            update_max=float(update.max()),
            straggler_stage=int(np.argmax(stage_compute)),
        )

    # -- scalar-compatible views --------------------------------------------

    @hot_path
    def timing_breakdown(self, plan: ParallelizationPlan) -> TimingBreakdown:
        """Vectorized :meth:`TimingEstimator.breakdown` (bit-identical)."""
        arrays = self.plan_arrays(plan)
        if arrays.sync is None:
            arrays.sync = [
                self._stage_sync(plan, stage, arrays.stage_params[s])
                for s, stage in enumerate(plan.stages)]
        # Scalar breakdown lists p2p times pipeline-major (d, then boundary).
        p2p_list = (arrays.p2p.T.reshape(-1).tolist()
                    if arrays.num_stages > 1 else [])
        return TimingBreakdown(
            pipeline_times_s=arrays.pipeline.tolist(),
            stage_compute_s=arrays.stage_compute.tolist(),
            stage_sync_s=list(arrays.sync),
            update_time_s=arrays.update_max,
            p2p_times_s=p2p_list,
            straggler_stage=arrays.straggler_stage,
        )
