"""Iteration-time estimation under the 1F1B pipeline schedule.

Follows the paper (section 4.3): one iteration is a full pass over the
global batch and its time is

``T_iter = max_d(T_pp_d) + T_sync + T_update``

where ``T_pp_d`` is the time of data-parallel pipeline ``d`` (warm-up +
steady phase bounded by the straggler stage + cool-down, plus inter-stage
activation/gradient transfers), ``T_sync`` is the gradient all-reduce at the
end of the iteration (worst stage), and ``T_update`` the optimizer step.
Heterogeneity in GPU generations, interconnects and placements enters through
the per-GPU-type profiles and per-link fitted bandwidth curves.

This estimator is the *scalar reference path*: the vectorized kernels in
:mod:`repro.core.simulator.eval_context` reproduce its results bit-for-bit
over canonical plan arrays (the equivalence suite enforces this), so any
change to the formulas here must be mirrored there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collectives import hierarchical_allreduce_time, ring_allreduce_time
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.simulator.environment import SimulationEnvironment
from repro.hardware.network import LinkClass


@dataclass
class TimingBreakdown:
    """Detailed timing of one simulated iteration (all values in seconds)."""

    pipeline_times_s: list[float]
    stage_compute_s: list[float]
    stage_sync_s: list[float]
    update_time_s: float
    p2p_times_s: list[float] = field(default_factory=list)
    straggler_stage: int = 0

    @property
    def pipeline_time_s(self) -> float:
        """Slowest pipeline (the one that bounds the iteration)."""
        return max(self.pipeline_times_s)

    @property
    def sync_time_s(self) -> float:
        """Slowest per-stage gradient synchronisation."""
        return max(self.stage_sync_s) if self.stage_sync_s else 0.0

    @property
    def iteration_time_s(self) -> float:
        """Total iteration time."""
        return self.pipeline_time_s + self.sync_time_s + self.update_time_s


class TimingEstimator:
    """Estimates iteration time for a plan using profiled tables."""

    def __init__(self, env: SimulationEnvironment) -> None:
        self.env = env

    # -- per-replica building blocks -----------------------------------------

    def replica_compute_time(self, plan: ParallelizationPlan, stage: StageConfig,
                             replica: StageReplica) -> float:
        """Forward+backward time of one microbatch on one stage replica."""
        profile = self.env.job_profile(replica)
        mbs, tp = plan.microbatch_size, replica.tensor_parallel
        layer = profile.layer(mbs, tp)
        total = stage.partition.num_layers * layer.fwd_bwd_s
        if stage.partition.has_embedding:
            total += profile.embedding(mbs, tp).fwd_bwd_s
        if stage.partition.has_lm_head:
            total += profile.head(mbs, tp).fwd_bwd_s
        return total

    def replica_update_time(self, plan: ParallelizationPlan, stage: StageConfig,
                            replica: StageReplica) -> float:
        """Optimizer-step time of one stage replica."""
        profile = self.env.job_profile(replica)
        mbs, tp = plan.microbatch_size, replica.tensor_parallel
        layer = profile.layer(mbs, tp)
        total = stage.partition.num_layers * layer.update_s
        if stage.partition.has_embedding:
            total += profile.embedding(mbs, tp).update_s
        if stage.partition.has_lm_head:
            total += profile.head(mbs, tp).update_s
        return total

    def p2p_time(self, plan: ParallelizationPlan, sender: StageReplica,
                 receiver: StageReplica) -> float:
        """Time to move one microbatch's boundary activations between stages."""
        profile = self.env.job_profile(sender)
        message = profile.boundary_bytes[plan.microbatch_size]
        link = self.env.link_between(sender, receiver)
        return link.transfer_time(message)

    def stage_compute_time(self, plan: ParallelizationPlan,
                           stage: StageConfig) -> float:
        """Per-microbatch compute time of a stage (slowest replica)."""
        return max(self.replica_compute_time(plan, stage, r)
                   for r in stage.replicas)

    def stage_sync_time(self, plan: ParallelizationPlan,
                        stage: StageConfig) -> float:
        """Gradient all-reduce time across a stage's data-parallel replicas."""
        if stage.data_parallel == 1:
            return 0.0
        model = plan.job.model
        stage_params = stage.partition.stage_params(model)
        # Gradients are sharded across TP ranks; the slowest (least-sharded)
        # replica determines the message size.
        max_message = max(stage_params / r.tensor_parallel * 2.0
                          for r in stage.replicas)

        zones = stage.zones
        if len(zones) == 1:
            link = self.env.link_for_replicas(stage.replicas)
            return ring_allreduce_time(max_message, stage.data_parallel,
                                       link.transfer_time)

        # Replicas span zones: reduce within each zone, then across zones.
        groups: list[int] = []
        zone_replicas: dict[str, list[StageReplica]] = {}
        for replica in stage.replicas:
            zone_replicas.setdefault(replica.zone, []).append(replica)
        for zone in zones:
            groups.append(len(zone_replicas[zone]))
        intra_link = self.env.link_for_replicas(
            max(zone_replicas.values(), key=len))
        leaders = [zone_replicas[z][0] for z in zones]
        inter_link = self.env.link_for_replicas(leaders)
        return hierarchical_allreduce_time(
            max_message, groups, intra_link.transfer_time, inter_link.transfer_time)

    # -- pipelines ------------------------------------------------------------

    def _chain_times(self, plan: ParallelizationPlan,
                     data_parallel_index: int,
                     ) -> tuple[list[float], list[float]]:
        """Per-stage compute and inter-stage transfer times of one pipeline."""
        chain = plan.pipeline(data_parallel_index)
        stage_times = [self.replica_compute_time(plan, stage, replica)
                       for stage, replica in zip(plan.stages, chain)]
        p2p_times = [self.p2p_time(plan, chain[i], chain[i + 1])
                     for i in range(len(chain) - 1)]
        return stage_times, p2p_times

    @staticmethod
    def _closed_form(stage_times: list[float], p2p_times: list[float],
                     num_microbatches: int) -> float:
        """1F1B closed form: warm-up/cool-down + straggler-bounded steady."""
        # The steady-state period is bounded by the slowest stage *or* the
        # slowest inter-stage link: a transfer that takes longer than the
        # straggler stage cannot be hidden and stalls the pipeline (this is
        # what makes cross-region pipeline boundaries expensive).
        straggler = max(stage_times + p2p_times)
        # Activations forward and gradients backward cross each boundary once
        # during warm-up/cool-down.
        warmup_cooldown = sum(stage_times) + 2.0 * sum(p2p_times)
        steady = (num_microbatches - 1) * straggler
        return warmup_cooldown + steady

    def pipeline_time(self, plan: ParallelizationPlan,
                      data_parallel_index: int) -> float:
        """1F1B time of one pipeline: warm-up + steady + cool-down + p2p."""
        stage_times, p2p_times = self._chain_times(plan, data_parallel_index)
        return self._closed_form(stage_times, p2p_times, plan.num_microbatches)

    # -- full iteration ---------------------------------------------------------

    def breakdown(self, plan: ParallelizationPlan) -> TimingBreakdown:
        """Full timing breakdown of one iteration.

        Each pipeline's chain is walked once: the same per-boundary transfer
        times feed both the closed form and the reported p2p list (they were
        previously recomputed per consumer).
        """
        num_microbatches = plan.num_microbatches
        pipeline_times = []
        p2p_times: list[float] = []
        for d in range(plan.data_parallel):
            stage_times, chain_p2p = self._chain_times(plan, d)
            pipeline_times.append(
                self._closed_form(stage_times, chain_p2p, num_microbatches))
            p2p_times.extend(chain_p2p)
        stage_compute = [self.stage_compute_time(plan, s) for s in plan.stages]
        stage_sync = [self.stage_sync_time(plan, s) for s in plan.stages]
        update = max(
            self.replica_update_time(plan, stage, replica)
            for stage in plan.stages for replica in stage.replicas)
        straggler_stage = max(range(len(stage_compute)),
                              key=lambda i: stage_compute[i])
        return TimingBreakdown(
            pipeline_times_s=pipeline_times,
            stage_compute_s=stage_compute,
            stage_sync_s=stage_sync,
            update_time_s=update,
            p2p_times_s=p2p_times,
            straggler_stage=straggler_stage,
        )

    def iteration_time(self, plan: ParallelizationPlan) -> float:
        """Seconds per iteration (full pass over the global batch)."""
        return self.breakdown(plan).iteration_time_s
