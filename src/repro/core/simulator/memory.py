"""Per-worker peak-memory estimation and OOM detection.

The paper's memory model (section 4.3) is

``M_peak = M_model + M_activation``

where ``M_model`` covers parameter, gradient, optimizer-state and
communication-buffer copies (``num_params * mul_factor * dtype_size``) and
``M_activation`` covers saved activations, both of which depend on the
worker's stage index, layer partition, tensor-parallel degree and microbatch
size.  Unlike most prior planners, memory is computed *per worker*, because
the footprint differs across stages (in-flight microbatches under 1F1B) and
across GPU types (different TP degrees).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.simulator.environment import SimulationEnvironment
from repro.hardware.gpus import get_gpu


#: Fixed per-GPU overhead: CUDA context, NCCL buffers, framework state.
FRAMEWORK_OVERHEAD_BYTES: float = 1.5 * (1024 ** 3)

#: Multiplicative allowance for allocator fragmentation on activations.
FRAGMENTATION_FACTOR: float = 1.05

#: Fraction of the device memory usable by the training job.
USABLE_MEMORY_FRACTION: float = 0.97


@dataclass(frozen=True)
class MemoryBreakdown:
    """Peak memory of one worker (one GPU of one stage replica), in bytes."""

    model_bytes: float
    activation_bytes: float
    overhead_bytes: float
    capacity_bytes: float

    @property
    def peak_bytes(self) -> float:
        """Total peak footprint."""
        return self.model_bytes + self.activation_bytes + self.overhead_bytes

    @property
    def fits(self) -> bool:
        """True when the footprint fits in the usable device memory."""
        return self.peak_bytes <= self.capacity_bytes * USABLE_MEMORY_FRACTION

    @property
    def utilization(self) -> float:
        """Peak footprint as a fraction of device capacity."""
        if self.capacity_bytes <= 0:
            return float("inf")
        return self.peak_bytes / self.capacity_bytes


class MemoryEstimator:
    """Estimates the peak memory footprint of every worker of a plan."""

    def __init__(self, env: SimulationEnvironment) -> None:
        self.env = env

    # -- per-replica --------------------------------------------------------

    def replica_memory(self, plan: ParallelizationPlan, stage: StageConfig,
                       replica: StageReplica) -> MemoryBreakdown:
        """Peak memory of one worker of ``replica`` (all TP ranks are equal)."""
        job = plan.job
        model = job.model
        tp = replica.tensor_parallel
        gpu = get_gpu(replica.gpu_type)
        profile = self.env.job_profile(replica)

        stage_params = stage.partition.stage_params(model)
        model_bytes = (stage_params / tp) * job.bytes_per_param

        # 1F1B keeps (P - stage_index) microbatches of activations in flight,
        # bounded by the number of microbatches the pipeline processes.
        num_microbatches = plan.num_microbatches
        in_flight = min(num_microbatches,
                        plan.pipeline_parallel - stage.stage_index)
        in_flight = max(1, in_flight)

        per_layer_act = profile.activations(plan.microbatch_size, tp)
        boundary = profile.boundary_bytes[plan.microbatch_size]
        if job.activation_checkpointing:
            # Only boundary activations are kept; one layer is rematerialised.
            act_per_microbatch = (stage.partition.num_layers * boundary
                                  + per_layer_act)
        else:
            act_per_microbatch = (stage.partition.num_layers * per_layer_act
                                  + boundary)
        activation_bytes = in_flight * act_per_microbatch * FRAGMENTATION_FACTOR

        return MemoryBreakdown(
            model_bytes=model_bytes,
            activation_bytes=activation_bytes,
            overhead_bytes=FRAMEWORK_OVERHEAD_BYTES,
            capacity_bytes=float(gpu.memory_bytes),
        )

    # -- per-plan -----------------------------------------------------------

    def plan_breakdowns(self, plan: ParallelizationPlan,
                        ) -> list[list[MemoryBreakdown]]:
        """Per-stage lists of per-replica breakdowns, computed in one pass.

        The evaluator derives both the OOM check and the per-stage peaks
        from this single walk instead of recomputing ``replica_memory``
        once per consumer.
        """
        return [[self.replica_memory(plan, stage, replica)
                 for replica in stage.replicas]
                for stage in plan.stages]

    def stage_peaks(self, plan: ParallelizationPlan) -> list[float]:
        """Worst-case peak bytes per stage (max over that stage's replicas)."""
        peaks = []
        for stage in plan.stages:
            peaks.append(max(self.replica_memory(plan, stage, replica).peak_bytes
                             for replica in stage.replicas))
        return peaks

    def oom_stages(self, plan: ParallelizationPlan) -> list[int]:
        """Stage indices with at least one worker that does not fit."""
        out = []
        for stage in plan.stages:
            for replica in stage.replicas:
                if not self.replica_memory(plan, stage, replica).fits:
                    out.append(stage.stage_index)
                    break
        return out

    def plan_fits(self, plan: ParallelizationPlan) -> bool:
        """True when no worker of the plan runs out of memory."""
        return not self.oom_stages(plan)

    # -- planner helpers ------------------------------------------------------

    def min_tensor_parallel(self, plan_job, partition, gpu_type: str,
                            microbatch_size: int, num_microbatches_in_flight: int,
                            available_tp_degrees: list[int]) -> int | None:
        """Smallest TP degree on ``gpu_type`` that avoids OOM for a stage.

        This is the precomputation behind heuristic H2.  Returns ``None``
        when no available degree fits.
        """
        gpu = get_gpu(gpu_type)
        profile = self.env.profiles.job_profile(gpu_type)
        stage_params = partition.stage_params(plan_job.model)
        capacity = gpu.memory_bytes * USABLE_MEMORY_FRACTION
        for tp in sorted(available_tp_degrees):
            if not profile.has(microbatch_size, tp):
                continue
            model_bytes = (stage_params / tp) * plan_job.bytes_per_param
            per_layer_act = profile.activations(microbatch_size, tp)
            boundary = profile.boundary_bytes[microbatch_size]
            if plan_job.activation_checkpointing:
                act = partition.num_layers * boundary + per_layer_act
            else:
                act = partition.num_layers * per_layer_act + boundary
            act_bytes = num_microbatches_in_flight * act * FRAGMENTATION_FACTOR
            peak = model_bytes + act_bytes + FRAMEWORK_OVERHEAD_BYTES
            if peak <= capacity:
                return tp
        return None
