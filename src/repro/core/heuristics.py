"""Search-space pruning heuristics H1-H6 (paper section 4.2.1).

* **H1** Tensor parallelism stays within a node, so each stage replica uses a
  single GPU type and the candidate TP degrees are bounded by the node size.
* **H2** Configurations whose memory footprint cannot fit are pruned early by
  precomputing, per (stage, GPU type, microbatch size), the *minimum* TP
  degree that avoids OOM.
* **H3** When maximising throughput, data-parallel degrees are explored in
  decreasing order and the search stops once throughput stops improving.
* **H4** When minimising cost, data-parallel degrees are explored in
  increasing order and the search stops once cost stops improving.
* **H5** Data-parallel replicas of a stage stay within one region; only
  pipeline-parallel traffic may cross regions.
* **H6** Zones of the same region are consolidated into one pseudo-zone
  during the search (bandwidth within a region is roughly uniform), and the
  chosen plan is spread back over the real zones afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.simulator.environment import SimulationEnvironment
from repro.core.simulator.memory import MemoryEstimator
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.partition import LayerPartition
from repro.models.spec import TrainingJobSpec


@dataclass
class HeuristicConfig:
    """Which heuristics are active (all on by default; ablations flip these)."""

    limit_tp_to_node: bool = True          # H1
    prune_oom_early: bool = True           # H2
    ordered_data_parallel: bool = True     # H3 / H4
    dp_within_region: bool = True          # H5
    consolidate_zones: bool = True         # H6
    max_pipeline_parallel: int = 16
    max_microbatch_size: int = 8
    extra_tp_candidates: bool = True       # also consider full-node TP

    def describe(self) -> str:
        """Short summary of active heuristics (used in experiment logs)."""
        flags = {
            "H1": self.limit_tp_to_node,
            "H2": self.prune_oom_early,
            "H3/H4": self.ordered_data_parallel,
            "H5": self.dp_within_region,
            "H6": self.consolidate_zones,
        }
        return ", ".join(f"{k}={'on' if v else 'off'}" for k, v in flags.items())


# ---------------------------------------------------------------------------
# H1 / H2: tensor-parallel candidates
# ---------------------------------------------------------------------------

def tp_candidates_for_node(node_type: str, config: HeuristicConfig) -> list[int]:
    """Candidate TP degrees on a node type (H1: bounded by the node size)."""
    spec = get_node_type(node_type)
    if config.limit_tp_to_node:
        return list(spec.valid_tp_degrees)
    # Without H1 we would consider multi-node tensor parallelism; cap at 2
    # nodes to keep the ablation finite.
    degrees = list(spec.valid_tp_degrees)
    degrees.append(spec.gpus_per_node * 2)
    return degrees


def min_tp_per_stage(job: TrainingJobSpec, partitions: list[LayerPartition],
                     node_types: list[str], microbatch_size: int,
                     num_microbatches_in_flight_cap: int,
                     env: SimulationEnvironment,
                     config: HeuristicConfig) -> list[dict[str, int]]:
    """H2: per stage, the minimum feasible TP degree for every node type.

    Returns a list with one dict per stage mapping node-type name to the
    minimum TP degree that fits in that node's GPU memory; node types that
    cannot fit the stage at any degree are omitted.  When H2 is disabled the
    smallest profiled degree is returned for every node type (OOM plans are
    then only discovered at evaluation time, like several baselines).
    """
    memory = MemoryEstimator(env)
    result: list[dict[str, int]] = []
    num_stages = len(partitions)
    for partition in partitions:
        in_flight = min(num_microbatches_in_flight_cap,
                        num_stages - partition.stage_index)
        in_flight = max(1, in_flight)
        per_stage: dict[str, int] = {}
        for node_type in node_types:
            spec = get_node_type(node_type)
            degrees = [d for d in tp_candidates_for_node(node_type, config)
                       if d <= spec.gpus_per_node]
            if not config.prune_oom_early:
                per_stage[node_type] = min(degrees)
                continue
            min_tp = memory.min_tensor_parallel(
                job, partition, spec.gpu.name, microbatch_size, in_flight, degrees)
            if min_tp is not None:
                per_stage[node_type] = min_tp
        result.append(per_stage)
    return result


def tp_options_for_stage(stage_min_tp: dict[str, int],
                         config: HeuristicConfig) -> dict[str, list[int]]:
    """Candidate TP degrees per node type for one stage.

    Includes the H2 minimum and, when ``extra_tp_candidates`` is on, the
    full-node degree (larger TP shortens the per-microbatch stage time, which
    the paper observes Sailor often prefers).
    """
    options: dict[str, list[int]] = {}
    for node_type, min_tp in stage_min_tp.items():
        spec = get_node_type(node_type)
        degrees = {min_tp}
        if config.extra_tp_candidates:
            degrees.add(spec.gpus_per_node)
        options[node_type] = sorted(d for d in degrees if d <= spec.gpus_per_node)
    return options


# ---------------------------------------------------------------------------
# H3 / H4: data-parallel orderings
# ---------------------------------------------------------------------------

def data_parallel_candidates(job: TrainingJobSpec, microbatch_size: int,
                             max_data_parallel: int,
                             *, maximize_throughput: bool,
                             config: HeuristicConfig) -> list[int]:
    """Feasible data-parallel degrees in the order the search explores them.

    Only degrees that split the global batch evenly (given the microbatch
    size) are considered.  H3 orders them decreasing for throughput, H4
    increasing for cost; without the heuristic the natural increasing order
    is used and no early stop is applied by the caller.
    """
    if max_data_parallel < 1:
        return []
    candidates = []
    for d in range(1, max_data_parallel + 1):
        per_pipeline = job.global_batch_size / d
        if per_pipeline < microbatch_size:
            continue
        if job.global_batch_size % d != 0:
            continue
        if (job.global_batch_size // d) % microbatch_size != 0:
            continue
        candidates.append(d)
    if config.ordered_data_parallel and maximize_throughput:
        candidates.sort(reverse=True)
    else:
        candidates.sort()
    return candidates


# ---------------------------------------------------------------------------
# H5 / H6: geography
# ---------------------------------------------------------------------------

@dataclass
class ConsolidatedTopology:
    """Result of H6: one pseudo-zone per region plus the spread-back map."""

    topology: ClusterTopology
    #: pseudo-zone -> list of (real zone, node_type, node count) in it.
    members: dict[str, list[tuple[str, str, int]]] = field(default_factory=dict)

    def real_zones(self, pseudo_zone: str, node_type: str) -> list[tuple[str, int]]:
        """Real zones (and node counts) backing a pseudo-zone for a node type."""
        return [(zone, count) for zone, ntype, count in self.members.get(pseudo_zone, [])
                if ntype == node_type]


def consolidate_zones(topology: ClusterTopology,
                      config: HeuristicConfig) -> ConsolidatedTopology:
    """H6: merge all zones of a region into the region's first zone.

    Bandwidth across zones of one region is close to intra-zone bandwidth
    (paper observation), so the search treats them as a single pool and the
    final plan is spread back across the real zones afterwards.
    """
    if not config.consolidate_zones:
        return ConsolidatedTopology(topology=topology, members={
            zone: [(zone, node_type, count)
                   for node_type, count in topology.nodes.get(zone, {}).items()]
            for zone in topology.zones})

    nodes: dict[str, dict[str, int]] = {}
    members: dict[str, list[tuple[str, str, int]]] = {}
    for region in topology.regions:
        zones = topology.zones_in_region(region)
        if not zones:
            continue
        pseudo = zones[0]
        merged: dict[str, int] = {}
        member_list: list[tuple[str, str, int]] = []
        for zone in zones:
            for node_type, count in topology.nodes.get(zone, {}).items():
                if count <= 0:
                    continue
                merged[node_type] = merged.get(node_type, 0) + count
                member_list.append((zone, node_type, count))
        nodes[pseudo] = merged
        members[pseudo] = member_list
    consolidated = ClusterTopology(nodes=nodes,
                                   zone_to_region=dict(topology.zone_to_region),
                                   network=topology.network)
    return ConsolidatedTopology(topology=consolidated, members=members)


# ---------------------------------------------------------------------------
# Pipeline-parallel and microbatch candidates
# ---------------------------------------------------------------------------

def pipeline_parallel_candidates(job: TrainingJobSpec, total_nodes: int,
                                 config: HeuristicConfig) -> list[int]:
    """Pipeline depths worth exploring: 1..min(layers, nodes, configured cap)."""
    limit = min(job.model.num_layers, max(1, total_nodes),
                config.max_pipeline_parallel)
    candidates = [p for p in range(1, limit + 1)
                  if job.model.num_layers >= p]
    # Prefer depths that divide the layer count evenly (balanced stages), but
    # keep the others as well -- heterogeneous clusters may want them.
    candidates.sort(key=lambda p: (job.model.num_layers % p != 0, p))
    return candidates


def microbatch_candidates(job: TrainingJobSpec,
                          config: HeuristicConfig) -> list[int]:
    """Microbatch sizes worth exploring (powers of two dividing the batch)."""
    return job.valid_microbatch_sizes(max_mbs=config.max_microbatch_size)
