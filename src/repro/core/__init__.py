"""Sailor core: plan representation, simulator, and planner.

This is the paper's primary contribution:

* :mod:`repro.core.plan` -- resource-allocation + parallelization-plan
  datatypes shared by the planner, simulator, baselines and runtime.
* :mod:`repro.core.objectives` -- user objectives and constraints.
* :mod:`repro.core.simulator` -- memory / iteration-time / cost estimation.
* :mod:`repro.core.heuristics` -- search-space pruning heuristics H1-H6.
* :mod:`repro.core.dp_solver` -- the per-stage dynamic program (Listing 1).
* :mod:`repro.core.search_cache` -- cross-candidate caches shared by one
  planner call.
* :mod:`repro.core.planner` -- the Sailor planner tying it all together,
  plus the opt-in multi-process :class:`~repro.core.planner.ParallelPlanner`.
"""

from repro.core.plan import (
    StageReplica,
    StageConfig,
    ParallelizationPlan,
    ResourceAllocation,
    PlanEvaluation,
    PlannerResult,
    SearchStats,
)
from repro.core.objectives import Objective, Constraint, OptimizationGoal
from repro.core.search_cache import PlannerSearchContext
from repro.core.simulator import SailorSimulator
from repro.core.planner import ParallelPlanner, SailorPlanner

__all__ = [
    "StageReplica",
    "StageConfig",
    "ParallelizationPlan",
    "ResourceAllocation",
    "PlanEvaluation",
    "PlannerResult",
    "SearchStats",
    "Objective",
    "Constraint",
    "OptimizationGoal",
    "PlannerSearchContext",
    "SailorSimulator",
    "SailorPlanner",
    "ParallelPlanner",
]
