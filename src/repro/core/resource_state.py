"""Array-encoded DP resource states: the planner's resource-state engine.

Motivation
----------
The DP solver's resource states were canonically ``tuple(sorted(((zone,
node_type), count), ...))`` with exhausted pairs dropped.  Everything the
recursion does to a state -- subtract a combo's whole-node footprint, test
which master combos still fit, clamp at per-stage caps, hash it into the
memo -- walked those nested tuples in interpreted Python, and ``make
profile`` showed exactly those walks (``_combos_for_state`` fit-scans and
``_subtract_state``) dominating planner latency once the evaluation layer
was vectorized.  This module replaces the encoding wholesale: a
:class:`ResourceStateCodec` maps states to fixed-width NumPy count vectors
(one slot per root (zone, node type) pair) and provides vectorized
subtract / fits / clamp kernels plus per-stage precomputed combo tables
(:class:`StageComboTable`), so the per-state work is a handful of NumPy
calls over *all* combos at once instead of a Python loop per combo.

Bijection contract
------------------
A codec is built from one *root* resource pool (the sorted canonical tuple
the solver receives).  Within the state space reachable from that root --
subtract whole-node footprints, clamp at per-slot caps, both of which only
ever *shrink* counts -- the fixed-width encoding is a bijection with the
canonical tuple form:

* the slots are the root's sorted ``(zone, node type)`` keys, so no
  reachable state can hold a key outside the slot set;
* a pair the canonical form dropped (count exhausted) is exactly a zero
  slot in the vector form, so ``decode(encode(t)) == t`` and
  ``encode(decode(v)) == v`` for every reachable state;
* therefore :meth:`ResourceStateCodec.state_key` (the raw bytes of the
  int64 count vector) collapses exactly the same states the canonical
  tuple did -- memo and combo-cache keys are unchanged *as sets*, only
  cheaper to build and hash.

That bijection is what keeps plans byte-identical across the tuple ->
array refactor: the DP explores the same states in the same order; only
the encoding of the keys changed.  ``tests/test_resource_state.py`` checks
the round-trip and kernel properties directly, and the solver equivalence
suites (``tests/test_dp_solver.py``, ``tests/test_planner.py``) check the
end-to-end consequence.

Forward/backward split
----------------------
The layered engine is split so its expensive half can be shared: *forward
reachability* (:func:`compute_forward_layers` -> :class:`ForwardLayers`)
depends only on the root state and each stage's combo footprint matrix, so
one pass serves every ``(P, mbs, D)`` candidate with the same
:func:`forward_signature` via the search context's layer cache, while the
cheap *backward scoring* (:meth:`ResourceStateEngine.run_backward`) runs
per candidate over its own compute/sync/cost scalars.  The forward pass
chunks its fit-test broadcast along the state axis (peak memory
``O(chunk x combos)``) and deduplicates children through an injective
mixed-radix int64 packing (:func:`layer_pack_weights`) instead of the
row-wise ``np.unique`` sort -- both pure implementation knobs that leave
the reachable state sets, and therefore plans, bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.hotpath import hot_path

#: Canonical resource state: sorted ``(((zone, node_type), count), ...)``
#: (re-exported by :mod:`repro.core.search_cache`; duplicated here to avoid
#: an import cycle).
ResourceKey = tuple[tuple[tuple[str, str], int], ...]

#: dtype of every encoded state; fixed so ``state_key`` widths never vary
#: within one codec.
STATE_DTYPE = np.int64


@dataclass
class StageComboTable:
    """One stage's master combo list, footprints pre-packed for the kernels.

    ``entries`` is the untruncated, ranking-sorted master list the shared
    :class:`~repro.core.search_cache.PlannerSearchContext` built (mutable
    ``[placements, footprint, lazy StageAssignment, footprint items, stage
    compute time]`` rows); ``req[i]`` is ``entries[i]``'s whole-node
    footprint as a count vector aligned with the codec's slots, and
    ``pairs[i]`` the same footprint as sparse ``(slot, used)`` items for
    the scalar fit-scan (small pools, where a Python loop beats the NumPy
    call overhead).
    """

    entries: list
    req: np.ndarray | None  # (num_combos, num_slots) int64; None on the
                            # scalar path (see ResourceStateCodec.combo_pairs)
    pairs: list             # [(entry, ((slot, used), ...)), ...]


class ResourceStateCodec:
    """Bijective fixed-width array encoding of one root's resource states.

    One codec serves one :meth:`DPSolver.solve` call (the slot layout is
    the root's sorted key order, so a different root needs a new codec).
    See the module docstring for the bijection contract.
    """

    __slots__ = ("keys", "slot", "num_slots", "root_state")

    def __init__(self, root: ResourceKey) -> None:
        self.keys: tuple[tuple[str, str], ...] = tuple(key for key, _ in root)
        self.slot: dict[tuple[str, str], int] = {
            key: i for i, key in enumerate(self.keys)}
        self.num_slots = len(self.keys)
        self.root_state = np.array([count for _, count in root],
                                   dtype=STATE_DTYPE)

    # -- tuple <-> vector bijection -----------------------------------------

    def encode(self, resources: ResourceKey) -> np.ndarray:
        """Canonical tuple form -> count vector (zero slots for dropped pairs)."""
        state = np.zeros(self.num_slots, dtype=STATE_DTYPE)
        for key, count in resources:
            state[self.slot[key]] = count
        return state

    def decode(self, state: np.ndarray) -> ResourceKey:
        """Count vector -> canonical tuple form (zero slots are dropped).

        The slot order *is* the canonical sorted order, so no re-sort is
        needed for the round-trip to hold.
        """
        return tuple((key, count)
                     for key, count in zip(self.keys, state.tolist())
                     if count)

    @staticmethod
    def state_key(state: np.ndarray) -> bytes:
        """Hashable memo key: the raw bytes of the count vector.

        Fixed dtype + fixed width make this injective over one codec's
        states, i.e. exactly as discriminating as the canonical tuple.
        """
        return state.tobytes()

    # -- kernels -------------------------------------------------------------

    def caps_vector(self, caps: dict[str, int]) -> np.ndarray:
        """Per-node-type caps dict -> per-slot cap vector."""
        return np.array([caps.get(node_type, 0)
                         for _, node_type in self.keys], dtype=STATE_DTYPE)

    @staticmethod
    def clamp(state: np.ndarray, caps: np.ndarray) -> np.ndarray:
        """Clamp a state at per-slot caps (returns the input when no-op)."""
        if (state <= caps).all():
            return state
        return np.minimum(state, caps)

    @staticmethod
    def subtract(state: np.ndarray, needs: np.ndarray) -> np.ndarray | None:
        """Remove one footprint; ``None`` when some slot goes negative."""
        out = state - needs
        if (out < 0).any():
            return None
        return out

    def combo_table(self, entries: list) -> StageComboTable:
        """Pack a master combo list's footprints into a fit-test matrix."""
        req = np.zeros((len(entries), self.num_slots), dtype=STATE_DTYPE)
        slot = self.slot
        pairs = []
        for row, entry in enumerate(entries):
            for node_key, used in entry[3]:
                req[row, slot[node_key]] = used
            pairs.append((entry, tuple((slot[node_key], used)
                                       for node_key, used in entry[3])))
        return StageComboTable(entries=entries, req=req, pairs=pairs)

    def combo_pairs(self, entries: list) -> StageComboTable:
        """Scalar-path variant of :meth:`combo_table`: sparse footprints
        only, no fit-test matrix (tiny pools never run the vector kernels,
        so building the matrix would be pure overhead)."""
        slot = self.slot
        pairs = [(entry, tuple((slot[node_key], used)
                               for node_key, used in entry[3]))
                 for entry in entries]
        return StageComboTable(entries=entries, req=None, pairs=pairs)

    @staticmethod
    def fitting_combos(table: StageComboTable, state: np.ndarray,
                       limit: int) -> np.ndarray:
        """Indices of the first ``limit`` master combos that fit ``state``.

        One vectorized comparison over the whole table replaces the
        per-combo Python fit scan; master order (the ranking order) is
        preserved, so truncating at ``limit`` selects the same combos the
        scalar scan did.
        """
        idx = (table.req <= state).all(axis=1).nonzero()[0]
        if idx.size > limit:
            return idx[:limit]
        return idx


@dataclass
class StageKernelTable(StageComboTable):
    """A combo table extended with the per-combo scalars the engine batches.

    ``compute[i]`` / ``sync[i]`` / ``rate[i]`` are ``entries[i]``'s stage
    compute time, gradient-sync time and cost rate -- exactly the scalars a
    lazily-built ``StageAssignment`` would carry, gathered eagerly so the
    backward pass can score every (state, combo) candidate in one array
    expression.
    """

    compute: np.ndarray = None  # (M,) float64
    sync: np.ndarray = None     # (M,)
    rate: np.ndarray = None     # (M,)


#: Element budget of one forward fit-test block: the (chunk, M, S) broadcast
#: compare is chunked along the state axis so its peak intermediate stays
#: ``O(chunk x M x S)`` bytes (~32 MB of bool at the default) no matter how
#: wide a layer grows.  1024-GPU pools reach ~1.7e4 states per layer today;
#: the chunking is what keeps the engine's memory flat beyond that.
FORWARD_CHUNK_ELEMS = 1 << 25

#: Maximum layer density (valid entries / dense size) at which the backward
#: sweep routes a layer through the shared CSR argmin kernel.  The CSR
#: chain pays fancy-index gathers plus two segmented ``reduceat`` passes
#: per *valid* entry, where the dense path pays broadcast arithmetic plus
#: one ``argmin`` per *dense* entry; measured at the 1024-GPU bench point
#: the per-entry ratio is ~3-4x, so the CSR path only wins once the
#: truncation masks leave well under a quarter of the dense product valid.
#: Above the threshold the skeleton is not even built.  Both paths are
#: bit-identical (the equivalence suite forces each in turn), so the
#: dispatch is a pure latency policy.
SHARED_ARGMIN_MAX_DENSITY = 0.25

#: Combine block sizes (dense ``rows * combos``, or CSR ``nnz``) routed
#: through the fused workspace kernel (``DPSolverConfig.fused_combine``)
#: -- a *band*, not a floor.  Below the minimum the reference expression
#: chain wins: the fused path's gain is skipping full-size temporary
#: allocations, which is noise for blocks that fit comfortably in cache,
#: while its ``np.take``/workspace indirection has a fixed per-call
#: overhead.  Above the maximum the reference wins again: once the
#: workspace set (seven full-size buffers) blows far past the last-level
#: cache, rewriting the same resident pages measures ~10-20% *slower* on
#: this box than the allocator's fresh pages (isolated kernel bench,
#: 2026-08; 16384x128 fused 1.98x faster, 16384x256 0.80x).  Measured
#: crossovers: fused wins ~1.5-2x from ~16K up to and including 2M
#: elements, loses at 4M+ -- re-measure both ends before porting to other
#: hardware.  In situ the win hinges on gathering straight through
#: ``child_row`` with ``mode="clip"``: an explicit clamped-index buffer
#: cost more L2 traffic than every elementwise saving combined (per-op
#: timing, 1024-GPU point).  Both paths are bit-identical (the
#: equivalence suite pins them), so the dispatch is a pure latency
#: policy.
FUSED_COMBINE_MIN_ELEMS = 16384
FUSED_COMBINE_MAX_ELEMS = 1 << 21

#: Process-wide fused-combine scratch pool (see
#: :meth:`ForwardLayers.combine_workspace` for the sharing/safety
#: argument).  Grow-only per name; the dispatch band caps every buffer at
#: ``FUSED_COMBINE_MAX_ELEMS`` elements, so the pool's resident ceiling
#: is a few hundred MB at full scale and zero until the band first fires.
_COMBINE_WS: dict[str, np.ndarray] = {}

#: Packed-value ceiling below which :func:`dedup_states` uses the counting
#: (bincount) dedup instead of the sort-based ``np.unique``.  The bound
#: caps the side tables at a few MB; pools whose packed range exceeds it
#: (beyond ~4M distinct states) fall back to the sort.  4096-GPU pools
#: pack to ~513^2 values, so every current bench point stays on the
#: counting path.
DEDUP_BINCOUNT_RANGE = 1 << 22


def layer_pack_weights(root_state: np.ndarray) -> np.ndarray | None:
    """Mixed-radix weights packing any reachable state into one ``int64``.

    Every state the forward pass can produce satisfies ``0 <= state[i] <=
    root_state[i]`` per slot (subtract and clamp only shrink counts), so
    packing with radix ``root_state[i] + 1`` per slot is *injective* -- a
    perfect hash, not a probabilistic one -- whenever the radix product fits
    in an int64.  Returns ``None`` when it does not (the caller falls back
    to row-wise ``np.unique``); at 1024 GPUs the product is ~1.7e4, so the
    fallback is reserved for pools far beyond current benches.
    """
    weights = []
    scale = 1
    for count in reversed(root_state.tolist()):
        weights.append(scale)
        scale *= count + 1
        if scale > np.iinfo(np.int64).max:
            return None
    weights.reverse()
    return np.array(weights, dtype=np.int64)


def dedup_states(children: np.ndarray,
                 weights: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate state rows; returns ``(unique rows, inverse index map)``.

    With pack weights the rows collapse to one int64 each and the dedup is
    a scalar sort (`np.unique` on a 1-D array) instead of the row-wise
    void-dtype sort ``np.unique(axis=0)`` performs -- the packing is
    injective (see :func:`layer_pack_weights`), so the unique *set* and the
    inverse map are exactly the row-wise dedup's; only the order of the
    unique rows differs, which nothing downstream observes (the backward
    pass reduces per row, and backpointers index rows consistently).
    """
    if weights is not None:
        packed = children @ weights
        if packed.shape[0] and int(packed.max()) < DEDUP_BINCOUNT_RANGE:
            # Counting dedup: O(n + range) instead of the O(n log n)
            # argsort `np.unique` performs -- the dominant forward-pass
            # cost at the 1024-GPU point.  Output-identical to the sort
            # path: unique values ascend (cumsum ranks ascend with the
            # packed value), the inverse maps through those ranks, and the
            # representative row per value is bitwise arbitrary-free --
            # packing is injective, so every row sharing a packed value is
            # the same row.
            counts = np.bincount(packed)
            present = counts > 0
            rank = np.cumsum(present, dtype=np.int64) - 1
            inverse = rank[packed]
            representative = np.empty(counts.shape[0], dtype=np.int64)
            representative[packed] = np.arange(packed.shape[0],
                                               dtype=np.int64)
            return children[representative[present]], inverse
        _, first, inverse = np.unique(packed, return_index=True,
                                      return_inverse=True)
        return children[first], inverse
    uniq, inverse = np.unique(children, axis=0, return_inverse=True)
    return uniq, inverse


class ForwardLayers:
    """Forward-reachability result of one root x per-stage-footprint signature.

    Holds everything the forward pass produces -- per-stage unique state
    layers, the ``(N, M)`` child-row maps (``-1`` where a combo does not fit
    or was truncated) and the last layer's fit mask -- and *nothing* that
    depends on the microbatch size (compute/sync/cost scalars live on the
    per-candidate :class:`StageKernelTable`).  Reachability depends only on
    the root state, the per-stage combo footprints (in master ranking
    order), the truncation limit and the suffix clamps, so one instance is
    shared by every ``(P, mbs, D)`` candidate with the same signature via
    the :class:`~repro.core.search_cache.PlannerSearchContext` layer cache.
    """

    __slots__ = ("states", "child_row", "last_sel", "states_computed",
                 "dedup_hits", "row_of", "_row_cols", "_backward_csr",
                 "_backward_nnz", "_combine_ws")

    def __init__(self, states: list[np.ndarray],
                 child_row: list[np.ndarray | None],
                 last_sel: np.ndarray, states_computed: int,
                 dedup_hits: int,
                 backward_nnz: dict[int, int] | None = None) -> None:
        self.states = states
        self.child_row = child_row
        self.last_sel = last_sel
        self.states_computed = states_computed
        self.dedup_hits = dedup_hits
        #: bytes -> row maps, built lazily per stage (budget probes only).
        self.row_of: list[dict[bytes, int] | None] = [None] * len(states)
        #: Per-(stage, row) fitting-combo columns and child rows for the
        #: budget search's row gathers: mbs-independent, so every candidate
        #: sharing this forward pass reuses them.  Only the rows the budget
        #: search actually touches are ever built (tiny per-row arrays --
        #: retaining whole (rows, combos) gather matrices here instead was
        #: measured ~1.4x *slower* at the 1024-GPU point: hundreds of MB of
        #: retained intermediates turn every backward temp allocation into
        #: fresh-page traffic).
        self._row_cols: dict[tuple[int, int], tuple] = {}
        #: Per-stage CSR skeleton of the valid (state, combo) entries, built
        #: lazily by :meth:`backward_csr` and shared across every candidate
        #: (it is a pure function of ``child_row``/``last_sel``).  Index
        #: arrays only -- at the default truncation limit that is at most
        #: ~2*limit+1 int64 per state, far below the transient (rows,
        #: combos) float64 gather matrices PR 4's negative result keeps off
        #: the shared layers.
        self._backward_csr: dict[int, tuple] = {}
        #: Per-stage count of valid (state, combo) entries, the density
        #: input of the backward-path dispatch (:meth:`backward_nnz`);
        #: mbs-independent like the skeleton itself.  The forward pass
        #: pre-fills it from counts it computes anyway; the lazy fallback
        #: covers hand-built layers.
        self._backward_nnz: dict[int, int] = dict(backward_nnz or {})
        #: Named grow-only scratch buffers of the fused backward combine
        #: (:meth:`combine_workspace`): hung off the shared forward layers
        #: because every candidate on this footprint signature scores the
        #: same layer shapes; the actual buffers live in the process-wide
        #: pool (see :meth:`combine_workspace`).
        self._combine_ws = _COMBINE_WS

    def combine_workspace(self, name: str, count: int,
                          dtype=np.float64) -> np.ndarray:
        """Flat scratch buffer of at least ``count`` elements, by name.

        Grow-only, and backed by one *process-wide* pool rather than a
        per-instance dict: at the 1024-GPU bench point forward builds are
        nearly 1:1 with candidates (~145 distinct footprints for ~412
        fused combines), so per-footprint buffers were used ~3x each and
        arrived cache-cold every time -- measured, that forfeited the
        whole fused-kernel win.  One shared pool keeps the buffers hot
        across every candidate and footprint of the process.  Sharing is
        safe because the backward sweep runs serially per candidate
        within a process (parallel workers are separate processes), the
        workspace is write-before-read within one ``_solve_layer`` call,
        and every *persisted* layer output is a fresh array (argmin
        gathers / ``np.where`` results), so no workspace view is ever
        live once :meth:`ResourceStateEngine._solve_layer` returns.
        Returned sliced to exactly ``count`` (contiguous, reshapeable).
        """
        buf = self._combine_ws.get(name)
        if buf is None or buf.shape[0] < count:
            buf = np.empty(count, dtype=dtype)
            self._combine_ws[name] = buf
        return buf[:count]

    def row_for_key(self, stage_index: int, key: bytes) -> int | None:
        """Row index of an encoded state in one layer, if reachable."""
        table = self.row_of[stage_index]
        if table is None:
            states = self.states[stage_index]
            blob = states.tobytes()
            width = states.shape[1] * states.itemsize
            table = {blob[r * width:(r + 1) * width]: r
                     for r in range(states.shape[0])}
            self.row_of[stage_index] = table
        return table.get(key)

    def row_cols(self, stage_index: int, row: int,
                 last: bool) -> tuple[np.ndarray, np.ndarray | None]:
        """``(fitting combo columns, child rows)`` of one (stage, row).

        The column/child index pair the budget search gathers per engine
        row; ``child`` is ``None`` on the last stage.  Forward-derived, so
        shared across candidates like :meth:`child_gather`.
        """
        cached = self._row_cols.get((stage_index, row))
        if cached is None:
            if last:
                cached = (self.last_sel[row].nonzero()[0], None)
            else:
                crow = self.child_row[stage_index][row]
                cols = (crow >= 0).nonzero()[0]
                cached = (cols, crow[cols])
            self._row_cols[(stage_index, row)] = cached
        return cached

    def backward_nnz(self, stage_index: int, last: bool) -> int:
        """Count of valid (state, combo) entries in one layer.

        A cheap boolean reduction over the forward masks, cached per stage
        (mbs-independent), so the backward dispatch can compare a layer's
        density against :data:`SHARED_ARGMIN_MAX_DENSITY` without building
        the CSR skeleton first.
        """
        cached = self._backward_nnz.get(stage_index)
        if cached is None:
            if last:
                cached = int(np.count_nonzero(self.last_sel))
            else:
                cached = int(np.count_nonzero(
                    self.child_row[stage_index] >= 0))
            self._backward_nnz[stage_index] = cached
        return cached

    def backward_csr(self, stage_index: int,
                     last: bool) -> tuple[tuple, bool]:
        """CSR skeleton of one layer's valid (state, combo) entries.

        Returns ``((row_ptr, cols, child), reused)``: the flattened
        row-major valid entries of ``child_row[stage_index]`` (or
        ``last_sel`` on the last stage, where ``child`` is ``None``) --
        ``cols[k]`` is the k-th entry's master combo column, ``child[k]``
        its child-layer row, and ``row_ptr`` the per-state segment offsets.
        Within each segment entries appear in ascending column order, i.e.
        master ranking order, which is what lets a segmented first-min
        reduction reproduce the dense ``argmin`` tie-break exactly.

        The skeleton is mbs-independent (child maps are forward state), so
        every candidate sharing this forward pass reuses it; ``reused``
        reports whether this call hit the cache (surfaced as
        ``SearchStats.backward_shared_hits``).
        """
        cached = self._backward_csr.get(stage_index)
        if cached is not None:
            return cached, True
        if last:
            rows_idx, cols = self.last_sel.nonzero()
            child = None
            num_rows = self.last_sel.shape[0]
        else:
            crow = self.child_row[stage_index]
            rows_idx, cols = (crow >= 0).nonzero()
            child = crow[rows_idx, cols]
            num_rows = crow.shape[0]
        counts = np.bincount(rows_idx, minlength=num_rows)
        row_ptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        cached = (row_ptr, cols, child)
        self._backward_csr[stage_index] = cached
        return cached, False


@hot_path
def compute_forward_layers(reqs: list[np.ndarray], caps_vec: list[np.ndarray],
                           clamp_active: list[bool], limit: int,
                           root_state: np.ndarray,
                           chunk_elems: int = FORWARD_CHUNK_ELEMS,
                           search_budget=None) -> ForwardLayers:
    """Forward reachability, one whole stage layer at a time.

    Starting from the (clamped) root, each layer's fitting combos are found
    with a broadcast compare chunked along the state axis (honouring the
    per-state ``limit`` truncation in master ranking order via a running
    count), every (state, combo) child is produced by one subtraction,
    clamped at the next stage's caps, and deduplicated through the packed
    int64 hash (:func:`dedup_states`).  Deduplicated children are exactly
    the states the recursion's memo would collapse.

    ``search_budget`` (any object with a ``tick()`` cancellation point, see
    :class:`~repro.core.budget.SearchBudget`) is ticked once per chunk so a
    deadline interrupts the pass between chunks; a partially-built pass
    propagates the exception and is never cached by the caller.
    """
    num_stages = len(reqs)
    num_slots = root_state.shape[0]
    weights = layer_pack_weights(root_state)
    states = root_state.reshape(1, -1)
    layers: list[np.ndarray] = []
    child_rows: list[np.ndarray | None] = [None] * num_stages
    last_sel: np.ndarray | None = None
    states_computed = 0
    dedup_hits = 0
    stage_nnz: dict[int, int] = {}
    for j in range(num_stages):
        layers.append(states)
        states_computed += states.shape[0]
        req = reqs[j]
        num_states, num_combos = states.shape[0], req.shape[0]
        last = j == num_stages - 1
        chunk = max(1, chunk_elems // max(1, num_combos * num_slots))
        sel_full = np.empty((num_states, num_combos), dtype=bool)
        child_chunks: list[np.ndarray] = []
        reqT = np.ascontiguousarray(req.T)
        for start in range(0, num_states, chunk):
            if search_budget is not None:
                search_budget.tick()
            block = states[start:start + chunk]
            # (chunk, M): which master combos fit which states, truncated to
            # the first `limit` fitting per state in master (ranking) order.
            # Accumulated slot by slot: each step is one contiguous 2-D
            # compare-and-AND, which beats materialising the (chunk, M,
            # slots) cube and reducing along its strided last axis.  The
            # boolean result is identical to `(req <= block).all(axis=2)`.
            if num_slots:
                fits = block[:, 0:1] >= reqT[0]
                for slot in range(1, num_slots):
                    fits &= block[:, slot:slot + 1] >= reqT[slot]
            else:
                fits = np.ones((block.shape[0], num_combos), dtype=bool)
            if (limit < num_combos
                    and int(fits.sum(axis=1).max(initial=0)) > limit):
                # Only pay the cumsum when some state actually has more
                # fitting combos than the truncation limit.  int32 halves
                # the running-count traffic (counts are bounded by the
                # combo count, nowhere near 2**31) with identical <= limit
                # comparisons.
                sel = fits & (np.cumsum(fits, axis=1,
                                        dtype=np.int32) <= limit)
            else:
                sel = fits
            sel_full[start:start + chunk] = sel
            if last:
                stage_nnz[j] = stage_nnz.get(j, 0) + int(np.count_nonzero(sel))
                continue
            rows, cols = sel.nonzero()
            stage_nnz[j] = stage_nnz.get(j, 0) + rows.shape[0]
            children = block[rows] - req[cols]
            if clamp_active[j + 1]:
                children = np.minimum(children, caps_vec[j + 1])
            child_chunks.append(children)
        if last:
            last_sel = sel_full
            break
        if child_chunks:
            children = (child_chunks[0] if len(child_chunks) == 1
                        else np.concatenate(child_chunks))
        else:
            children = np.zeros((0, num_slots), dtype=STATE_DTYPE)
        uniq, inverse = dedup_states(children, weights)
        dedup_hits += children.shape[0] - uniq.shape[0]
        # int32: child rows index the next layer (~1e4-1e5 states, nowhere
        # near 2**31), and this (N, M) map is the single biggest operand of
        # both the masked assignment below and every backward gather --
        # halving it halves that traffic with identical index semantics.
        child_row = np.full((num_states, num_combos), -1, dtype=np.int32)
        # Row-major assignment order matches the chunk-concatenated children.
        child_row[sel_full] = inverse
        child_rows[j] = child_row
        states = uniq
    return ForwardLayers(states=layers, child_row=child_rows,
                         last_sel=last_sel, states_computed=states_computed,
                         dedup_hits=dedup_hits, backward_nnz=stage_nnz)


#: Relative slack applied to the cost lower bounds so they stay admissible
#: under floating-point rounding: the bound recursions and the solver's
#: actual cost evaluation associate their adds/muls differently, so the two
#: can drift by a few ulps; 1e-12 of relative headroom (thousands of ulps)
#: dwarfs any chain of tens of IEEE-754 operations.  The straggler bound
#: needs no slack -- it is built from min/max alone, which are exact.
_BOUND_SLACK = 1.0 - 1e-12


@dataclass
class BudgetBoundTables:
    """Admissible per-(stage, row) lower bounds for the budget search.

    ``straggler_lb[j][row]`` bounds from below the *max stage compute time*
    of every solution the truncated search space admits for the pipeline
    suffix ``j..P-1`` starting from layer row ``row``; ``cost_lb[j][row]``
    bounds its *projected cost* the same way.  Both are monotone in the
    budget (they hold for every budget, binding or not), which is what
    makes them usable as straggler-loop convergence/infeasibility
    certificates (see ``DPSolver._solve_suffix``):

    * any suffix the straggler loop can discover has
      ``max_stage_time >= straggler_lb``, so the remaining budgets of
      iterations 2+ never exceed
      ``budget - rate * Nb * max(t_a, straggler_lb)``;
    * ``cost_lb > remaining_budget`` proves the budgeted suffix solve
      returns ``None`` -- every solution in the space costs more -- without
      running it (a budgeted solve only ever returns solutions that
      respect its budget, so certified infeasibility is outcome-identical
      to solving).

    ``+inf`` rows are infeasible suffixes (no combo chain completes), the
    same rows the engine's backward values mark infeasible.

    ``sync_lb[j][row]`` bounds the *max sync time* of every solution the
    same way (min over combo chains of the max sync along the chain; exact
    min/max arithmetic, like ``straggler_lb``).  It is folded into
    ``cost_lb`` -- the sync floor the bound previously dropped -- and kept
    here for the admissibility property suite.
    """

    straggler_lb: list[np.ndarray]
    cost_lb: list[np.ndarray]
    sync_lb: list[np.ndarray]


def compute_budget_bounds(forward: ForwardLayers,
                          tables: list[StageKernelTable],
                          num_microbatches: int,
                          search_budget=None) -> BudgetBoundTables:
    """One batched backward pass producing the budget-certificate bounds.

    Runs over the same (shared) forward layers the engine scores, one stage
    layer at a time.  Per (state, combo) candidate it propagates four
    admissible quantities and reduces each with ``min`` over the fitting
    combos:

    * ``slb``  -- min achievable max stage compute time
      (``min_c max(t_c, slb_child)``; exact, min/max only);
    * ``dec``  -- the *decomposable* cost bound
      ``min_c (rate_c * Nb * t_c + dec_child)``, admissible because any
      solution's projected time satisfies ``T >= Nb * t_i`` for every
      stage ``i``, hence ``cost = (sum_i rate_i) * T >= sum_i rate_i *
      Nb * t_i``;
    * ``rlb`` / ``sum_lb`` -- min achievable total cost rate / total
      compute-time sum;
    * ``mslb`` -- min achievable max sync time
      (``min_c max(sync_c, mslb_child)``; exact, min/max only).

    The final cost bound is the elementwise best of the decomposable bound
    and the *product* bound, each tightened by the sync floor the previous
    formulation dropped:

    * product: ``rlb * (sum_lb + (Nb-1) * slb + mslb)`` -- each factor is
      an independent minimum, and every solution's projected time is
      exactly ``sum + (Nb-1) * max + sync`` with ``sum >= sum_lb``,
      ``max >= slb``, ``sync >= mslb``, so the product lower-bounds every
      solution's ``rate * time`` (no longer discarding the sync term);
    * decomposable: ``dec + rlb * mslb`` -- any solution's projected time
      satisfies ``T >= Nb * t_i + sync`` for every stage ``i`` (``sum >=
      t_i``, ``max >= t_i``, so ``sum + (Nb-1) * max >= Nb * t_i``), hence
      ``cost = (sum_i rate_i) * T >= sum_i rate_i * Nb * t_i +
      (sum_i rate_i) * sync >= dec + rlb * mslb``.

    Both scaled by :data:`_BOUND_SLACK` for float admissibility.

    **Why sync folds in but egress does not.**  These bounds certify
    outcomes of the *DP solver's* budget recursion, whose projected cost is
    the compute-only ``rate * (sum + (Nb-1) * max + sync)``
    (``DPSolution.projected_cost``); sync is part of that model, so the
    fold above is admissible against every solution the recursion can
    return.  Egress (inter-zone traffic priced by
    ``SailorSimulator.communication_cost``) is *not* in the DP cost model
    -- it appears first at the planner's candidate gate, where
    ``SailorSimulator.cost_floor`` adds it exactly.  Folding an egress
    floor in here would over-bound relative to ``projected_cost`` and
    could certify-infeasible a suffix the recursion would have solved,
    changing chosen plans; the candidate-gate level is where egress
    already prunes admissibly.
    """
    nb = float(num_microbatches)
    nb1 = float(num_microbatches - 1)
    num_stages = len(tables)
    slb: list[np.ndarray] = [None] * num_stages
    dec: list[np.ndarray] = [None] * num_stages
    rlb: list[np.ndarray] = [None] * num_stages
    sum_lb: list[np.ndarray] = [None] * num_stages
    mslb: list[np.ndarray] = [None] * num_stages
    for j in range(num_stages - 1, -1, -1):
        if search_budget is not None:
            search_budget.tick()
        table = tables[j]
        rows = forward.states[j].shape[0]
        last = j == num_stages - 1
        if (table.req.shape[0] == 0
                or (not last and forward.states[j + 1].shape[0] == 0)):
            # Infeasible layer, exactly as the engine's backward pass
            # marks it: nothing can host this stage (or nothing survives
            # below it).
            infinite = np.full(rows, np.inf)
            slb[j] = infinite
            dec[j] = infinite
            rlb[j] = infinite
            sum_lb[j] = infinite
            mslb[j] = infinite
            continue
        t_a = table.compute[None, :]
        rate_a = table.rate[None, :]
        sync_a = table.sync[None, :]
        shape = (rows, table.req.shape[0])
        stage_cost = (table.rate * (nb * table.compute))[None, :]
        if last:
            s_mat = np.broadcast_to(t_a, shape)
            d_mat = np.broadcast_to(stage_cost, shape)
            r_mat = np.broadcast_to(rate_a, shape)
            u_mat = s_mat
            m_mat = np.broadcast_to(sync_a, shape)
            invalid = ~forward.last_sel
        else:
            child_row = forward.child_row[j]
            safe = np.where(child_row >= 0, child_row, 0)
            base = child_row < 0
            child_slb = slb[j + 1][safe]
            s_mat = np.maximum(t_a, child_slb)
            d_mat = stage_cost + dec[j + 1][safe]
            r_mat = rate_a + rlb[j + 1][safe]
            u_mat = t_a + sum_lb[j + 1][safe]
            m_mat = np.maximum(sync_a, mslb[j + 1][safe])
            invalid = base | np.isinf(child_slb)
        slb[j] = np.where(invalid, np.inf, s_mat).min(axis=1)
        dec[j] = np.where(invalid, np.inf, d_mat).min(axis=1)
        rlb[j] = np.where(invalid, np.inf, r_mat).min(axis=1)
        sum_lb[j] = np.where(invalid, np.inf, u_mat).min(axis=1)
        mslb[j] = np.where(invalid, np.inf, m_mat).min(axis=1)
    # Infeasible rows are pinned to +inf explicitly: with Nb == 1 the
    # product term would otherwise produce 0 * inf = NaN, and NaN compares
    # false everywhere -- silently disarming the certificates.  The sync
    # factors are masked the same way (inf * 0-rate and rate * inf-sync
    # would NaN too).
    cost_lb = []
    for j in range(num_stages):
        infeasible = np.isinf(slb[j])
        sync_floor = np.where(infeasible, 0.0, mslb[j])
        rlb_safe = np.where(infeasible, 0.0, rlb[j])
        product = rlb[j] * (sum_lb[j]
                            + nb1 * np.where(infeasible, 0.0, slb[j])
                            + sync_floor)
        decomposable = dec[j] + rlb_safe * sync_floor
        cost_lb.append(np.where(infeasible, np.inf,
                                np.maximum(decomposable, product)
                                * _BOUND_SLACK))
    return BudgetBoundTables(straggler_lb=slb, cost_lb=cost_lb, sync_lb=mslb)


def forward_signature(root_state: np.ndarray, reqs: list[np.ndarray],
                      caps_vec: list[np.ndarray], clamp_active: list[bool],
                      limit: int) -> tuple:
    """Cache key under which a forward pass may be shared across candidates.

    Two candidates with equal signatures run byte-identical forward passes:
    the key captures the clamped root, every stage's footprint matrix *in
    master ranking order* (so an mbs-dependent re-ranking changes the key),
    the truncation limit and the active suffix clamps.  Everything else the
    engine consumes (compute/sync/cost scalars) is backward-only.
    """
    return (
        root_state.tobytes(),
        limit,
        tuple((req.shape[0], req.tobytes()) for req in reqs),
        # Stage-0 caps are already baked into the (clamped) root state, so
        # only the child clamps (stages 1..P-1) discriminate forward passes.
        tuple(caps_vec[j].tobytes() if clamp_active[j] else b""
              for j in range(1, len(reqs))),
    )


class ResourceStateEngine:
    """Layered bottom-up DP over one root's array-encoded states.

    The memoized top-down recursion expands one ``(stage, state)`` node per
    Python call; profiles show that per-node interpreter cost -- not the
    arithmetic -- dominates planner latency.  This engine computes the
    *same* table the recursion memoises, but one pipeline stage at a time
    over the whole layer of reachable states:

    * **Forward pass** (:func:`compute_forward_layers`, shared across
      candidates through the search context's layer cache): reachability
      depends only on the root and the per-stage combo footprints, not on
      the microbatch size, so one :class:`ForwardLayers` serves every
      candidate with the same :func:`forward_signature`.
    * **Backward pass** (:meth:`run_backward`, per candidate): the last
      layer scores every fitting combo from the table's scalar arrays;
      every earlier layer combines its combo scalars with the child layer's
      ``(sum, max, sync, rate)`` quadruples in five elementwise array ops
      whose per-element operation order matches the scalar recursion
      exactly (IEEE-754 float64 in both), so the optima -- values *and*
      argmin tie-breaks (first minimum in master ranking order) -- are
      identical to the exhaustive recursion.

    Solutions are materialised lazily from the stored backpointers (combo
    argmin + child row), so only rows actually requested (the root, plus
    whatever the budget search's dominance probes touch) ever build
    ``StageAssignment`` objects.

    The engine covers the unconstrained objectives; budget-constrained
    solves thread their straggler loop through the solver, which batches
    each node's combo scan over these same per-layer arrays (see
    ``DPSolver._solve_budget_batched``) and uses the table to answer
    budget-dominance probes in O(1).
    """

    def __init__(self, codec: ResourceStateCodec,
                 tables: list[StageKernelTable], forward: ForwardLayers,
                 num_microbatches: int, minimize_cost: bool,
                 search_budget=None, shared_argmin: bool = True,
                 shared_argmin_max_density: float =
                 SHARED_ARGMIN_MAX_DENSITY,
                 fused_combine: bool = True) -> None:
        self.codec = codec
        #: Optional cooperative cancellation point (``tick()`` per layer in
        #: the backward sweep); None leaves the sweep uncancellable.
        self.search_budget = search_budget
        self.tables = tables
        self.forward = forward
        self.nb1 = float(num_microbatches - 1)
        self.minimize_cost = minimize_cost
        #: Score layers through the shared CSR skeleton
        #: (:meth:`ForwardLayers.backward_csr`) instead of dense (rows,
        #: combos) matrices; bit-identical by construction (same per-entry
        #: op chain, segment order = master ranking order), kept toggleable
        #: as the equivalence reference (``shared_backward_argmin``).
        self.shared_argmin = shared_argmin
        #: Per-layer density ceiling for the CSR route (see
        #: :data:`SHARED_ARGMIN_MAX_DENSITY`); 1.0 forces every layer
        #: through the shared kernel (the equivalence tests do).
        self.shared_argmin_max_density = shared_argmin_max_density
        #: Layers whose CSR skeleton was reused from the shared forward
        #: pass this backward sweep (-> SearchStats.backward_shared_hits).
        self.shared_skeleton_hits = 0
        #: Route big combine blocks through the fused workspace kernel
        #: (see :data:`FUSED_COMBINE_MIN_ELEMS`); bit-identical to the
        #: reference chains, kept toggleable for the equivalence suites
        #: (``DPSolverConfig.fused_combine``).
        self.fused_combine = fused_combine
        #: Layers whose combine was served by the fused workspace kernel
        #: this backward sweep (-> SearchStats.combine_fused_hits).
        self.combine_fused_hits = 0
        num_stages = len(tables)
        #: Backward results: per stage, the chosen combo per row and the
        #: optimum's (value, sum, max, sync, rate); value is +inf where the
        #: suffix is infeasible.  ``time_value`` keeps the projected
        #: iteration time even under the cost objective (the budget search
        #: needs the projected cost = rate * time).
        self.arg: list[np.ndarray] = [None] * num_stages
        self.value: list[np.ndarray] = [None] * num_stages
        self.time_value: list[np.ndarray] = [None] * num_stages
        self.sum_t: list[np.ndarray] = [None] * num_stages
        self.max_t: list[np.ndarray] = [None] * num_stages
        self.sync_t: list[np.ndarray] = [None] * num_stages
        self.rate: list[np.ndarray] = [None] * num_stages
        #: Dominance tables for the budget search, built lazily by
        #: :meth:`budget_tables`: per stage, every row's unconstrained
        #: projected cost and feasibility in one vectorized pass.
        self._cost_unc: list[np.ndarray | None] = [None] * num_stages
        self._feasible: list[np.ndarray | None] = [None] * num_stages

    # -- forward-pass views ---------------------------------------------------

    @property
    def states(self) -> list[np.ndarray]:
        return self.forward.states

    @property
    def child_row(self) -> list[np.ndarray | None]:
        return self.forward.child_row

    @property
    def states_computed(self) -> int:
        return self.forward.states_computed

    @property
    def dedup_hits(self) -> int:
        return self.forward.dedup_hits

    # -- passes --------------------------------------------------------------

    @hot_path
    def run_backward(self) -> None:
        """Backward optimisation over the (possibly shared) forward layers.

        Per layer, routes through the shared CSR kernel only when the
        layer is sparse enough for it to win (see
        :data:`SHARED_ARGMIN_MAX_DENSITY`); the two paths are bit-identical
        so the dispatch never changes a result.
        """
        budget = self.search_budget
        num_stages = len(self.tables)
        for j in range(num_stages - 1, -1, -1):
            if budget is not None:
                budget.tick()
            if self.shared_argmin and self._layer_is_sparse(j, num_stages):
                self._solve_layer_shared(j)
            else:
                self._solve_layer(j)

    def _layer_is_sparse(self, j: int, num_stages: int) -> bool:
        """Whether one layer clears the CSR route's density ceiling."""
        dense = (self.forward.states[j].shape[0]
                 * self.tables[j].req.shape[0])
        if dense == 0:
            return True  # both paths short-circuit to the infeasible form
        last = j == num_stages - 1
        nnz = self.forward.backward_nnz(j, last)
        return nnz <= self.shared_argmin_max_density * dense

    def _mark_layer_infeasible(self, j: int, rows: int) -> None:
        """Record a whole layer as infeasible (no combo chain completes).

        The same normal form both scoring paths emit for individually
        infeasible rows: ``value``/``time_value`` ``+inf``, backpointer 0,
        zeroed quadruples.  Consumers gate on feasibility before reading
        any of the finite fields (see :meth:`budget_tables`).
        """
        self.arg[j] = np.zeros(rows, dtype=np.int64)
        self.value[j] = np.full(rows, np.inf)
        self.time_value[j] = np.full(rows, np.inf)
        self.sum_t[j] = np.zeros(rows)
        self.max_t[j] = np.zeros(rows)
        self.sync_t[j] = np.zeros(rows)
        self.rate[j] = np.zeros(rows)

    # lint: disable=hot-loop-alloc -- every where/copy here is a row-sized
    # (|layer|) gather or output, not a (rows, combos) temporary; the
    # full-size passes were eliminated in PR 8 (in-place fused scoring) and
    # the equivalence suites pin the kernel bit-for-bit.
    @hot_path
    def _solve_layer(self, j: int) -> None:
        """Score every (state, combo) candidate of one layer and reduce.

        The elementwise operation order replicates the scalar recursion:
        ``sum = t_a + child_sum``, ``max = max(t_a, child_max)``,
        ``sync = max(sync_a, child_sync)``,
        ``value = sum + (Nb-1) * max + sync`` (times the summed cost rate
        under the cost objective), so values are bit-identical and
        ``argmin`` (first minimum) matches the recursion's strict-improvement
        scan over the same combo order.
        """
        table = self.tables[j]
        forward = self.forward
        last = j == len(self.tables) - 1
        rows = forward.states[j].shape[0]
        if (table.req.shape[0] == 0
                or (not last and forward.states[j + 1].shape[0] == 0)):
            # No combo can host this stage (or nothing survives below it):
            # the whole layer is infeasible, exactly as the recursion finds.
            self._mark_layer_infeasible(j, rows)
            return
        t_a = table.compute[None, :]
        sync_a = table.sync[None, :]
        rate_a = table.rate[None, :]
        shape = (rows, table.req.shape[0])
        # Fused-workspace dispatch (DPSolverConfig.fused_combine):
        # mid-band non-last layers gather with np.take into preallocated
        # per-footprint buffers instead of allocating fresh (rows, combos)
        # temporaries.  Same operand order, same IEEE op chain -- the
        # reference block below doubles as the out-of-band fast path and
        # the equivalence reference.
        elems = rows * table.req.shape[0]
        fused = (self.fused_combine and not last
                 and FUSED_COMBINE_MIN_ELEMS <= elems
                 <= FUSED_COMBINE_MAX_ELEMS)
        if last:
            sum_c = np.broadcast_to(table.compute[None, :], shape)
            max_c = sum_c
            sync_c = np.broadcast_to(table.sync[None, :], shape)
            rate_c = np.broadcast_to(table.rate[None, :], shape)
            time_v = table.compute + self.nb1 * table.compute + table.sync
            time_v = np.broadcast_to(time_v[None, :], shape)
            invalid = ~forward.last_sel
        elif fused:
            sum_c, max_c, sync_c, rate_c, time_v, invalid = (
                self._combine_dense_fused(j, t_a, sync_a, rate_a,
                                          forward.child_row[j]))
            self.combine_fused_hits += 1
        else:
            child_row = forward.child_row[j]
            # Transient per-candidate gather: retaining these (rows,
            # combos) intermediates on the shared forward layers was
            # measured slower at scale (see ForwardLayers._row_cols).
            # Every elementwise step below reuses its gather buffer
            # in place (same operand association as the expression form,
            # so results stay bit-identical) -- at scale these (rows,
            # combos) temporaries are memory-bandwidth bound and halving
            # the passes is a measurable share of the backward wall.
            base = child_row < 0
            safe = np.where(base, 0, child_row)
            sum_c = self.sum_t[j + 1][safe]
            np.add(t_a, sum_c, out=sum_c)
            max_c = self.max_t[j + 1][safe]
            np.maximum(t_a, max_c, out=max_c)
            sync_c = self.sync_t[j + 1][safe]
            np.maximum(sync_a, sync_c, out=sync_c)
            rate_c = self.rate[j + 1][safe]
            np.add(rate_a, rate_c, out=rate_c)
            # time_v = sum_c + self.nb1 * max_c + sync_c, left-associated.
            time_v = self.nb1 * max_c
            np.add(sum_c, time_v, out=time_v)
            np.add(time_v, sync_c, out=time_v)
            # isinf on the 1-D child values once, gathered -- not isinf on
            # the full (rows, combos) gather.
            invalid = np.isinf(self.value[j + 1])[safe]
            invalid |= base
        if self.minimize_cost:
            if fused:
                # Elementwise product through the cached-signature einsum
                # path, straight into workspace: einsum caches its parsed
                # contraction per signature string, and 'ij,ij->ij' is the
                # same IEEE multiply as ``rate_c * time_v``.
                scored = np.einsum(
                    "ij,ij->ij", rate_c, time_v,
                    out=self.forward.combine_workspace(
                        "scored", time_v.size).reshape(shape))
            else:
                scored = rate_c * time_v
        elif last:
            scored = time_v.copy()  # time_v is a read-only broadcast view
        else:
            # Masking time_v in place is safe: the entries the mask touches
            # are exactly the ones the feasibility gate below never reads.
            scored = time_v
        scored[invalid] = np.inf
        arg = np.argmin(scored, axis=1)
        take = np.arange(rows)
        value = scored[take, arg]
        # Normal form for infeasible rows (all entries invalid): argmin of
        # an all-inf row is already 0; the gathered quadruples would be
        # whatever column 0 combined to, which nothing may read -- pin them
        # to 0 so both scoring paths emit identical arrays everywhere and
        # feasibility-gated consumers (see budget_tables) stay NaN-free.
        feasible = np.isfinite(value)
        self.arg[j] = arg
        self.value[j] = value
        # Equivalent to gathering np.where(invalid, inf, time_v): a feasible
        # row's argmin entry is never invalid (it scored finite), and an
        # infeasible row is pinned to inf either way -- so the 1-D gate
        # replaces another full (rows, combos) where pass.
        self.time_value[j] = np.where(feasible, time_v[take, arg], np.inf)
        self.sum_t[j] = np.where(feasible, sum_c[take, arg], 0.0)
        self.max_t[j] = np.where(feasible, max_c[take, arg], 0.0)
        self.sync_t[j] = np.where(feasible, sync_c[take, arg], 0.0)
        self.rate[j] = np.where(feasible, rate_c[take, arg], 0.0)

    # lint: disable=hot-loop-alloc -- the whole point: every gather lands
    # in a named grow-only workspace buffer via np.take(..., out=); the
    # only fresh allocation is the 1-D row-sized isinf input.
    @hot_path
    def _combine_dense_fused(self, j: int, t_a: np.ndarray,
                             sync_a: np.ndarray, rate_a: np.ndarray,
                             child_row: np.ndarray) -> tuple:
        """Fused dense combine of one non-last layer, in workspace.

        Replicates the reference block of :meth:`_solve_layer` bit for
        bit: identical operand order and IEEE op chain, with the gathers
        routed through ``np.take(..., mode="clip", out=)`` into the
        per-footprint buffers of :meth:`ForwardLayers.combine_workspace`
        instead of fancy-index allocations.  ``mode="clip"`` maps the -1
        sentinel (the only negative value in ``child_row``) to index 0 --
        exactly the ``np.where(child_row < 0, 0, child_row)`` the
        reference gathers through, without ever materialising that
        (rows, combos) int64 index matrix: per-op timing at the 1024-GPU
        point showed the explicit ``safe`` buffer cost more in L2 traffic
        (one streaming write plus five re-reads of a multi-MB matrix)
        than every elementwise ``out=`` saving combined.  Gathering
        ``isinf`` of the 1-D child values commutes with the gather
        itself.
        """
        ws = self.forward.combine_workspace
        shape = child_row.shape
        n = child_row.size
        sum_c = np.take(self.sum_t[j + 1], child_row, mode="clip",
                        out=ws("sum", n).reshape(shape))
        np.add(t_a, sum_c, out=sum_c)
        max_c = np.take(self.max_t[j + 1], child_row, mode="clip",
                        out=ws("max", n).reshape(shape))
        np.maximum(t_a, max_c, out=max_c)
        sync_c = np.take(self.sync_t[j + 1], child_row, mode="clip",
                         out=ws("sync", n).reshape(shape))
        np.maximum(sync_a, sync_c, out=sync_c)
        rate_c = np.take(self.rate[j + 1], child_row, mode="clip",
                         out=ws("rate", n).reshape(shape))
        np.add(rate_a, rate_c, out=rate_c)
        # time_v = sum_c + self.nb1 * max_c + sync_c, left-associated
        # (scalar multiply commutes bitwise).
        time_v = np.multiply(max_c, self.nb1,
                             out=ws("time", n).reshape(shape))
        np.add(sum_c, time_v, out=time_v)
        np.add(time_v, sync_c, out=time_v)
        invalid = np.take(np.isinf(self.value[j + 1]), child_row,
                          mode="clip",
                          out=ws("invalid", n, bool).reshape(shape))
        base = np.less(child_row, 0,
                       out=ws("base", n, bool).reshape(shape))
        np.logical_or(invalid, base, out=invalid)
        return sum_c, max_c, sync_c, rate_c, time_v, invalid

    # lint: disable=hot-loop-alloc -- operates on nnz-sized CSR entry
    # vectors (already density-gated far below the dense product) and
    # row-sized outputs; no (rows, combos) temporary exists on this path.
    @hot_path
    def _solve_layer_shared(self, j: int) -> None:
        """Score one layer through the shared CSR skeleton.

        Same per-entry operation chain as :meth:`_solve_layer`, evaluated
        only on the valid (state, combo) entries (at most the truncation
        limit per state) instead of the dense (rows, combos) product, with
        the layer reduction as a segmented first-min: ``minimum.reduceat``
        per row segment, then the first flat index attaining the segment
        minimum.  Segment entries are in master ranking order
        (:meth:`ForwardLayers.backward_csr`), so the tie-break is the dense
        ``argmin``'s first-minimum, bit for bit.  Infeasible rows (empty
        segment, or every entry's child infeasible) take the shared normal
        form of :meth:`_mark_layer_infeasible`.
        """
        table = self.tables[j]
        forward = self.forward
        last = j == len(self.tables) - 1
        rows = forward.states[j].shape[0]
        if (table.req.shape[0] == 0
                or (not last and forward.states[j + 1].shape[0] == 0)):
            self._mark_layer_infeasible(j, rows)
            return
        (row_ptr, cols, child), reused = forward.backward_csr(j, last)
        self.shared_skeleton_hits += reused
        nnz = cols.shape[0]
        if nnz == 0:
            self._mark_layer_infeasible(j, rows)
            return
        # Fused-workspace dispatch, as in _solve_layer: mid-band non-last
        # layers run the same per-entry chain through np.take gathers into
        # the shared per-footprint buffers; the reference block stays as
        # the out-of-band fast path and the equivalence reference.
        fused = (self.fused_combine and not last
                 and FUSED_COMBINE_MIN_ELEMS <= nnz
                 <= FUSED_COMBINE_MAX_ELEMS)
        if fused:
            ws = forward.combine_workspace
            t_a = np.take(table.compute, cols, out=ws("ta", nnz))
            sync_a = np.take(table.sync, cols, out=ws("sync_a", nnz))
            rate_a = np.take(table.rate, cols, out=ws("rate_a", nnz))
            sum_e = np.take(self.sum_t[j + 1], child, out=ws("sum", nnz))
            np.add(t_a, sum_e, out=sum_e)
            max_e = np.take(self.max_t[j + 1], child, out=ws("max", nnz))
            np.maximum(t_a, max_e, out=max_e)
            sync_e = np.take(self.sync_t[j + 1], child,
                             out=ws("sync", nnz))
            np.maximum(sync_a, sync_e, out=sync_e)
            rate_e = np.take(self.rate[j + 1], child, out=ws("rate", nnz))
            np.add(rate_a, rate_e, out=rate_e)
            # time_e = sum_e + self.nb1 * max_e + sync_e, left-associated
            # (scalar multiply commutes bitwise).
            time_e = np.multiply(max_e, self.nb1, out=ws("time", nnz))
            np.add(sum_e, time_e, out=time_e)
            np.add(time_e, sync_e, out=time_e)
            # isinf of the 1-D child values gathered -- commutes with the
            # gather, so value-identical to isinf(value[child]).
            invalid_e = np.take(np.isinf(self.value[j + 1]), child,
                                out=ws("invalid", nnz, bool))
            self.combine_fused_hits += 1
        else:
            t_a = table.compute[cols]
            sync_a = table.sync[cols]
            rate_a = table.rate[cols]
            if last:
                sum_e = t_a
                max_e = t_a
                sync_e = sync_a
                rate_e = rate_a
                time_e = t_a + self.nb1 * t_a + sync_a
                invalid_e = None
            else:
                sum_e = t_a + self.sum_t[j + 1][child]
                max_e = np.maximum(t_a, self.max_t[j + 1][child])
                sync_e = np.maximum(sync_a, self.sync_t[j + 1][child])
                rate_e = rate_a + self.rate[j + 1][child]
                time_e = sum_e + self.nb1 * max_e + sync_e
                invalid_e = np.isinf(self.value[j + 1][child])
        if self.minimize_cost:
            if fused:
                # Cached-signature einsum product, straight into workspace
                # (same IEEE multiply as ``rate_e * time_e``).
                scored_e = np.einsum("i,i->i", rate_e, time_e,
                                     out=ws("scored", nnz))
            else:
                scored_e = rate_e * time_e
        else:
            scored_e = time_e
        if invalid_e is not None:
            if fused:
                # In place: under the cost objective ``scored_e`` owns its
                # buffer; under throughput it aliases ``time_e``, which is
                # safe -- a feasible row's selected entry scored finite
                # (never masked) and an infeasible row's time is pinned to
                # +inf by the feasibility gate below either way.
                scored_e[invalid_e] = np.inf
            else:
                scored_e = np.where(invalid_e, np.inf, scored_e)
        starts = row_ptr[:-1]
        counts = row_ptr[1:] - starts
        nonempty = counts > 0
        # reduceat rejects start == len and treats empty segments as a
        # 1-element gather; clamp, reduce, then overwrite the empty rows.
        safe_starts = np.minimum(starts, nnz - 1)
        seg_min = np.minimum.reduceat(scored_e, safe_starts)
        value = np.where(nonempty, seg_min, np.inf)
        is_min = scored_e == np.repeat(value, counts)
        first = np.minimum.reduceat(
            np.where(is_min, np.arange(nnz), nnz), safe_starts)
        feasible = np.isfinite(value)
        sel = np.where(feasible, first, 0)
        self.arg[j] = np.where(feasible, cols[sel], 0)
        self.value[j] = value
        self.time_value[j] = np.where(feasible, time_e[sel], np.inf)
        self.sum_t[j] = np.where(feasible, sum_e[sel], 0.0)
        self.max_t[j] = np.where(feasible, max_e[sel], 0.0)
        self.sync_t[j] = np.where(feasible, sync_e[sel], 0.0)
        self.rate[j] = np.where(feasible, rate_e[sel], 0.0)

    # -- lookups -------------------------------------------------------------

    def row_for_key(self, stage_index: int, key: bytes) -> int | None:
        """Row index of an encoded state in one layer, if reachable."""
        return self.forward.row_for_key(stage_index, key)

    def feasible(self, stage_index: int, row: int) -> bool:
        return not math.isinf(self.value[stage_index][row])

    def projected_cost(self, stage_index: int, row: int) -> float:
        """``cost_rate * projected_iteration_time`` of the row's optimum."""
        return float(self.rate[stage_index][row]
                     * self.time_value[stage_index][row])

    def budget_tables(self, stage_index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(unconstrained projected cost, feasibility)`` of a whole layer.

        The budget search's dominance probes touch many rows of one layer;
        one vectorized ``rate * time_value`` (elementwise, so per-row
        bit-identical to :meth:`projected_cost`) plus one ``isfinite``
        replaces the per-row scalar arithmetic.  Built lazily -- the
        unconstrained objectives never need it.
        """
        cost = self._cost_unc[stage_index]
        if cost is None:
            feasible = np.isfinite(self.value[stage_index])
            # Infeasible rows hold the (0 rate, +inf time) normal form whose
            # product is NaN -- pin them to +inf; only feasible entries are
            # ever compared against budgets.
            with np.errstate(invalid="ignore"):
                cost = np.where(feasible,
                                self.rate[stage_index]
                                * self.time_value[stage_index], np.inf)
            self._cost_unc[stage_index] = cost
            self._feasible[stage_index] = feasible
        return cost, self._feasible[stage_index]

    def backpointer(self, stage_index: int, row: int) -> tuple[int, int]:
        """(combo index, child row) of the row's optimum; child row is -1
        on the last stage."""
        combo = int(self.arg[stage_index][row])
        if stage_index == len(self.tables) - 1:
            return combo, -1
        return combo, int(self.forward.child_row[stage_index][row, combo])
