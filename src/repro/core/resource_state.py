"""Array-encoded DP resource states: the planner's resource-state engine.

Motivation
----------
The DP solver's resource states were canonically ``tuple(sorted(((zone,
node_type), count), ...))`` with exhausted pairs dropped.  Everything the
recursion does to a state -- subtract a combo's whole-node footprint, test
which master combos still fit, clamp at per-stage caps, hash it into the
memo -- walked those nested tuples in interpreted Python, and ``make
profile`` showed exactly those walks (``_combos_for_state`` fit-scans and
``_subtract_state``) dominating planner latency once the evaluation layer
was vectorized.  This module replaces the encoding wholesale: a
:class:`ResourceStateCodec` maps states to fixed-width NumPy count vectors
(one slot per root (zone, node type) pair) and provides vectorized
subtract / fits / clamp kernels plus per-stage precomputed combo tables
(:class:`StageComboTable`), so the per-state work is a handful of NumPy
calls over *all* combos at once instead of a Python loop per combo.

Bijection contract
------------------
A codec is built from one *root* resource pool (the sorted canonical tuple
the solver receives).  Within the state space reachable from that root --
subtract whole-node footprints, clamp at per-slot caps, both of which only
ever *shrink* counts -- the fixed-width encoding is a bijection with the
canonical tuple form:

* the slots are the root's sorted ``(zone, node type)`` keys, so no
  reachable state can hold a key outside the slot set;
* a pair the canonical form dropped (count exhausted) is exactly a zero
  slot in the vector form, so ``decode(encode(t)) == t`` and
  ``encode(decode(v)) == v`` for every reachable state;
* therefore :meth:`ResourceStateCodec.state_key` (the raw bytes of the
  int64 count vector) collapses exactly the same states the canonical
  tuple did -- memo and combo-cache keys are unchanged *as sets*, only
  cheaper to build and hash.

That bijection is what keeps plans byte-identical across the tuple ->
array refactor: the DP explores the same states in the same order; only
the encoding of the keys changed.  ``tests/test_resource_state.py`` checks
the round-trip and kernel properties directly, and the solver equivalence
suites (``tests/test_dp_solver.py``, ``tests/test_planner.py``) check the
end-to-end consequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Canonical resource state: sorted ``(((zone, node_type), count), ...)``
#: (re-exported by :mod:`repro.core.search_cache`; duplicated here to avoid
#: an import cycle).
ResourceKey = tuple[tuple[tuple[str, str], int], ...]

#: dtype of every encoded state; fixed so ``state_key`` widths never vary
#: within one codec.
STATE_DTYPE = np.int64


@dataclass
class StageComboTable:
    """One stage's master combo list, footprints pre-packed for the kernels.

    ``entries`` is the untruncated, ranking-sorted master list the shared
    :class:`~repro.core.search_cache.PlannerSearchContext` built (mutable
    ``[placements, footprint, lazy StageAssignment, footprint items, stage
    compute time]`` rows); ``req[i]`` is ``entries[i]``'s whole-node
    footprint as a count vector aligned with the codec's slots, and
    ``pairs[i]`` the same footprint as sparse ``(slot, used)`` items for
    the scalar fit-scan (small pools, where a Python loop beats the NumPy
    call overhead).
    """

    entries: list
    req: np.ndarray | None  # (num_combos, num_slots) int64; None on the
                            # scalar path (see ResourceStateCodec.combo_pairs)
    pairs: list             # [(entry, ((slot, used), ...)), ...]


class ResourceStateCodec:
    """Bijective fixed-width array encoding of one root's resource states.

    One codec serves one :meth:`DPSolver.solve` call (the slot layout is
    the root's sorted key order, so a different root needs a new codec).
    See the module docstring for the bijection contract.
    """

    __slots__ = ("keys", "slot", "num_slots", "root_state")

    def __init__(self, root: ResourceKey) -> None:
        self.keys: tuple[tuple[str, str], ...] = tuple(key for key, _ in root)
        self.slot: dict[tuple[str, str], int] = {
            key: i for i, key in enumerate(self.keys)}
        self.num_slots = len(self.keys)
        self.root_state = np.array([count for _, count in root],
                                   dtype=STATE_DTYPE)

    # -- tuple <-> vector bijection -----------------------------------------

    def encode(self, resources: ResourceKey) -> np.ndarray:
        """Canonical tuple form -> count vector (zero slots for dropped pairs)."""
        state = np.zeros(self.num_slots, dtype=STATE_DTYPE)
        for key, count in resources:
            state[self.slot[key]] = count
        return state

    def decode(self, state: np.ndarray) -> ResourceKey:
        """Count vector -> canonical tuple form (zero slots are dropped).

        The slot order *is* the canonical sorted order, so no re-sort is
        needed for the round-trip to hold.
        """
        return tuple((key, count)
                     for key, count in zip(self.keys, state.tolist())
                     if count)

    @staticmethod
    def state_key(state: np.ndarray) -> bytes:
        """Hashable memo key: the raw bytes of the count vector.

        Fixed dtype + fixed width make this injective over one codec's
        states, i.e. exactly as discriminating as the canonical tuple.
        """
        return state.tobytes()

    # -- kernels -------------------------------------------------------------

    def caps_vector(self, caps: dict[str, int]) -> np.ndarray:
        """Per-node-type caps dict -> per-slot cap vector."""
        return np.array([caps.get(node_type, 0)
                         for _, node_type in self.keys], dtype=STATE_DTYPE)

    @staticmethod
    def clamp(state: np.ndarray, caps: np.ndarray) -> np.ndarray:
        """Clamp a state at per-slot caps (returns the input when no-op)."""
        if (state <= caps).all():
            return state
        return np.minimum(state, caps)

    @staticmethod
    def subtract(state: np.ndarray, needs: np.ndarray) -> np.ndarray | None:
        """Remove one footprint; ``None`` when some slot goes negative."""
        out = state - needs
        if (out < 0).any():
            return None
        return out

    def combo_table(self, entries: list) -> StageComboTable:
        """Pack a master combo list's footprints into a fit-test matrix."""
        req = np.zeros((len(entries), self.num_slots), dtype=STATE_DTYPE)
        slot = self.slot
        pairs = []
        for row, entry in enumerate(entries):
            for node_key, used in entry[3]:
                req[row, slot[node_key]] = used
            pairs.append((entry, tuple((slot[node_key], used)
                                       for node_key, used in entry[3])))
        return StageComboTable(entries=entries, req=req, pairs=pairs)

    def combo_pairs(self, entries: list) -> StageComboTable:
        """Scalar-path variant of :meth:`combo_table`: sparse footprints
        only, no fit-test matrix (tiny pools never run the vector kernels,
        so building the matrix would be pure overhead)."""
        slot = self.slot
        pairs = [(entry, tuple((slot[node_key], used)
                               for node_key, used in entry[3]))
                 for entry in entries]
        return StageComboTable(entries=entries, req=None, pairs=pairs)

    @staticmethod
    def fitting_combos(table: StageComboTable, state: np.ndarray,
                       limit: int) -> np.ndarray:
        """Indices of the first ``limit`` master combos that fit ``state``.

        One vectorized comparison over the whole table replaces the
        per-combo Python fit scan; master order (the ranking order) is
        preserved, so truncating at ``limit`` selects the same combos the
        scalar scan did.
        """
        idx = (table.req <= state).all(axis=1).nonzero()[0]
        if idx.size > limit:
            return idx[:limit]
        return idx


@dataclass
class StageKernelTable(StageComboTable):
    """A combo table extended with the per-combo scalars the engine batches.

    ``compute[i]`` / ``sync[i]`` / ``rate[i]`` are ``entries[i]``'s stage
    compute time, gradient-sync time and cost rate -- exactly the scalars a
    lazily-built ``StageAssignment`` would carry, gathered eagerly so the
    backward pass can score every (state, combo) candidate in one array
    expression.
    """

    compute: np.ndarray = None  # (M,) float64
    sync: np.ndarray = None     # (M,)
    rate: np.ndarray = None     # (M,)


class ResourceStateEngine:
    """Layered bottom-up DP over one root's array-encoded states.

    The memoized top-down recursion expands one ``(stage, state)`` node per
    Python call; profiles show that per-node interpreter cost -- not the
    arithmetic -- dominates planner latency.  This engine computes the
    *same* table the recursion memoises, but one pipeline stage at a time
    over the whole layer of reachable states:

    * **Forward pass**: starting from the (clamped) root, each layer's
      fitting combos are found with one ``(N, M, S)`` broadcast compare
      (honouring the per-state ``max_combos_per_stage`` truncation in
      master-ranking order via a running count), every (state, combo) child
      is produced by one subtraction, clamped at the next stage's caps, and
      deduplicated with ``np.unique`` -- which also yields the child-row
      index map the backward pass gathers through.  Deduplicated children
      are exactly the states the recursion's memo would collapse.
    * **Backward pass**: the last layer scores every fitting combo from the
      table's scalar arrays; every earlier layer combines its combo scalars
      with the child layer's ``(sum, max, sync, rate)`` quadruples in five
      elementwise array ops whose per-element operation order matches the
      scalar recursion exactly (IEEE-754 float64 in both), so the optima --
      values *and* argmin tie-breaks (first minimum in master ranking
      order) -- are identical to the exhaustive recursion.

    Solutions are materialised lazily from the stored backpointers (combo
    argmin + child row), so only rows actually requested (the root, plus
    whatever the budget search's dominance probes touch) ever build
    ``StageAssignment`` objects.

    The engine covers the unconstrained objectives; budget-constrained
    solves keep the straggler-approximation recursion (whose remaining-
    budget threading is inherently top-down) and use this table to answer
    their budget-dominance probes in O(1).
    """

    def __init__(self, codec: ResourceStateCodec,
                 tables: list[StageKernelTable],
                 caps_vec: list[np.ndarray], clamp_active: list[bool],
                 num_microbatches: int, minimize_cost: bool,
                 limit: int) -> None:
        self.codec = codec
        self.tables = tables
        self.caps_vec = caps_vec
        self.clamp_active = clamp_active
        self.nb1 = float(num_microbatches - 1)
        self.minimize_cost = minimize_cost
        self.limit = limit
        num_stages = len(tables)
        #: Forward results: per stage, the unique reachable states and a
        #: bytes -> row index for point lookups.
        self.states: list[np.ndarray] = [None] * num_stages
        self.row_of: list[dict[bytes, int]] = [None] * num_stages
        #: (N, M) child-row map; -1 where the combo does not fit the state.
        self.child_row: list[np.ndarray] = [None] * num_stages
        #: Backward results: per stage, the chosen combo per row and the
        #: optimum's (value, sum, max, sync, rate); value is +inf where the
        #: suffix is infeasible.  ``time_value`` keeps the projected
        #: iteration time even under the cost objective (the budget search
        #: needs the projected cost = rate * time).
        self.arg: list[np.ndarray] = [None] * num_stages
        self.value: list[np.ndarray] = [None] * num_stages
        self.time_value: list[np.ndarray] = [None] * num_stages
        self.sum_t: list[np.ndarray] = [None] * num_stages
        self.max_t: list[np.ndarray] = [None] * num_stages
        self.sync_t: list[np.ndarray] = [None] * num_stages
        self.rate: list[np.ndarray] = [None] * num_stages
        #: Work counters, reported through the solver's SearchStats.
        self.states_computed = 0
        self.dedup_hits = 0

    # -- passes --------------------------------------------------------------

    def run(self, root_state: np.ndarray) -> None:
        """Forward reachability then backward optimisation, all layers."""
        num_stages = len(self.tables)
        states = root_state.reshape(1, -1)
        sels: list[np.ndarray] = []
        for j in range(num_stages):
            self.states[j] = states
            self.states_computed += states.shape[0]
            table = self.tables[j]
            # (N, M): which master combos fit which states, truncated to the
            # first `limit` fitting per state in master (ranking) order.
            fits = (table.req[None, :, :] <= states[:, None, :]).all(axis=2)
            if (self.limit < fits.shape[1]
                    and int(fits.sum(axis=1).max(initial=0)) > self.limit):
                # Only pay the (N, M) cumsum when some state actually has
                # more fitting combos than the truncation limit.
                sel = fits & (np.cumsum(fits, axis=1) <= self.limit)
            else:
                sel = fits
            sels.append(sel)
            if j == num_stages - 1:
                break
            rows, cols = sel.nonzero()
            children = states[rows] - table.req[cols]
            if self.clamp_active[j + 1]:
                children = np.minimum(children, self.caps_vec[j + 1])
            uniq, inverse = np.unique(children, axis=0, return_inverse=True)
            self.dedup_hits += children.shape[0] - uniq.shape[0]
            child_row = np.full(sel.shape, -1, dtype=np.int64)
            child_row[rows, cols] = inverse
            self.child_row[j] = child_row
            states = uniq

        for j in range(num_stages - 1, -1, -1):
            self._solve_layer(j, sels[j])

    def _solve_layer(self, j: int, sel: np.ndarray) -> None:
        """Score every (state, combo) candidate of one layer and reduce.

        The elementwise operation order replicates the scalar recursion:
        ``sum = t_a + child_sum``, ``max = max(t_a, child_max)``,
        ``sync = max(sync_a, child_sync)``,
        ``value = sum + (Nb-1) * max + sync`` (times the summed cost rate
        under the cost objective), so values are bit-identical and
        ``argmin`` (first minimum) matches the recursion's strict-improvement
        scan over the same combo order.
        """
        table = self.tables[j]
        last = j == len(self.tables) - 1
        rows = sel.shape[0]
        if (table.req.shape[0] == 0
                or (not last and self.states[j + 1].shape[0] == 0)):
            # No combo can host this stage (or nothing survives below it):
            # the whole layer is infeasible, exactly as the recursion finds.
            self.arg[j] = np.zeros(rows, dtype=np.int64)
            self.value[j] = np.full(rows, np.inf)
            self.time_value[j] = np.full(rows, np.inf)
            self.sum_t[j] = np.zeros(rows)
            self.max_t[j] = np.zeros(rows)
            self.sync_t[j] = np.zeros(rows)
            self.rate[j] = np.zeros(rows)
            return
        t_a = table.compute[None, :]
        sync_a = table.sync[None, :]
        rate_a = table.rate[None, :]
        if last:
            sum_c = np.broadcast_to(table.compute[None, :], sel.shape)
            max_c = sum_c
            sync_c = np.broadcast_to(table.sync[None, :], sel.shape)
            rate_c = np.broadcast_to(table.rate[None, :], sel.shape)
            time_v = table.compute + self.nb1 * table.compute + table.sync
            time_v = np.broadcast_to(time_v[None, :], sel.shape)
            invalid = ~sel
        else:
            child_row = self.child_row[j]
            safe = np.where(child_row >= 0, child_row, 0)
            sum_c = t_a + self.sum_t[j + 1][safe]
            max_c = np.maximum(t_a, self.max_t[j + 1][safe])
            sync_c = np.maximum(sync_a, self.sync_t[j + 1][safe])
            rate_c = rate_a + self.rate[j + 1][safe]
            time_v = sum_c + self.nb1 * max_c + sync_c
            invalid = (child_row < 0) | np.isinf(self.value[j + 1][safe])
        if self.minimize_cost:
            scored = rate_c * time_v
        else:
            scored = time_v
        scored = np.where(invalid, np.inf, scored)
        arg = np.argmin(scored, axis=1)
        take = np.arange(sel.shape[0])
        self.arg[j] = arg
        self.value[j] = scored[take, arg]
        self.time_value[j] = np.where(invalid, np.inf, time_v)[take, arg]
        self.sum_t[j] = sum_c[take, arg]
        self.max_t[j] = max_c[take, arg]
        self.sync_t[j] = sync_c[take, arg]
        self.rate[j] = rate_c[take, arg]

    # -- lookups -------------------------------------------------------------

    def row_for_key(self, stage_index: int, key: bytes) -> int | None:
        """Row index of an encoded state in one layer, if reachable.

        The key -> row dicts are built lazily: only the budget search's
        dominance probes need them, so unconstrained solves never pay for
        the construction.
        """
        table = self.row_of[stage_index]
        if table is None:
            states = self.states[stage_index]
            blob = states.tobytes()
            width = states.shape[1] * states.itemsize
            table = {blob[r * width:(r + 1) * width]: r
                     for r in range(states.shape[0])}
            self.row_of[stage_index] = table
        return table.get(key)

    def feasible(self, stage_index: int, row: int) -> bool:
        return not math.isinf(self.value[stage_index][row])

    def projected_cost(self, stage_index: int, row: int) -> float:
        """``cost_rate * projected_iteration_time`` of the row's optimum."""
        return float(self.rate[stage_index][row]
                     * self.time_value[stage_index][row])

    def backpointer(self, stage_index: int, row: int) -> tuple[int, int]:
        """(combo index, child row) of the row's optimum; child row is -1
        on the last stage."""
        combo = int(self.arg[stage_index][row])
        if stage_index == len(self.tables) - 1:
            return combo, -1
        return combo, int(self.child_row[stage_index][row, combo])
