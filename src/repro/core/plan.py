"""Plan datatypes.

A Sailor *plan* couples a resource allocation with a job parallelization
plan (paper section 4.2): the number of pipeline stages ``P``, the data
parallel degree ``D`` shared by all stages, and for every stage the ``D``
replicas, each a ``(GPU type, tensor-parallel degree, zone)`` tuple, plus a
microbatch size.  These datatypes are shared by the Sailor planner, the
baseline planners, the simulator and the runtime.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields

from repro.hardware.nodes import NodeSpec, get_node_type
from repro.models.partition import LayerPartition, uniform_partition
from repro.models.spec import TrainingJobSpec


@dataclass(frozen=True)
class StageReplica:
    """One data-parallel replica of one pipeline stage.

    A replica occupies ``tensor_parallel`` GPUs of a single node of
    ``node_type`` in ``zone`` (heuristic H1 keeps tensor parallelism within
    one node, so a replica never spans nodes).
    """

    node_type: str
    tensor_parallel: int
    zone: str

    def __post_init__(self) -> None:
        spec = get_node_type(self.node_type)
        if self.tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        if self.tensor_parallel > spec.gpus_per_node:
            raise ValueError(
                f"tensor parallelism {self.tensor_parallel} exceeds the "
                f"{spec.gpus_per_node} GPUs of a {self.node_type} node (H1)")

    @property
    def node_spec(self) -> NodeSpec:
        """The node type spec of this replica."""
        return get_node_type(self.node_type)

    @property
    def gpu_type(self) -> str:
        """GPU type name of this replica."""
        return self.node_spec.gpu.name

    @property
    def num_gpus(self) -> int:
        """GPUs used by this replica (== tensor-parallel degree)."""
        return self.tensor_parallel


@dataclass
class StageConfig:
    """One pipeline stage: its layers and its data-parallel replicas."""

    partition: LayerPartition
    replicas: list[StageReplica]

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a stage needs at least one replica")

    @property
    def stage_index(self) -> int:
        """0-based pipeline position of the stage."""
        return self.partition.stage_index

    @property
    def data_parallel(self) -> int:
        """Number of data-parallel replicas of this stage."""
        return len(self.replicas)

    @property
    def num_gpus(self) -> int:
        """GPUs used by all replicas of this stage."""
        return sum(r.num_gpus for r in self.replicas)

    @property
    def zones(self) -> list[str]:
        """Zones the stage's replicas live in, sorted and de-duplicated."""
        return sorted({r.zone for r in self.replicas})

    @property
    def gpu_types(self) -> list[str]:
        """GPU types used by the stage, sorted and de-duplicated."""
        return sorted({r.gpu_type for r in self.replicas})

    def tensor_parallel_degrees(self) -> list[int]:
        """Tensor-parallel degree of every replica (heterogeneity allowed)."""
        return [r.tensor_parallel for r in self.replicas]


@dataclass
class ResourceAllocation:
    """Whole nodes used by a plan, grouped by zone and node type."""

    nodes: dict[tuple[str, str], int] = field(default_factory=dict)

    def add(self, zone: str, node_type: str, count: int = 1) -> None:
        """Add ``count`` nodes of a type in a zone."""
        if count < 0:
            raise ValueError("count must be non-negative")
        key = (zone, node_type)
        self.nodes[key] = self.nodes.get(key, 0) + count

    def node_count(self, zone: str, node_type: str) -> int:
        """Allocated node count for one (zone, node type) pair."""
        return self.nodes.get((zone, node_type), 0)

    def total_nodes(self) -> int:
        """Total allocated nodes."""
        return sum(self.nodes.values())

    def total_gpus(self) -> int:
        """Total allocated GPUs."""
        return sum(count * get_node_type(node_type).gpus_per_node
                   for (_, node_type), count in self.nodes.items())

    def gpus_by_type(self) -> dict[str, int]:
        """Allocated GPUs keyed by GPU type."""
        out: dict[str, int] = {}
        for (_, node_type), count in self.nodes.items():
            spec = get_node_type(node_type)
            out[spec.gpu.name] = out.get(spec.gpu.name, 0) + count * spec.gpus_per_node
        return out

    def gpus_by_zone_and_type(self) -> dict[tuple[str, str], int]:
        """Allocated GPUs keyed by (zone, GPU type)."""
        out: dict[tuple[str, str], int] = {}
        for (zone, node_type), count in self.nodes.items():
            spec = get_node_type(node_type)
            key = (zone, spec.gpu.name)
            out[key] = out.get(key, 0) + count * spec.gpus_per_node
        return out

    def zones(self) -> list[str]:
        """Zones with at least one allocated node."""
        return sorted({zone for (zone, _), count in self.nodes.items() if count > 0})

    def fits_within(self, available: "ClusterTopologyLike") -> bool:
        """True when every (zone, node type) count fits the given topology."""
        for (zone, node_type), count in self.nodes.items():
            if count > available.node_count(zone, node_type):
                return False
        return True


class ClusterTopologyLike:
    """Structural protocol for anything exposing ``node_count(zone, type)``."""

    def node_count(self, zone: str, node_type: str) -> int:  # pragma: no cover
        raise NotImplementedError


@dataclass
class ParallelizationPlan:
    """A complete training configuration for one job.

    Attributes
    ----------
    job:
        The training job (model + fixed hyperparameters).
    stages:
        One :class:`StageConfig` per pipeline stage, in pipeline order.
    microbatch_size:
        Microbatch size every pipeline uses.
    """

    job: TrainingJobSpec
    stages: list[StageConfig]
    microbatch_size: int

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a plan needs at least one stage")
        if self.microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")
        dp = self.stages[0].data_parallel
        for stage in self.stages:
            if stage.data_parallel != dp:
                raise ValueError(
                    "all stages must share the same data-parallel degree")
        total_layers = sum(s.partition.num_layers for s in self.stages)
        if total_layers != self.job.model.num_layers:
            raise ValueError(
                f"stages cover {total_layers} layers but the model has "
                f"{self.job.model.num_layers}")
        # The global batch must split evenly (raises ValueError otherwise).
        self.job.num_microbatches(dp, self.microbatch_size)

    # -- degrees ---------------------------------------------------------------

    @property
    def pipeline_parallel(self) -> int:
        """Pipeline-parallel degree ``P``."""
        return len(self.stages)

    @property
    def data_parallel(self) -> int:
        """Data-parallel degree ``D`` (same for every stage)."""
        return self.stages[0].data_parallel

    @property
    def num_microbatches(self) -> int:
        """Microbatches each pipeline processes per iteration."""
        return self.job.num_microbatches(self.data_parallel, self.microbatch_size)

    # -- resources -------------------------------------------------------------

    @property
    def total_gpus(self) -> int:
        """GPUs used by the plan."""
        return sum(stage.num_gpus for stage in self.stages)

    def gpus_by_type(self) -> dict[str, int]:
        """GPUs used, keyed by GPU type."""
        out: dict[str, int] = {}
        for stage in self.stages:
            for replica in stage.replicas:
                out[replica.gpu_type] = out.get(replica.gpu_type, 0) + replica.num_gpus
        return out

    def zones(self) -> list[str]:
        """Zones used by the plan."""
        zones: set[str] = set()
        for stage in self.stages:
            zones.update(stage.zones)
        return sorted(zones)

    def is_heterogeneous(self) -> bool:
        """True when more than one GPU type or TP degree is used."""
        gpu_types: set[str] = set()
        tp_degrees: set[int] = set()
        for stage in self.stages:
            gpu_types.update(stage.gpu_types)
            tp_degrees.update(stage.tensor_parallel_degrees())
        return len(gpu_types) > 1 or len(tp_degrees) > 1

    def resource_allocation(self) -> ResourceAllocation:
        """Whole-node allocation implied by the plan.

        Replicas of the same stage that share a (zone, node type) are packed
        onto as few nodes as possible.
        """
        allocation = ResourceAllocation()
        for stage in self.stages:
            packing: dict[tuple[str, str], int] = {}
            for replica in stage.replicas:
                key = (replica.zone, replica.node_type)
                packing[key] = packing.get(key, 0) + replica.tensor_parallel
            for (zone, node_type), gpus in packing.items():
                per_node = get_node_type(node_type).gpus_per_node
                allocation.add(zone, node_type, math.ceil(gpus / per_node))
        return allocation

    def pipeline(self, data_parallel_index: int) -> list[StageReplica]:
        """The chain of stage replicas forming one pipeline."""
        if not 0 <= data_parallel_index < self.data_parallel:
            raise IndexError("data_parallel_index out of range")
        return [stage.replicas[data_parallel_index] for stage in self.stages]

    def describe(self) -> str:
        """Short human-readable summary (used by examples and logs)."""
        parts = [
            f"P={self.pipeline_parallel} D={self.data_parallel} "
            f"mbs={self.microbatch_size} gpus={self.total_gpus}",
        ]
        for stage in self.stages:
            counts: dict[tuple[str, int, str], int] = {}
            for replica in stage.replicas:
                key = (replica.gpu_type, replica.tensor_parallel, replica.zone)
                counts[key] = counts.get(key, 0) + 1
            summary = ", ".join(
                f"{n}x(tp={tp} {gpu} @{zone})"
                for (gpu, tp, zone), n in sorted(counts.items()))
            parts.append(
                f"  stage {stage.stage_index}: {stage.partition.num_layers} layers, {summary}")
        return "\n".join(parts)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def homogeneous(cls, job: TrainingJobSpec, node_type: str,
                    pipeline_parallel: int, data_parallel: int,
                    tensor_parallel: int, microbatch_size: int,
                    zone: str = "us-central1-a") -> "ParallelizationPlan":
        """Build the classic uniform (Megatron-style) plan."""
        partitions = uniform_partition(job.model, pipeline_parallel)
        stages = []
        for partition in partitions:
            replicas = [StageReplica(node_type, tensor_parallel, zone)
                        for _ in range(data_parallel)]
            stages.append(StageConfig(partition=partition, replicas=replicas))
        return cls(job=job, stages=stages, microbatch_size=microbatch_size)


@dataclass
class PlanEvaluation:
    """Simulator verdict on one plan."""

    iteration_time_s: float
    throughput_iters_per_s: float
    cost_per_iteration_usd: float
    peak_memory_bytes_per_stage: list[float]
    is_valid: bool
    oom_stages: list[int] = field(default_factory=list)
    compute_cost_usd: float = 0.0
    communication_cost_usd: float = 0.0
    pipeline_time_s: float = 0.0
    sync_time_s: float = 0.0
    update_time_s: float = 0.0
    straggler_stage: int = 0

    @property
    def samples_per_s(self) -> float:
        """Sequences per second implied by the iteration time (informational)."""
        return self.throughput_iters_per_s


@dataclass
class SearchStats:
    """Counters describing how much work one planner search performed.

    Filled by the DP solver / search context; all-zero for planners that do
    not report them (the baselines).  The counters make planner-latency
    optimisations observable: a faster search should show fewer nodes
    explored and more memo/cache hits, not just a smaller wall-clock time.
    """

    nodes_explored: int = 0
    memo_hits: int = 0
    pruned_branches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Candidates whose full simulator evaluation was skipped because their
    #: conservative iteration-time floor already lost to the incumbent.
    gate_skips: int = 0
    #: Forward reachability passes served from the search context's
    #: cross-candidate layer cache instead of being recomputed (resource-
    #: state engine; one hit saves one whole chunked fit-test + dedup pass).
    layer_cache_hits: int = 0
    #: Straggler-loop suffix resolutions actually performed under a budget
    #: constraint: scalar straggler-loop iterations that probe or solve a
    #: suffix, plus each budget combo the batched scan resolves inline via
    #: engine dominance.  This is the count the straggler convergence
    #: certificates attack (the observable behind the "fewer iterations,
    #: not cheaper iterations" claim).
    suffix_iterations: int = 0
    #: Suffix resolutions avoided by a convergence/infeasibility
    #: certificate (straggler or cost lower bound, or the engine-seeded
    #: dominance pre-check): the loop's answer was proven without probing
    #: or re-solving the suffix.
    suffix_certified: int = 0
    #: Per-branch completeness of an anytime search: (P, mbs) branches whose
    #: candidate enumeration ran to its natural end versus branches cut by
    #: the deadline / node budget (their unexplored candidates contribute
    #: admissible lower bounds to ``PlannerResult.optimality_gap_bound``).
    branches_complete: int = 0
    branches_incomplete: int = 0
    #: Cooperative cancellations observed: ``SearchBudgetExhausted`` raised
    #: inside a DP hot loop and salvaged by the branch search.
    budget_interrupts: int = 0
    #: Backward layers scored through a CSR skeleton reused from the shared
    #: forward pass (``ForwardLayers.backward_csr``): each hit saves the
    #: per-candidate dense (rows, combos) mask/gather rebuild.
    backward_shared_hits: int = 0
    #: Candidates dropped by the bound-ordered tail cut before their DP
    #: solve ran: an admissible evaluation floor proved every remaining
    #: candidate of the branch cannot beat the incumbent, so none of them
    #: was solved, built or evaluated (see ``SailorPlanner._plan_branch``).
    candidates_killed_unevaluated: int = 0
    #: Whole (P, mbs) families skipped before any forward build: the
    #: family's interval-memoised floor (min over its data-parallel
    #: members) already loses to the cross-branch incumbent, so every
    #: member was dropped wholesale (``PlannerConfig.family_interval_memo``).
    families_skipped: int = 0
    #: Backward layer combines served by the fused workspace kernel
    #: (preallocated per-footprint buffers + cached-signature einsum)
    #: instead of fresh full-size temporaries
    #: (``DPSolverConfig.fused_combine``).
    combine_fused_hits: int = 0
    #: Availability-aware tail-kill floor tables served warm from the
    #: per-availability-signature cache instead of being rebuilt
    #: (``PlannerConfig.availability_aware_floors``); churn replans against
    #: an unchanged pool hit this on every branch.
    availability_floor_hits: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats block into this one (parallel driver)."""
        for name, value in other.as_dict().items():
            setattr(self, name, getattr(self, name) + value)

    def diff(self, earlier: "SearchStats") -> "SearchStats":
        """Counters accumulated since ``earlier`` (a snapshot of self)."""
        return SearchStats(**{name: value - getattr(earlier, name)
                              for name, value in self.as_dict().items()})

    def copy(self) -> "SearchStats":
        """Snapshot of the current counters."""
        return SearchStats(**self.as_dict())

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON serialisation and logging.

        Derived from the dataclass fields so merge/diff/copy/from_dict all
        follow automatically when a counter is added.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SearchStats":
        """Inverse of :meth:`as_dict`; tolerates missing and unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{name: int(value) for name, value in data.items()
                      if name in known})

    def describe(self) -> str:
        """One-line summary (used by the CLI and examples)."""
        return (f"nodes={self.nodes_explored} memo_hits={self.memo_hits} "
                f"pruned={self.pruned_branches} cache_hits={self.cache_hits} "
                f"gate_skips={self.gate_skips} "
                f"layer_cache_hits={self.layer_cache_hits} "
                f"suffix_iters={self.suffix_iterations} "
                f"suffix_certified={self.suffix_certified} "
                f"shared_backward={self.backward_shared_hits} "
                f"killed_unevaluated={self.candidates_killed_unevaluated} "
                f"families_skipped={self.families_skipped} "
                f"fused_combines={self.combine_fused_hits} "
                f"avail_floor_hits={self.availability_floor_hits} "
                f"branches={self.branches_complete}+"
                f"{self.branches_incomplete}cut "
                f"interrupts={self.budget_interrupts}")


@dataclass
class PlannerResult:
    """Outcome of one planner invocation.

    **Anytime semantics.**  A deadline- or node-budget-bounded search may be
    interrupted before it exhausts the candidate space.  The result then
    still carries the best *incumbent* found before the interrupt, plus a
    certificate of how much could have been missed:

    * ``complete`` is True only when the search ran to its natural end.  It
      is False when any (P, mbs) branch was cut by the deadline/node budget
      *or* (parallel driver) a branch had to be salvaged from a crashed or
      wedged worker -- even when the retry recovered it, so callers can tell
      a degraded call from a clean one.  ``incomplete_branches`` lists the
      affected branches as ``"P<pp>/mbs<mbs>"`` labels.
    * ``optimality_gap_bound`` is an admissible relative bound on the
      remaining gap: the true optimum of the unbounded search is no better
      than ``incumbent_value * (1 - gap)`` for the minimised scalar
      (iteration time under the throughput goal, cost per iteration under
      the cost goal).  It is exactly ``0.0`` when ``complete`` (unbounded
      calls are byte-identical to pre-anytime results), ``inf`` when the
      search was cut before any feasible incumbent existed, and may be
      ``0.0`` with ``complete=False`` when the incompleteness is
      fault-induced only (every branch value was still recovered).
    * Degraded merges: the parallel driver salvages surviving branches when
      a worker dies, retries dead branches once on a fresh pool, then
      re-runs them inline; whatever could not be recovered contributes its
      admissible lower bound to the gap instead of silently vanishing.

    Callers deciding whether to *adopt* such a result (e.g. the online
    replanning controller) should gate on ``found`` and
    ``optimality_gap_bound``, not on ``complete`` alone.
    """

    plan: ParallelizationPlan | None
    evaluation: PlanEvaluation | None
    search_time_s: float
    planner_name: str = "sailor"
    candidates_evaluated: int = 0
    oom_plans_generated: int = 0
    notes: str = ""
    search_stats: SearchStats = field(default_factory=SearchStats)
    #: Whether the search ran to completion (see anytime semantics above).
    complete: bool = True
    #: Admissible relative optimality-gap bound; 0.0 exactly when complete.
    optimality_gap_bound: float = 0.0
    #: Branch labels cut short or fault-salvaged, in branch order.
    incomplete_branches: list[str] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """True when a valid plan was produced."""
        return self.plan is not None and self.evaluation is not None
