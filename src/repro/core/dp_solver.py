"""Per-stage resource assignment via dynamic programming (paper Listing 1).

Given a pipeline depth ``P``, a data-parallel degree ``D``, a microbatch size
and the per-(stage, node type) tensor-parallel candidates, the solver walks
the stages front to back.  For each stage it enumerates *resource combos*
(ways to place the stage's ``D`` replicas on the remaining nodes of one
region, possibly mixing node types -- heuristic H5 keeps a stage's
data-parallel group inside one region), recurses on the remaining stages and
remaining resources, and keeps the combination minimising the projected
iteration time

``T = sum_i t_i + (Nb - 1) * max_i t_i + max_i sync_i``

(or the projected cost when the objective is cost minimisation).  Results
are memoised on ``(stage, remaining resources, remaining budget)``.

Two things keep the search fast (the planner's latency is what the paper's
Tables 1-3 hinge on):

* **Shared search context.**  Stage compute/sync times, cost rates and the
  combo enumeration are cached on a
  :class:`~repro.core.search_cache.PlannerSearchContext` keyed independently
  of the data-parallel candidate, so a planner call computes each of them
  once instead of once per DP candidate.
* **Branch-and-bound.**  Before recursing on a combo the solver computes an
  admissible lower bound on the objective of any completed solution through
  that combo (best achievable compute time / cost rate of the remaining
  stages, from the cheapest options available at the root).  Branches that
  cannot beat the incumbent -- threaded down the recursion as an upper
  bound -- are pruned.  Bounds are admissible (they never exceed the true
  value, including under floating-point rounding, because IEEE-754 add/mul
  are monotone), so pruning never changes the value of the returned
  solution; ``DPSolverConfig.enable_pruning=False`` turns it off for the
  equivalence tests.

When a budget constraint is present, the solver follows the paper's
straggler-approximation loop: it first assumes the current stage is the
pipeline straggler to estimate the budget left for the remaining stages,
solves them, and re-iterates with the discovered straggler when the
assumption was wrong (section 4.2.3).  This is what makes budget-constrained
searches slower (Table 3).  A *budget-dominance* shortcut answers most of
those queries from the unconstrained optimum instead: whenever the
unconstrained optimum of a subproblem fits the remaining budget it is also
the budgeted optimum, so only genuinely binding budgets enter the straggler
loop.  Unlike branch-and-bound this shortcut is part of the algorithm (it is
*not* disabled by ``enable_pruning=False``; it can only return equal-or-
better solutions than the straggler approximation) and is covered by its own
dominance property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.objectives import OptimizationGoal
from repro.core.search_cache import (
    PlannerSearchContext,
    ResourceKey,
    StageAssignment,
    StageOption,
    tp_options_key,
)
from repro.core.simulator.environment import SimulationEnvironment
from repro.models.partition import LayerPartition
from repro.models.spec import TrainingJobSpec


#: Type alias: remaining nodes keyed by (zone, node type).
ResourceMap = dict[tuple[str, str], int]

__all__ = [
    "DPSolution",
    "DPSolver",
    "DPSolverConfig",
    "ResourceMap",
    "StageAssignment",
    "StageOption",
]


@dataclass
class DPSolution:
    """Best assignment found for a suffix of the pipeline."""

    assignments: list[StageAssignment]
    max_stage_time_s: float
    sum_stage_time_s: float
    max_sync_time_s: float
    cost_rate_usd_per_s: float

    def projected_iteration_time(self, num_microbatches: int) -> float:
        """Iteration-time estimate the DP optimises."""
        return (self.sum_stage_time_s
                + (num_microbatches - 1) * self.max_stage_time_s
                + self.max_sync_time_s)

    def projected_cost(self, num_microbatches: int) -> float:
        """Cost estimate (compute only) the DP uses under budget constraints."""
        return self.cost_rate_usd_per_s * self.projected_iteration_time(num_microbatches)

    @property
    def straggler_stage(self) -> int:
        """Index (within the suffix) of the slowest stage."""
        best = 0
        for i, assignment in enumerate(self.assignments):
            if assignment.compute_time_s > self.assignments[best].compute_time_s:
                best = i
        return best


@dataclass
class DPSolverConfig:
    """Knobs bounding the DP search."""

    max_combos_per_stage: int = 16
    max_mixed_types_per_stage: int = 2
    split_fractions: tuple[float, ...] = (0.25, 0.5, 0.75)
    max_budget_iterations: int = 4
    #: Branch-and-bound pruning of DP branches that provably cannot beat the
    #: incumbent.  Value-preserving; off only for equivalence testing.
    enable_pruning: bool = True

    def __post_init__(self) -> None:
        if self.max_combos_per_stage < 1:
            raise ValueError("max_combos_per_stage must be >= 1")
        if self.max_mixed_types_per_stage < 1:
            raise ValueError("max_mixed_types_per_stage must be >= 1")
        if self.max_budget_iterations < 1:
            # The straggler-approximation loop must run at least once, or
            # budget-constrained solves would fall through with no result.
            raise ValueError("max_budget_iterations must be >= 1")
        for fraction in self.split_fractions:
            if not 0.0 < fraction < 1.0:
                raise ValueError("split_fractions must lie strictly in (0, 1)")


#: Relative slack applied to cost-mode lower bounds: the cost bound divides
#: where the real cost rate ceils, so the two can differ by a rounding ulp.
_COST_BOUND_SLACK = 1.0 - 1e-12


class DPSolver:
    """Solves the per-stage resource-assignment problem for one (P, D, mbs)."""

    def __init__(self, env: SimulationEnvironment, job: TrainingJobSpec,
                 partitions: list[LayerPartition],
                 tp_options_per_stage: list[dict[str, list[int]]],
                 microbatch_size: int, data_parallel: int,
                 num_microbatches: int,
                 goal: OptimizationGoal = OptimizationGoal.MAX_THROUGHPUT,
                 config: DPSolverConfig | None = None,
                 context: PlannerSearchContext | None = None) -> None:
        self.env = env
        self.job = job
        self.partitions = partitions
        self.tp_options_per_stage = tp_options_per_stage
        self.microbatch_size = microbatch_size
        self.data_parallel = data_parallel
        self.num_microbatches = num_microbatches
        self.goal = goal
        self.config = config or DPSolverConfig()
        if context is not None and context.goal is not goal:
            # Combo ranking/truncation lives on the context; a mismatched
            # goal would silently rank by the wrong metric.
            raise ValueError(
                f"context goal {context.goal} does not match solver goal {goal}")
        self.context = context or PlannerSearchContext(env, job, goal)
        self._tp_keys = [tp_options_key(opts) for opts in tp_options_per_stage]
        self._memo: dict[tuple, tuple[DPSolution | None, bool, float]] = {}
        # Per-solve state: master combo lists, per-state filtered views and
        # admissible per-suffix bounds.  Resource states inside the
        # recursion are integer-indexed: one count per root (zone, node
        # type) slot, in the root's sorted order.  The encoding is a
        # bijection with the canonical tuple form (an exhausted slot is 0
        # where the tuple form dropped the pair), so memo keys collapse the
        # exact same states -- but hashing a flat int tuple and scanning
        # index/count pairs is far cheaper than nested string tuples.
        self._root: ResourceKey = ()
        self._keys: list[tuple[str, str]] = []
        self._master_req: list[list | None] = [None] * len(partitions)
        self._combo_cache: dict[tuple, list] = {}
        self._clamp_active: list[bool] = [True] * len(partitions)
        self._caps_vec: list[tuple[int, ...]] = []
        self._sfx_sum: list[float] = []
        self._sfx_max: list[float] = []
        self._sfx_rate: list[float] = []
        self._prepare_clamps()

    @property
    def stats(self):
        """Search counters, shared with the context (and so the planner)."""
        return self.context.stats

    @property
    def nodes_explored(self) -> int:
        """DP subproblems expanded on this solver's context (back-compat).

        Stats live on the shared context, so with an injected context this
        is the total across *every* solver sharing it, not just this one;
        for a standalone solver (private context) the two coincide.
        """
        return self.context.stats.nodes_explored

    # -- public API ------------------------------------------------------------

    def solve(self, resources: ResourceMap,
              budget_per_iteration: float | None = None) -> DPSolution | None:
        """Assign resources to every stage; ``None`` when nothing fits."""
        self._memo.clear()
        self._combo_cache.clear()
        root = tuple(sorted((key, count) for key, count in resources.items()
                            if count > 0))
        self._root = root
        self._keys = [key for key, _ in root]
        self._master_req = [None] * len(self.partitions)
        # A stage's suffix clamp can only ever bind if it binds on the root:
        # descendant states shrink, so when the root is under every cap the
        # clamp is a no-op for the whole search and can be skipped.
        self._clamp_active = [
            any(count > caps.get(node_type, 0)
                for (_, node_type), count in root)
            for caps in self._suffix_clamp[:len(self.partitions)]
        ]
        # Suffix clamps as per-slot cap vectors aligned with the root order.
        self._caps_vec = [
            tuple(caps.get(node_type, 0) for _, node_type in self._keys)
            for caps in self._suffix_clamp
        ]
        if not self._prepare_bounds(root):
            return None  # some stage can be hosted by no available option
        root_state = tuple(count for _, count in root)
        return self._solve(0, root_state, budget_per_iteration, math.inf)

    # -- stage metrics -----------------------------------------------------------

    def stage_compute_time(self, stage_index: int, node_type: str,
                           tensor_parallel: int) -> float:
        """Per-microbatch forward+backward time of a stage on one option."""
        return self.context.stage_compute_time(
            self.partitions[stage_index], self.microbatch_size, node_type,
            tensor_parallel)

    def stage_sync_time(self, stage_index: int,
                        placements: list[tuple[StageOption, int]]) -> float:
        """Approximate gradient all-reduce time of a stage's replicas."""
        return self.context.stage_sync_time(
            self.partitions[stage_index], self.data_parallel, tuple(placements))

    def stage_cost_rate(self, placements: list[tuple[StageOption, int]]) -> float:
        """USD per second of the whole nodes a stage occupies."""
        return self.context.stage_cost_rate(tuple(placements))

    # -- combo generation ---------------------------------------------------------

    def generate_combos(self, stage_index: int,
                        resources: ResourceMap | ResourceKey,
                        ) -> list[tuple[tuple[StageOption, int], ...]]:
        """Resource combos able to host the stage's ``D`` replicas.

        Honours H5 (one region per stage); ranked by implied stage compute
        time (cost rate under the cost objective) and truncated to
        ``max_combos_per_stage``.  Cached on the shared context.
        """
        if isinstance(resources, dict):
            resources = tuple(sorted((key, count)
                              for key, count in resources.items() if count > 0))
        master = self._master_combos(stage_index, resources)
        limit = self.config.max_combos_per_stage
        return [entry[0] for entry in master[:limit]]

    def _master_combos(self, stage_index: int,
                       resources: ResourceKey) -> list:
        """Untruncated sorted combo list for a stage from ``resources``."""
        return self.context.stage_master_combos(
            self.partitions[stage_index], self.microbatch_size,
            self.data_parallel, self.tp_options_per_stage[stage_index],
            self._tp_keys[stage_index],
            self._clamp(resources, self._stage_clamp[stage_index]),
            self.config.max_mixed_types_per_stage,
            self.config.split_fractions)

    def _combos_for_state(self, stage_index: int,
                          state: tuple[int, ...]) -> list:
        """Combos of the root master list that fit one resource state.

        A combo generated from a resource subset is exactly a root combo
        whose whole-node footprint fits the subset, so filtering the master
        list (already sorted) and stopping at ``max_combos_per_stage``
        reproduces the per-state enumeration at a fraction of the cost.
        Returns ``(entry, needs)`` pairs where ``needs`` is the entry's
        whole-node footprint as ``(slot index, count)`` pairs aligned with
        the integer state encoding.
        """
        key = (stage_index, state)
        cached = self._combo_cache.get(key)
        if cached is not None:
            return cached
        pairs = self._master_req[stage_index]
        if pairs is None:
            master = self._master_combos(stage_index, self._root)
            index = {node_key: i for i, node_key in enumerate(self._keys)}
            pairs = [(entry,
                      tuple((index[node_key], used)
                            for node_key, used in entry[3]))
                     for entry in master]
            self._master_req[stage_index] = pairs
        limit = self.config.max_combos_per_stage
        fitting = []
        for pair in pairs:
            for slot, used in pair[1]:
                if state[slot] < used:
                    break
            else:
                fitting.append(pair)
                if len(fitting) >= limit:
                    break
        self._combo_cache[key] = fitting
        return fitting

    # -- resource clamping --------------------------------------------------------

    def _prepare_clamps(self) -> None:
        """Precompute how many whole nodes of each type a stage can use.

        A stage hosting ``D`` replicas never occupies more than
        ``ceil(D / min replicas-per-node)`` nodes of one (zone, node type),
        and a pipeline suffix never more than the sum over its stages.
        Counts beyond those caps cannot influence any reachable assignment,
        so clamping them canonicalises the resource state: memo keys and
        combo-cache keys collapse across states that differ only in unusable
        surplus, which is where most cross-candidate reuse comes from.
        """
        num_stages = len(self.partitions)
        per_stage: list[dict[str, int]] = []
        for tp_options in self.tp_options_per_stage:
            stage_cap: dict[str, int] = {}
            for node_type, degrees in tp_options.items():
                gpus = self.context.gpus_per_node(node_type)
                min_rpn = min(max(1, gpus // tp) for tp in degrees)
                stage_cap[node_type] = math.ceil(self.data_parallel / min_rpn)
            per_stage.append(stage_cap)
        suffix: list[dict[str, int]] = [{} for _ in range(num_stages + 1)]
        for j in range(num_stages - 1, -1, -1):
            merged = dict(suffix[j + 1])
            for node_type, cap in per_stage[j].items():
                merged[node_type] = merged.get(node_type, 0) + cap
            suffix[j] = merged
        self._stage_clamp = per_stage
        self._suffix_clamp = suffix

    @staticmethod
    def _clamp(resources: ResourceKey, caps: dict[str, int]) -> ResourceKey:
        """Clamp counts at ``caps`` per node type; drop unusable types.

        Returns the input tuple unchanged (same object) when nothing caps,
        so the common case allocates nothing.
        """
        changed = False
        for (_, node_type), count in resources:
            if count > caps.get(node_type, 0):
                changed = True
                break
        if not changed:
            return resources
        clamped: list[tuple[tuple[str, str], int]] = []
        for key, count in resources:
            cap = caps.get(key[1], 0)
            if cap <= 0:
                continue
            clamped.append((key, count if count <= cap else cap))
        return tuple(clamped)

    # -- bounds -------------------------------------------------------------------

    def _prepare_bounds(self, root: ResourceKey) -> bool:
        """Precompute admissible per-suffix bounds from the root resources.

        ``_sfx_sum[j]`` / ``_sfx_max[j]`` bound the best achievable sum/max
        compute time of stages ``j..P-1``; ``_sfx_rate[j]`` the best
        achievable cost rate.  They are built from the cheapest options the
        *root* resource pool offers, which every reachable resource subset
        can only shrink -- hence admissibility.  Returns ``False`` when a
        stage has no feasible option at all (the search cannot succeed).
        """
        num_stages = len(self.partitions)
        best_time: list[float] = []
        best_rate: list[float] = []
        for stage_index in range(num_stages):
            options = self.context.stage_options(
                self.tp_options_per_stage[stage_index],
                self._tp_keys[stage_index],
                self._clamp(root, self._stage_clamp[stage_index]))
            if not options:
                return False
            partition = self.partitions[stage_index]
            best_time.append(min(
                self.context.stage_compute_time(partition,
                                                self.microbatch_size,
                                                opt.node_type,
                                                opt.tensor_parallel)
                for opt, _ in options))
            best_rate.append(self.data_parallel * min(
                (self.context.gpus_per_node(opt.node_type)
                 * self.context.gpu_price_per_second(opt.node_type))
                / opt.replicas_per_node
                for opt, _ in options))

        self._sfx_sum = [0.0] * (num_stages + 1)
        self._sfx_max = [0.0] * (num_stages + 1)
        self._sfx_rate = [0.0] * (num_stages + 1)
        for j in range(num_stages - 1, -1, -1):
            # Same (right-leaning) association as _combine builds solutions
            # with, so floating-point monotonicity keeps the bound admissible.
            self._sfx_sum[j] = best_time[j] + self._sfx_sum[j + 1]
            self._sfx_max[j] = max(best_time[j], self._sfx_max[j + 1])
            self._sfx_rate[j] = best_rate[j] + self._sfx_rate[j + 1]
        return True

    def _value(self, solution: DPSolution) -> float:
        """Scalar the DP minimises (iteration time, or cost under MIN_COST)."""
        if self.goal is OptimizationGoal.MIN_COST:
            return solution.projected_cost(self.num_microbatches)
        return solution.projected_iteration_time(self.num_microbatches)

    def _suffix_lower_bound(self, stage_index: int,
                            assignment: StageAssignment) -> float:
        """Admissible lower bound on any solution that assigns ``assignment``
        to ``stage_index`` and completes the remaining stages somehow."""
        after = stage_index + 1
        t_a = assignment.compute_time_s
        sum_lb = t_a + self._sfx_sum[after]
        max_lb = t_a if t_a >= self._sfx_max[after] else self._sfx_max[after]
        time_lb = (sum_lb + (self.num_microbatches - 1) * max_lb
                   + assignment.sync_time_s)
        if self.goal is OptimizationGoal.MIN_COST:
            rate_lb = assignment.cost_rate_usd_per_s + self._sfx_rate[after]
            return rate_lb * time_lb * _COST_BOUND_SLACK
        return time_lb

    # -- recursion ------------------------------------------------------------------

    @staticmethod
    def _subtract_state(state: tuple[int, ...],
                        needs: tuple[tuple[int, int], ...],
                        ) -> tuple[int, ...] | None:
        """Remove a combo's whole-node footprint from an integer state.

        ``None`` when some slot goes negative (the combo does not fit);
        exhausted slots stay in the tuple as zeros, which is the same
        equivalence class the canonical tuple form expressed by dropping
        the pair.
        """
        out = list(state)
        for slot, used in needs:
            left = out[slot] - used
            if left < 0:
                return None
            out[slot] = left
        return tuple(out)

    @staticmethod
    def _clamp_state(state: tuple[int, ...],
                     caps: tuple[int, ...]) -> tuple[int, ...]:
        """Clamp an integer state at per-slot caps (no-op returns the input)."""
        for count, cap in zip(state, caps):
            if count > cap:
                return tuple(count if count <= cap else cap
                             for count, cap in zip(state, caps))
        return state

    def _solve(self, stage_index: int, resources: tuple[int, ...],
               budget: float | None, upper_bound: float) -> DPSolution | None:
        if self._clamp_active[stage_index]:
            resources = self._clamp_state(resources,
                                          self._caps_vec[stage_index])
        # Unbudgeted keys are 2-tuples, budgeted 3-tuples; the lengths can
        # never collide, and the common case hashes one element less.
        key = ((stage_index, resources) if budget is None
               else (stage_index, resources, round(budget, 6)))
        entry = self._memo.get(key)
        if entry is not None:
            solution, exact, bound = entry
            # A bound-limited entry only proves "nothing beats `bound`"; it
            # can be reused when the caller's bound is at least as strict.
            if exact or upper_bound <= bound:
                self.stats.memo_hits += 1
                return solution
        self.stats.nodes_explored += 1

        if budget is not None:
            # Budget dominance: the unconstrained optimum of this subproblem
            # is memoised once (under its 2-tuple key) and shared by every
            # budget the straggler loop proposes.  When it fits the
            # remaining budget it is also the budgeted optimum (the
            # constraint is inactive at the optimum); when the subproblem is
            # infeasible outright, so is every budgeted variant.  Only
            # genuinely binding budgets fall through to the budget-threaded
            # search.
            unconstrained = self._solve(stage_index, resources, None, math.inf)
            if unconstrained is None:
                self._memo[key] = (None, True, upper_bound)
                return None
            if unconstrained.projected_cost(self.num_microbatches) <= budget:
                self._memo[key] = (unconstrained, True, math.inf)
                return unconstrained

        stats = self.stats
        memo = self._memo
        context = self.context
        partition = self.partitions[stage_index]
        best: DPSolution | None = None
        best_value = math.inf
        pruning = self.config.enable_pruning
        combos = self._combos_for_state(stage_index, resources)
        is_last = stage_index == len(self.partitions) - 1
        next_stage = stage_index + 1
        child_clamps = (self._caps_vec[next_stage]
                        if not is_last and self._clamp_active[next_stage]
                        else None)
        # Hot-loop locals: the suffix bound and candidate scoring below are
        # the inlined, allocation-free forms of _suffix_lower_bound /
        # _combine + _value -- the exact same floating-point operations in
        # the same order, minus the per-combo call and DPSolution overhead.
        nb1 = self.num_microbatches - 1
        is_cost = self.goal is OptimizationGoal.MIN_COST
        sum_after = self._sfx_sum[next_stage]
        max_after = self._sfx_max[next_stage]
        rate_after = self._sfx_rate[next_stage]

        for combo_index, (entry, needs) in enumerate(combos):
            assignment = entry[2]
            if assignment is None:
                assignment = context.build_stage_assignment(
                    partition, self.microbatch_size, self.data_parallel,
                    entry[0], nodes_used=entry[1], compute_time_s=entry[4])
                entry[2] = assignment
            t_a = assignment.compute_time_s
            sync_a = assignment.sync_time_s
            if is_last:
                time_v = t_a + nb1 * t_a + sync_a
                if is_cost or budget is not None:
                    cost_v = assignment.cost_rate_usd_per_s * time_v
                if budget is not None and cost_v > budget:
                    continue
                value = cost_v if is_cost else time_v
                if value < best_value:
                    best = DPSolution(
                        assignments=[assignment],
                        max_stage_time_s=t_a,
                        sum_stage_time_s=t_a,
                        max_sync_time_s=sync_a,
                        cost_rate_usd_per_s=assignment.cost_rate_usd_per_s,
                    )
                    best_value = value
                continue

            cutoff = upper_bound if upper_bound < best_value else best_value
            if pruning:
                sum_lb = t_a + sum_after
                max_lb = t_a if t_a >= max_after else max_after
                base_lb = sum_lb + nb1 * max_lb
                if is_cost:
                    bound = ((assignment.cost_rate_usd_per_s + rate_after)
                             * (base_lb + sync_a) * _COST_BOUND_SLACK)
                    if bound >= cutoff:
                        stats.pruned_branches += 1
                        continue
                elif base_lb >= cutoff:
                    # Combos are sorted by stage compute time, and the
                    # sync-free bound is monotone in it (IEEE-754 add/mul
                    # are monotone), so every remaining combo's individual
                    # bound check would also prune: cut the whole tail.
                    stats.pruned_branches += len(combos) - combo_index
                    break
                elif base_lb + sync_a >= cutoff:
                    stats.pruned_branches += 1
                    continue

            remaining = self._subtract_state(resources, needs)
            if remaining is None:
                continue

            if budget is None:
                # Inlined fast path: clamp + memo probe without the call
                # overhead of _solve (the overwhelmingly common hit case);
                # the bound matches _child_bound exactly.
                if not pruning or cutoff == math.inf:
                    child_bound = math.inf
                elif is_cost:
                    child_bound = cutoff
                else:
                    child_bound = (cutoff - t_a) * (1.0 + 1e-12)
                if child_clamps is not None:
                    remaining = self._clamp_state(remaining, child_clamps)
                child_entry = memo.get((next_stage, remaining))
                if child_entry is not None and (
                        child_entry[1] or child_bound <= child_entry[2]):
                    stats.memo_hits += 1
                    suffix = child_entry[0]
                else:
                    suffix = self._solve(next_stage, remaining, None,
                                         child_bound)
                if suffix is None:
                    continue
                sum_t = t_a + suffix.sum_stage_time_s
                s_max = suffix.max_stage_time_s
                max_t = t_a if t_a >= s_max else s_max
                s_sync = suffix.max_sync_time_s
                sync_t = sync_a if sync_a >= s_sync else s_sync
                time_v = sum_t + nb1 * max_t + sync_t
                if is_cost:
                    value = (assignment.cost_rate_usd_per_s
                             + suffix.cost_rate_usd_per_s) * time_v
                else:
                    value = time_v
                if value < best_value:
                    best = DPSolution(
                        assignments=[assignment] + suffix.assignments,
                        max_stage_time_s=max_t,
                        sum_stage_time_s=sum_t,
                        max_sync_time_s=sync_t,
                        cost_rate_usd_per_s=(assignment.cost_rate_usd_per_s
                                             + suffix.cost_rate_usd_per_s),
                    )
                    best_value = value
                continue

            candidate = self._solve_suffix(
                stage_index, assignment, remaining, budget,
                cutoff if pruning else math.inf)
            if candidate is None:
                continue
            value = self._value(candidate)
            if value < best_value:
                best, best_value = candidate, value

        # best_value < upper_bound proves optimality: every pruned branch had
        # a lower bound >= min(upper_bound, incumbent-at-the-time) and the
        # incumbent only improves, so nothing better was discarded.
        exact = best_value < upper_bound or upper_bound == math.inf
        memo[key] = (best, exact, upper_bound)
        return best

    def _child_bound(self, cutoff: float, assignment: StageAssignment) -> float:
        """Upper bound to thread into the suffix solve below ``assignment``.

        Any completed solution satisfies ``combined >= suffix + t_a`` for the
        throughput objective and ``combined >= suffix`` for cost, so a suffix
        at or above the returned bound can never beat the incumbent.  The
        tiny relative slack absorbs rounding in the subtraction.
        """
        if cutoff == math.inf:
            return math.inf
        if self.goal is OptimizationGoal.MIN_COST:
            return cutoff
        return (cutoff - assignment.compute_time_s) * (1.0 + 1e-12)

    def _solve_suffix(self, stage_index: int, assignment: StageAssignment,
                      remaining: ResourceKey, budget: float,
                      cutoff: float) -> DPSolution | None:
        """Combine one stage assignment with the best budgeted suffix.

        Implements the straggler-approximation loop of section 4.2.3: assume
        the current stage is the straggler, compute the remaining budget,
        solve the suffix, and retry with the discovered straggler when the
        assumption turns out wrong.  (The unbudgeted case is handled by the
        inlined fast path in :meth:`_solve`.)
        """
        nb = self.num_microbatches
        child_bound = self._child_bound(cutoff, assignment)

        combined: DPSolution | None = None
        assumed_straggler = assignment.compute_time_s
        for _ in range(self.config.max_budget_iterations):
            stage_cost = assignment.cost_rate_usd_per_s * nb * assumed_straggler
            remaining_budget = budget - stage_cost
            if remaining_budget <= 0:
                return None
            suffix = self._solve(stage_index + 1, remaining, remaining_budget,
                                 child_bound)
            if suffix is None:
                return None
            combined = self._combine(assignment, suffix)
            if combined.projected_cost(nb) > budget:
                return None
            actual_straggler = combined.max_stage_time_s
            if actual_straggler <= assumed_straggler + 1e-12:
                return combined
            assumed_straggler = actual_straggler
        return combined

    @staticmethod
    def _combine(assignment: StageAssignment, suffix: DPSolution) -> DPSolution:
        return DPSolution(
            assignments=[assignment] + suffix.assignments,
            max_stage_time_s=max(assignment.compute_time_s, suffix.max_stage_time_s),
            sum_stage_time_s=assignment.compute_time_s + suffix.sum_stage_time_s,
            max_sync_time_s=max(assignment.sync_time_s, suffix.max_sync_time_s),
            cost_rate_usd_per_s=(assignment.cost_rate_usd_per_s
                                 + suffix.cost_rate_usd_per_s),
        )
