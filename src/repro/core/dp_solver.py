"""Per-stage resource assignment via dynamic programming (paper Listing 1).

Given a pipeline depth ``P``, a data-parallel degree ``D``, a microbatch size
and the per-(stage, node type) tensor-parallel candidates, the solver walks
the stages front to back.  For each stage it enumerates *resource combos*
(ways to place the stage's ``D`` replicas on the remaining nodes of one
region, possibly mixing node types -- heuristic H5 keeps a stage's
data-parallel group inside one region), recurses on the remaining stages and
remaining resources, and keeps the combination minimising the projected
iteration time

``T = sum_i t_i + (Nb - 1) * max_i t_i + max_i sync_i``

(or the projected cost when the objective is cost minimisation).  Results
are memoised on ``(stage, remaining resources)`` -- plus a *budget
interval* when a budget constraint is active (see below).

Three things keep the search fast (the planner's latency is what the
paper's Tables 1-3 hinge on):

* **Shared search context.**  Stage compute/sync times, cost rates and the
  combo enumeration are cached on a
  :class:`~repro.core.search_cache.PlannerSearchContext` keyed independently
  of the data-parallel candidate, so a planner call computes each of them
  once instead of once per DP candidate.
* **The resource-state engine.**  Resource states are array-encoded by a
  :class:`~repro.core.resource_state.ResourceStateCodec` (fixed-width
  count vectors, one slot per root (zone, node type) pair) whose encoding
  is a bijection with the canonical tuple-of-tuples form -- memo keys
  collapse exactly the same states, so plans are byte-identical to the
  tuple encoding.  On wide pools, unconstrained solves skip the recursion
  entirely: a :class:`~repro.core.resource_state.ResourceStateEngine`
  computes the same table bottom-up, one whole stage layer of states per
  batched kernel call (see its docstring for the forward/backward passes
  and the bit-equivalence argument).  The engine's *forward* pass --
  reachability, which depends only on the root and the per-stage combo
  footprints, not on the microbatch size -- is shared across candidates
  through the search context's layer cache
  (:func:`~repro.core.resource_state.forward_signature` keys it; only
  byte-identical passes are reused), so all ``mbs`` variants of one
  ``(P, D)`` compute reachability once.  Where the recursion still runs
  (binding-budget subtrees, and ``enable_pruning=False``), each state's
  fitting combos, child states (footprint subtracted, per-stage caps
  clamped) and child memo keys are computed once and cached -- via the
  vectorized :class:`~repro.core.resource_state.StageComboTable` kernels
  on wide pools, via scalar scans over tuple states on tiny pools where
  NumPy call overhead cannot amortise (``DPSolver.engine_min_states``
  picks the regime; both produce the identical fit order, and a mode's
  memo keys -- state bytes for vector, the state tuples themselves for
  scalar -- never mix within one solve).
* **Branch-and-bound.**  Before recursing on a combo the solver computes an
  admissible lower bound on the objective of any completed solution through
  that combo (best achievable compute time / cost rate of the remaining
  stages, from the cheapest options available at the root).  Branches that
  cannot beat the incumbent -- threaded down the recursion as an upper
  bound -- are pruned.  Bounds are admissible (they never exceed the true
  value, including under floating-point rounding, because IEEE-754 add/mul
  are monotone), so pruning never changes the value of the returned
  solution; ``DPSolverConfig.enable_pruning=False`` turns it off for the
  equivalence tests.

When a budget constraint is present, the solver follows the paper's
straggler-approximation loop: it first assumes the current stage is the
pipeline straggler to estimate the budget left for the remaining stages,
solves them, and re-iterates with the discovered straggler when the
assumption was wrong (section 4.2.3).  This is what makes budget-constrained
searches slower (Table 3).  On engine-covered states the whole combo scan of
a budget node runs *batched* over the engine's per-layer arrays
(:meth:`DPSolver._solve_budget_batched`: dominance-answered straggler
iterations resolve in elementwise kernels, bit-identical to the scalar
recursion, which remains both as the fallback for genuinely binding suffix
budgets and -- with ``batched_budget_threading=False`` or
``enable_pruning=False`` -- as the equivalence-test reference).  Two further
mechanisms answer most queries without a fresh search:

* A *budget-dominance* shortcut: whenever the unconstrained optimum of a
  subproblem fits the remaining budget it is also the budgeted optimum, so
  only genuinely binding budgets enter the straggler loop.  Unlike
  branch-and-bound this shortcut is part of the algorithm (it is *not*
  disabled by ``enable_pruning=False``; it can only return equal-or-better
  solutions than the straggler approximation) and is covered by its own
  dominance property tests.
* **Interval-keyed budget memoisation.**  A suffix optimum found under
  budget ``b`` with cost ``c <= b`` is provably optimal for *every* budget
  in ``[c, b]``: a smaller budget ``b'`` in that range still admits the
  solution, and anything beating it under ``b'`` would also be feasible
  under ``b``, contradicting optimality.  (Symmetrically, infeasibility
  under ``b`` implies infeasibility for every ``b' <= b``.)  Budgeted memo
  entries therefore store the budget *interval* they answer instead of
  forking one entry per rounded budget the straggler loop proposes; every
  budget inside a stored interval is answered from the one entry.  The
  dominance shortcut is the special case ``[c, +inf)``.

  One honest caveat: the proof is exact for true optima, while the
  straggler loop only *approximates* the budgeted optimum, so answering a
  sub-budget from a stored interval is not always identical to re-running
  the approximation at that exact budget (a fresh run threads a different
  remaining budget and can land on a different approximate answer).  The
  reuse is deliberate -- the interval answer is a feasible solution whose
  optimality claim is at least as strong as the stored search's -- and the
  observed effect on the planner is bounded to occasional extra feasible
  candidates (chosen plans stayed byte-identical across the equivalence
  matrix); the budget property tests in ``tests/test_dp_solver.py`` pin
  the sound guarantees (budget respected, never beats brute force,
  non-binding budgets exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.budget import SearchBudget, SearchBudgetExhausted
from repro.core.hotpath import hot_path
from repro.core.objectives import OptimizationGoal
from repro.core.resource_state import (
    SHARED_ARGMIN_MAX_DENSITY,
    BudgetBoundTables,
    ResourceStateCodec,
    ResourceStateEngine,
    StageComboTable,
    StageKernelTable,
    compute_budget_bounds,
    compute_forward_layers,
    forward_signature,
)
from repro.core.search_cache import (
    PlannerSearchContext,
    ResourceKey,
    StageAssignment,
    StageOption,
    tp_options_key,
)
from repro.core.simulator.environment import SimulationEnvironment
from repro.models.partition import LayerPartition
from repro.models.spec import TrainingJobSpec


#: Type alias: remaining nodes keyed by (zone, node type).
ResourceMap = dict[tuple[str, str], int]

__all__ = [
    "DPSolution",
    "DPSolver",
    "DPSolverConfig",
    "ResourceMap",
    "SearchBudget",
    "SearchBudgetExhausted",
    "StageAssignment",
    "StageOption",
]


@dataclass
class DPSolution:
    """Best assignment found for a suffix of the pipeline."""

    assignments: list[StageAssignment]
    max_stage_time_s: float
    sum_stage_time_s: float
    max_sync_time_s: float
    cost_rate_usd_per_s: float

    def projected_iteration_time(self, num_microbatches: int) -> float:
        """Iteration-time estimate the DP optimises."""
        return (self.sum_stage_time_s
                + (num_microbatches - 1) * self.max_stage_time_s
                + self.max_sync_time_s)

    def projected_cost(self, num_microbatches: int) -> float:
        """Cost estimate (compute only) the DP uses under budget constraints."""
        return self.cost_rate_usd_per_s * self.projected_iteration_time(num_microbatches)

    @property
    def straggler_stage(self) -> int:
        """Index (within the suffix) of the slowest stage."""
        best = 0
        for i, assignment in enumerate(self.assignments):
            if assignment.compute_time_s > self.assignments[best].compute_time_s:
                best = i
        return best


@dataclass
class DPSolverConfig:
    """Knobs bounding the DP search."""

    max_combos_per_stage: int = 16
    max_mixed_types_per_stage: int = 2
    split_fractions: tuple[float, ...] = (0.25, 0.5, 0.75)
    #: Cap on the budget-split refinement loop of the budget-constrained
    #: search (an approximation knob: more iterations can only refine the
    #: split, never invalidate one).
    # lint: disable=cache-key -- consumed only inside one DPSolver instance,
    # whose interval memo dies with it; the cross-candidate budget-bound
    # tables are admissible floors independent of the refinement depth, so
    # no signature-keyed artifact can fork on this value.
    max_budget_iterations: int = 4
    #: Branch-and-bound pruning of DP branches that provably cannot beat the
    #: incumbent.  Value-preserving; off only for equivalence testing.
    enable_pruning: bool = True
    #: Layered-engine dispatch threshold: the engine's batched kernels
    #: amortise their fixed NumPy cost only when the per-stage state layers
    #: are wide, which ``prod(root count + 1)`` (an upper bound on any
    #: layer's size) predicts well.  Below the threshold the B&B recursion
    #: -- byte-identical by the equivalence suites -- is faster.  Tests set
    #: this to 0 to force the engine.
    engine_min_states: int = 100
    #: Budget-aware dispatch: with a budget constraint the engine pays for
    #: itself much earlier (its dominance tables and bound certificates
    #: answer most straggler-loop work in O(1), where the scalar recursion
    #: re-walks suffixes), so budgeted solves dispatch at
    #: ``min(engine_min_states, engine_min_states_budget)``.  Decision
    #: table (measured on the bench scenarios, see ROADMAP item 4):
    #:
    #: ==================  ============  =====================  ==========
    #: objective           state space   dispatch               why
    #: ==================  ============  =====================  ==========
    #: unconstrained       < 100         scalar recursion       NumPy call
    #:                                                          overhead
    #:                                                          dominates
    #: unconstrained       >= 100        engine                 batched
    #:                                                          layers win
    #: budget-constrained  < 32          scalar recursion       tiny pools
    #:                                                          still churn
    #:                                                          too few
    #:                                                          states
    #: budget-constrained  >= 32         engine                 0.52s vs
    #:                                                          0.68s on
    #:                                                          the 64-GPU
    #:                                                          (81-state)
    #:                                                          budget
    #:                                                          point
    #: ==================  ============  =====================  ==========
    #:
    #: Unconstrained 32/64-GPU points re-checked scalar-faster, so their
    #: threshold is unchanged.  Both regimes produce byte-identical plans
    #: (engine/scalar equivalence suites), so this is purely a latency
    #: knob.
    engine_min_states_budget: int = 32
    #: Share forward reachability layers across DP candidates through the
    #: search context (keyed by the per-stage footprint signature, so only
    #: byte-identical forward passes are ever reused).  Off only for
    #: equivalence testing.
    enable_layer_cache: bool = True
    #: Batch each budget node's straggler-loop combo scan over the engine's
    #: per-layer arrays (dominance-answered combos resolve in elementwise
    #: kernels; genuinely binding suffixes keep the scalar recursion).
    #: Value-identical to the scalar scan; off only for equivalence testing.
    batched_budget_threading: bool = True
    #: Straggler convergence/infeasibility certificates: monotone per-
    #: (stage, state) straggler and cost lower bounds (one batched pass
    #: over the engine layers on wide pools, a memoized scalar recursion on
    #: tiny ones) prove budget-infeasible suffix solves ``None`` -- and cut
    #: the straggler loop to its first iteration -- without re-solving.
    #: Outcome-identical by bound admissibility (see ``_solve_suffix``);
    #: off only for equivalence testing.
    enable_straggler_bound: bool = True
    #: Seed the straggler loop from the child's engine ``max_t``: when the
    #: suffix's unconstrained optimum dominates the budget even at the
    #: straggler the combined solution will discover, the loop's fixpoint
    #: is resolved before its first solve.  Exactly the scalar loop's
    #: iteration-1-dominance + iteration-2-re-probe collapsed; off only
    #: for equivalence testing.
    engine_seeded_straggler: bool = True
    #: Share the mbs-independent parts of the budget search's backward
    #: machinery across every candidate with the same forward layers:
    #: per-row combo columns/child rows (``ForwardLayers.row_cols``),
    #: whole-layer dominance tables (``engine.budget_tables``) and the
    #: context-cached bound tables.  (Sharing the *full* child-gather
    #: matrices of ``run_backward`` itself was measured slower at the
    #: 1024-GPU point -- retained intermediates beat the saved ops; see
    #: ``ForwardLayers._row_cols`` -- so those stay transient.)
    #: Bit-identical values either way; off only for equivalence testing.
    shared_backward: bool = True
    #: Resolve certified binding rows inside ``_solve_budget_batched``
    #: (per-combo straggler-bound certificates at the assumed and
    #: re-tested budgets) instead of falling back to the scalar recursion.
    #: Off only for equivalence testing.
    batched_layer_resolve: bool = True
    #: Score backward layers through the CSR skeleton of valid (state,
    #: combo) entries cached on the shared forward layers
    #: (``ForwardLayers.backward_csr``) -- at most the truncation limit of
    #: entries per state instead of the dense (rows, combos) product, with
    #: a segmented first-min replacing the dense argmin.  Bit-identical
    #: values and tie-breaks (segment order is master ranking order); the
    #: dense path stays as the equivalence reference.
    shared_backward_argmin: bool = True
    #: Density ceiling for routing a layer through the CSR kernel (valid
    #: entries / dense size; ``resource_state.SHARED_ARGMIN_MAX_DENSITY``).
    #: Dense layers are faster through the broadcast argmin, so the CSR
    #: route only engages once the truncation masks make a layer sparse;
    #: 1.0 forces the shared kernel everywhere (the equivalence suites do).
    #: A pure latency policy -- both routes are bit-identical.
    shared_backward_density: float = SHARED_ARGMIN_MAX_DENSITY
    #: Run the backward elementwise combine through the fused workspace
    #: kernel: ``np.take`` gathers into preallocated per-footprint scratch
    #: buffers hung off the shared forward layers plus a cached-signature
    #: ``np.einsum`` for the cost product, so a big layer allocates no
    #: (rows, combos)- or nnz-sized temporaries at all
    #: (``SearchStats.combine_fused_hits`` counts the layers served).
    #: Bit-identical by construction -- same operand order and the same
    #: IEEE op chain as the reference blocks, which stay in place both as
    #: the small-layer fast path (dispatch by measured block size,
    #: ``resource_state.FUSED_COMBINE_MIN_ELEMS``) and for the equivalence
    #: suites; off only for equivalence testing.
    fused_combine: bool = True

    def __post_init__(self) -> None:
        if self.max_combos_per_stage < 1:
            raise ValueError("max_combos_per_stage must be >= 1")
        if self.max_mixed_types_per_stage < 1:
            raise ValueError("max_mixed_types_per_stage must be >= 1")
        if self.max_budget_iterations < 1:
            # The straggler-approximation loop must run at least once, or
            # budget-constrained solves would fall through with no result.
            raise ValueError("max_budget_iterations must be >= 1")
        if self.engine_min_states < 0:
            raise ValueError("engine_min_states must be >= 0")
        if self.engine_min_states_budget < 0:
            raise ValueError("engine_min_states_budget must be >= 0")
        for fraction in self.split_fractions:
            if not 0.0 < fraction < 1.0:
                raise ValueError("split_fractions must lie strictly in (0, 1)")


#: Relative slack applied to cost-mode lower bounds: the cost bound divides
#: where the real cost rate ceils, so the two can differ by a rounding ulp.
_COST_BOUND_SLACK = 1.0 - 1e-12

#: Straggler-loop convergence tolerance: relative *plus* absolute, because a
#: purely absolute 1e-12 is below one float64 ulp once iteration times reach
#: hundreds of seconds (spacing at 512 s is ~1.1e-13 per ulp but compound
#: rounding across the combine easily exceeds 1e-12) -- the loop would then
#: burn its full ``max_budget_iterations`` re-solving on float noise.
_STRAGGLER_ABS_TOL = 1e-12
_STRAGGLER_REL_TOL = 1e-12


def straggler_converged(actual: float, assumed: float) -> bool:
    """True when the discovered straggler matches the assumed one.

    ``assumed`` is a stage compute time (never negative), so the relative
    term needs no ``abs``.
    """
    return actual <= assumed + (_STRAGGLER_ABS_TOL
                                + _STRAGGLER_REL_TOL * assumed)


class DPSolver:
    """Solves the per-stage resource-assignment problem for one (P, D, mbs)."""

    def __init__(self, env: SimulationEnvironment, job: TrainingJobSpec,
                 partitions: list[LayerPartition],
                 tp_options_per_stage: list[dict[str, list[int]]],
                 microbatch_size: int, data_parallel: int,
                 num_microbatches: int,
                 goal: OptimizationGoal = OptimizationGoal.MAX_THROUGHPUT,
                 config: DPSolverConfig | None = None,
                 context: PlannerSearchContext | None = None,
                 search_budget: SearchBudget | None = None) -> None:
        self.env = env
        #: Cooperative cancellation budget shared with the planner; ``None``
        #: (the default) leaves every hot loop uncancellable and
        #: byte-identical to the pre-anytime solver.
        self.search_budget = search_budget
        self.job = job
        self.partitions = partitions
        self.tp_options_per_stage = tp_options_per_stage
        self.microbatch_size = microbatch_size
        self.data_parallel = data_parallel
        self.num_microbatches = num_microbatches
        self.goal = goal
        self.config = config or DPSolverConfig()
        if context is not None and context.goal is not goal:
            # Combo ranking/truncation lives on the context; a mismatched
            # goal would silently rank by the wrong metric.
            raise ValueError(
                f"context goal {context.goal} does not match solver goal {goal}")
        self.context = context or PlannerSearchContext(env, job, goal)
        self._tp_keys = [tp_options_key(opts) for opts in tp_options_per_stage]
        # Per-solve state, rebuilt by :meth:`solve`: the resource-state
        # codec (array encoding of the root's states), per-stage combo
        # tables, per-state filtered combo views (child states and memo
        # keys precomputed), clamp vectors, admissible per-suffix bounds,
        # and the memos.  Memo keys are the stage index prefixed to the
        # state raw bytes, one dict per stage; budgeted entries live
        # in ``_budget_memo`` as interval lists (see the module docstring).
        self._root: ResourceKey = ()
        self._codec: ResourceStateCodec | None = None
        self._tables: list[StageComboTable | None] = [None] * len(partitions)
        self._engine: ResourceStateEngine | None = None
        self._mat_cache: dict[tuple[int, int], DPSolution] = {}
        self._budget_row_cache: dict[tuple[int, int], tuple] = {}
        #: Straggler/cost lower-bound tables (budget certificates): the
        #: engine-layer tables on wide pools, a per-(stage, state) memo for
        #: the scalar recursion on tiny ones.  Built lazily on the first
        #: budget node of a solve; ``_certs_active`` gates every use (off
        #: under ``enable_pruning=False`` -- the pristine reference --
        #: and under fork tracking, which must observe every query).
        self._bounds: BudgetBoundTables | None = None
        self._scalar_bound_memo: list[dict] = [{} for _ in partitions]
        self._certs_active = False
        self._seed_active = False
        self._forward_sig: tuple | None = None
        self._vector_states = True
        self._caps_list: list[tuple[int, ...]] = []
        self._memo: list[dict[bytes, tuple[DPSolution | None, bool, float]]] = \
            [{} for _ in partitions]
        self._budget_memo: list[dict[bytes, list[list]]] = \
            [{} for _ in partitions]
        self._combo_cache: list[dict[bytes, tuple]] = [{} for _ in partitions]
        self._clamp_active: list[bool] = [True] * len(partitions)
        self._caps_vec: list[np.ndarray] = []
        self._sfx_sum: list[float] = []
        self._sfx_max: list[float] = []
        self._sfx_rate: list[float] = []
        #: Layered-engine dispatch thresholds (see DPSolverConfig); kept as
        #: instance attributes so tests can force a regime per solver.
        self.engine_min_states = self.config.engine_min_states
        self.engine_min_states_budget = self.config.engine_min_states_budget
        #: Observability for the interval-memo property tests: when
        #: ``track_budget_forks`` is set (tests only; off the hot path by
        #: default), ``fork_keys`` collects the distinct ``(stage, state,
        #: rounded budget)`` triples the old per-budget memo would have
        #: keyed entries under, for comparison with ``budget_memo_entries``.
        self.track_budget_forks = False
        self.fork_keys: set[tuple] = set()
        self._prepare_clamps()

    @property
    def stats(self):
        """Search counters, shared with the context (and so the planner)."""
        return self.context.stats

    @property
    def nodes_explored(self) -> int:
        """DP subproblems expanded on this solver's context (back-compat).

        Stats live on the shared context, so with an injected context this
        is the total across *every* solver sharing it, not just this one;
        for a standalone solver (private context) the two coincide.
        """
        return self.context.stats.nodes_explored

    def budget_memo_entries(self) -> int:
        """Total interval entries currently stored in the budgeted memo."""
        return sum(len(entries)
                   for per_stage in self._budget_memo
                   for entries in per_stage.values())

    # -- public API ------------------------------------------------------------

    def solve(self, resources: ResourceMap,
              budget_per_iteration: float | None = None) -> DPSolution | None:
        """Assign resources to every stage; ``None`` when nothing fits.

        With a :class:`~repro.core.budget.SearchBudget` attached, a deadline
        or node-budget hit raises :class:`SearchBudgetExhausted` from the
        nearest cancellation point.  The exception is salvageable: progress
        counters (nodes explored, partial memo sizes) are attached before it
        propagates, the per-solve memos and the context's cross-candidate
        caches keep every subproblem completed so far, and the caller keeps
        its pre-deadline incumbent (see ``SailorPlanner._plan_branch``).
        """
        try:
            return self._solve_root(resources, budget_per_iteration)
        except SearchBudgetExhausted as exc:
            exc.attach(
                nodes_explored=self.stats.nodes_explored,
                stage_memo_entries=sum(len(memo) for memo in self._memo),
                budget_memo_entries=self.budget_memo_entries(),
            )
            raise

    def _solve_root(self, resources: ResourceMap,
                    budget_per_iteration: float | None = None,
                    ) -> DPSolution | None:
        num_stages = len(self.partitions)
        self._memo = [{} for _ in range(num_stages)]
        self._budget_memo = [{} for _ in range(num_stages)]
        self._combo_cache = [{} for _ in range(num_stages)]
        self._scalar_bound_memo = [{} for _ in range(num_stages)]
        self._bounds = None
        self._forward_sig = None
        self._certs_active = (self.config.enable_straggler_bound
                              and self.config.enable_pruning
                              and not self.track_budget_forks)
        # Seeding needs only the engine's dominance tables, not the bound
        # tables, so it stays available with the bound toggle off.
        self._seed_active = (self.config.engine_seeded_straggler
                             and self.config.enable_pruning
                             and not self.track_budget_forks)
        self.fork_keys.clear()
        root = tuple(sorted((key, count) for key, count in resources.items()
                            if count > 0))
        self._root = root
        codec = ResourceStateCodec(root)
        self._codec = codec
        self._tables = [None] * len(self.partitions)
        # A stage's suffix clamp can only ever bind if it binds on the root:
        # descendant states shrink, so when the root is under every cap the
        # clamp is a no-op for the whole search and can be skipped.
        self._clamp_active = [
            any(count > caps.get(node_type, 0)
                for (_, node_type), count in root)
            for caps in self._suffix_clamp[:len(self.partitions)]
        ]
        # Suffix clamps as per-slot cap vectors aligned with the slot order.
        self._caps_vec = [codec.caps_vector(caps)
                          for caps in self._suffix_clamp]
        if not self._prepare_bounds(root):
            return None  # some stage can be hosted by no available option
        state = codec.root_state
        if self._clamp_active[0]:
            state = codec.clamp(state, self._caps_vec[0])
        # Adaptive dispatch on the (upper bound of the) reachable state
        # space.  Wide pools: the layered engine answers unconstrained
        # solves outright (and the budget search's dominance probes), and
        # any remaining recursion runs on array states with the vectorized
        # kernels.  Tiny pools: the batched kernels cannot amortise their
        # fixed NumPy cost, so the recursion runs on plain int tuples with
        # scalar scans instead -- same fit order, same (struct-packed) memo
        # keys, byte-identical plans.  ``enable_pruning=False`` keeps the
        # plain exhaustive recursion as the independent reference the
        # equivalence property tests compare against.
        self._engine = None
        self._mat_cache = {}
        self._budget_row_cache = {}
        state_space = 1
        for count in codec.root_state.tolist():
            state_space *= count + 1
        # Budget-aware dispatch (decision table on DPSolverConfig): budget
        # solves profit from the engine on much smaller pools, so they use
        # the min of the two thresholds -- a test forcing the engine via
        # ``engine_min_states = 0`` still gets it in both regimes.
        threshold = self.engine_min_states
        if budget_per_iteration is not None:
            threshold = min(threshold, self.engine_min_states_budget)
        self._vector_states = state_space >= threshold
        if not self._vector_states:
            # Scalar mode keys memos on the state tuples themselves (the
            # original tuple encoding's keying; pack()-ing bytes here would
            # only add per-child overhead the small pool cannot amortise).
            self._caps_list = [tuple(caps.tolist()) for caps in self._caps_vec]
            scalar = tuple(state.tolist())
            return self._solve(0, scalar, budget_per_iteration, math.inf,
                               scalar)
        if self.config.enable_pruning:
            engine = self._build_engine(state)
            # Forward work is charged per candidate whether the layers were
            # computed fresh or served from the shared cache, so the search
            # counters are invariant across the layer-cache toggle (and
            # across the serial/parallel drivers, whose contexts see
            # different hit patterns).
            self.stats.nodes_explored += engine.states_computed
            self.stats.memo_hits += engine.dedup_hits
            self._engine = engine
            if budget_per_iteration is None:
                if not engine.feasible(0, 0):
                    return None
                return self._materialize(0, 0)
        return self._solve(0, state, budget_per_iteration, math.inf,
                           state.tobytes())

    def _build_engine(self, root_state: np.ndarray) -> ResourceStateEngine:
        """Assemble the per-stage kernel tables and the layered engine.

        The kernel tables extend the recursion's combo tables with eager
        per-combo scalar arrays (compute, sync, cost rate -- all served
        from the shared context's caches), and are installed into
        ``_tables`` so the budget recursion and :meth:`_combos_for_state`
        reuse the same objects.  The forward reachability layers -- which
        depend only on the root and the footprint matrices, not on the
        microbatch size -- are fetched from (or computed into) the search
        context's cross-candidate layer cache, keyed by
        :func:`~repro.core.resource_state.forward_signature`; the backward
        pass always runs per candidate.
        """
        tables: list[StageKernelTable] = []
        context = self.context
        for stage_index, partition in enumerate(self.partitions):
            master = self._master_combos(stage_index, self._root)
            plain = self._codec.combo_table(master)
            table = StageKernelTable(
                entries=plain.entries,
                req=plain.req,
                pairs=plain.pairs,
                compute=np.array([entry[4] for entry in master]),
                sync=np.array([context.stage_sync_time(
                    partition, self.data_parallel, entry[0])
                    for entry in master]),
                rate=np.array([context.stage_cost_rate(entry[0])
                               for entry in master]),
            )
            tables.append(table)
            self._tables[stage_index] = table
        reqs = [table.req for table in tables]
        limit = self.config.max_combos_per_stage

        def build():
            # A budget interrupt mid-pass propagates out of the context's
            # cache fill, so partially-built layers are never cached.
            return compute_forward_layers(reqs, self._caps_vec,
                                          self._clamp_active, limit,
                                          root_state,
                                          search_budget=self.search_budget)

        signature = forward_signature(root_state, reqs, self._caps_vec,
                                      self._clamp_active, limit)
        self._forward_sig = signature
        if self.config.enable_layer_cache:
            forward = context.forward_layers(signature, build)
        else:
            forward = build()
        engine = ResourceStateEngine(
            self._codec, tables, forward, self.num_microbatches,
            self.goal is OptimizationGoal.MIN_COST,
            search_budget=self.search_budget,
            shared_argmin=self.config.shared_backward_argmin,
            shared_argmin_max_density=self.config.shared_backward_density,
            fused_combine=self.config.fused_combine)
        engine.run_backward()
        self.stats.backward_shared_hits += engine.shared_skeleton_hits
        self.stats.combine_fused_hits += engine.combine_fused_hits
        return engine

    def _materialize(self, stage_index: int, row: int) -> DPSolution:
        """Build the DPSolution of one engine row from its backpointers.

        Only requested rows (the root; the budget search's dominance hits)
        ever construct ``StageAssignment`` objects, and the fold uses the
        same ``_combine`` the recursion uses, so the materialised fields
        are bit-identical to a recursive solve.
        """
        cached = self._mat_cache.get((stage_index, row))
        if cached is not None:
            return cached
        combo, child = self._engine.backpointer(stage_index, row)
        entry = self._tables[stage_index].entries[combo]
        assignment = entry[2]
        if assignment is None:
            assignment = self.context.build_stage_assignment(
                self.partitions[stage_index], self.microbatch_size,
                self.data_parallel, entry[0], nodes_used=entry[1],
                compute_time_s=entry[4])
            entry[2] = assignment
        if stage_index == len(self.partitions) - 1:
            solution = DPSolution(
                assignments=[assignment],
                max_stage_time_s=assignment.compute_time_s,
                sum_stage_time_s=assignment.compute_time_s,
                max_sync_time_s=assignment.sync_time_s,
                cost_rate_usd_per_s=assignment.cost_rate_usd_per_s,
            )
        else:
            solution = self._combine(assignment,
                                     self._materialize(stage_index + 1, child))
        self._mat_cache[(stage_index, row)] = solution
        return solution

    # -- stage metrics -----------------------------------------------------------

    def stage_compute_time(self, stage_index: int, node_type: str,
                           tensor_parallel: int) -> float:
        """Per-microbatch forward+backward time of a stage on one option."""
        return self.context.stage_compute_time(
            self.partitions[stage_index], self.microbatch_size, node_type,
            tensor_parallel)

    def stage_sync_time(self, stage_index: int,
                        placements: list[tuple[StageOption, int]]) -> float:
        """Approximate gradient all-reduce time of a stage's replicas."""
        return self.context.stage_sync_time(
            self.partitions[stage_index], self.data_parallel, tuple(placements))

    def stage_cost_rate(self, placements: list[tuple[StageOption, int]]) -> float:
        """USD per second of the whole nodes a stage occupies."""
        return self.context.stage_cost_rate(tuple(placements))

    # -- combo generation ---------------------------------------------------------

    def generate_combos(self, stage_index: int,
                        resources: ResourceMap | ResourceKey,
                        ) -> list[tuple[tuple[StageOption, int], ...]]:
        """Resource combos able to host the stage's ``D`` replicas.

        Honours H5 (one region per stage); ranked by implied stage compute
        time (cost rate under the cost objective) and truncated to
        ``max_combos_per_stage``.  Cached on the shared context.
        """
        if isinstance(resources, dict):
            resources = tuple(sorted((key, count)
                              for key, count in resources.items() if count > 0))
        master = self._master_combos(stage_index, resources)
        limit = self.config.max_combos_per_stage
        return [entry[0] for entry in master[:limit]]

    def _master_combos(self, stage_index: int,
                       resources: ResourceKey) -> list:
        """Untruncated sorted combo list for a stage from ``resources``."""
        return self.context.stage_master_combos(
            self.partitions[stage_index], self.microbatch_size,
            self.data_parallel, self.tp_options_per_stage[stage_index],
            self._tp_keys[stage_index],
            self._clamp(resources, self._stage_clamp[stage_index]),
            self.config.max_mixed_types_per_stage,
            self.config.split_fractions)

    def _stage_table(self, stage_index: int) -> StageComboTable:
        """The stage's master combos with footprints packed for the codec."""
        table = self._tables[stage_index]
        if table is None:
            master = self._master_combos(stage_index, self._root)
            table = (self._codec.combo_table(master) if self._vector_states
                     else self._codec.combo_pairs(master))
            self._tables[stage_index] = table
        return table

    def _combos_for_state(self, stage_index: int, state,
                          key: bytes) -> tuple[list, np.ndarray | None]:
        """Combos of the root master list that fit one resource state.

        A combo generated from a resource subset is exactly a root combo
        whose whole-node footprint fits the subset, so one vectorized fit
        test against the stage's precomputed
        :class:`~repro.core.resource_state.StageComboTable` (already in
        ranking order) truncated at ``max_combos_per_stage`` reproduces the
        per-state enumeration at a fraction of the cost.  Returns
        ``([(entry, row, child memo key), ...], children)`` where
        ``children[row]`` is the state minus the entry's footprint,
        pre-clamped at the *next* stage's caps, and the child keys are
        sliced out of the matrix's single ``tobytes`` blob (memos are
        per-stage dicts, so a state's raw bytes are the whole key) -- the
        recursion does no per-combo state arithmetic at all (``children``
        is ``None`` for the last stage, which has no recursion).  Cached
        per ``(stage, state)``.
        """
        cache = self._combo_cache[stage_index]
        cached = cache.get(key)
        if cached is not None:
            return cached
        codec = self._codec
        table = self._stage_table(stage_index)
        limit = self.config.max_combos_per_stage
        is_last = stage_index == len(self.partitions) - 1
        next_stage = stage_index + 1

        if not self._vector_states:
            # Scalar build over tuple states (small pools): the same
            # first-`limit` fit scan in master order.  The cached rows are
            # *references* to the stage's shared (entry, needs) pairs --
            # no per-state allocations survive the scan (allocation churn
            # here shows up as whole-solve GC pauses), and the recursion
            # subtracts children per visit exactly like the original tuple
            # encoding did.
            fitting = []
            found = 0
            for pair in table.pairs:
                for slot, used in pair[1]:
                    if state[slot] < used:
                        break
                else:
                    fitting.append(pair)
                    found += 1
                    if found >= limit:
                        break
            cached = (fitting, None)
            cache[key] = cached
            return cached

        idx = codec.fitting_combos(table, state, limit)
        entries = table.entries
        rows = idx.tolist()
        if is_last:
            children = None
            fitting = [(entries[i], n, None) for n, i in enumerate(rows)]
        else:
            children = state - table.req[idx]
            if self._clamp_active[next_stage]:
                children = np.minimum(children, self._caps_vec[next_stage])
            blob = children.tobytes()
            width = children.shape[1] * children.itemsize
            fitting = [(entries[i], n, blob[n * width:(n + 1) * width])
                       for n, i in enumerate(rows)]
        cached = (fitting, children)
        cache[key] = cached
        return cached

    # -- resource clamping --------------------------------------------------------

    def _prepare_clamps(self) -> None:
        """Precompute how many whole nodes of each type a stage can use.

        A stage hosting ``D`` replicas never occupies more than
        ``ceil(D / min replicas-per-node)`` nodes of one (zone, node type),
        and a pipeline suffix never more than the sum over its stages.
        Counts beyond those caps cannot influence any reachable assignment,
        so clamping them canonicalises the resource state: memo keys and
        combo-cache keys collapse across states that differ only in unusable
        surplus, which is where most cross-candidate reuse comes from.
        """
        num_stages = len(self.partitions)
        per_stage: list[dict[str, int]] = []
        for tp_options in self.tp_options_per_stage:
            stage_cap: dict[str, int] = {}
            for node_type, degrees in tp_options.items():
                gpus = self.context.gpus_per_node(node_type)
                min_rpn = min(max(1, gpus // tp) for tp in degrees)
                stage_cap[node_type] = math.ceil(self.data_parallel / min_rpn)
            per_stage.append(stage_cap)
        suffix: list[dict[str, int]] = [{} for _ in range(num_stages + 1)]
        for j in range(num_stages - 1, -1, -1):
            merged = dict(suffix[j + 1])
            for node_type, cap in per_stage[j].items():
                merged[node_type] = merged.get(node_type, 0) + cap
            suffix[j] = merged
        self._stage_clamp = per_stage
        self._suffix_clamp = suffix

    @staticmethod
    def _clamp(resources: ResourceKey, caps: dict[str, int]) -> ResourceKey:
        """Clamp counts at ``caps`` per node type; drop unusable types.

        Returns the input tuple unchanged (same object) when nothing caps,
        so the common case allocates nothing.  (This is the *tuple-form*
        clamp used for context cache keys; states inside the recursion use
        the codec's vectorized clamp.)
        """
        changed = False
        for (_, node_type), count in resources:
            if count > caps.get(node_type, 0):
                changed = True
                break
        if not changed:
            return resources
        clamped: list[tuple[tuple[str, str], int]] = []
        for key, count in resources:
            cap = caps.get(key[1], 0)
            if cap <= 0:
                continue
            clamped.append((key, count if count <= cap else cap))
        return tuple(clamped)

    # -- bounds -------------------------------------------------------------------

    def _prepare_bounds(self, root: ResourceKey) -> bool:
        """Precompute admissible per-suffix bounds from the root resources.

        ``_sfx_sum[j]`` / ``_sfx_max[j]`` bound the best achievable sum/max
        compute time of stages ``j..P-1``; ``_sfx_rate[j]`` the best
        achievable cost rate.  They are built from the cheapest options the
        *root* resource pool offers, which every reachable resource subset
        can only shrink -- hence admissibility.  Returns ``False`` when a
        stage has no feasible option at all (the search cannot succeed).
        """
        num_stages = len(self.partitions)
        best_time: list[float] = []
        best_rate: list[float] = []
        for stage_index in range(num_stages):
            options = self.context.stage_options(
                self.tp_options_per_stage[stage_index],
                self._tp_keys[stage_index],
                self._clamp(root, self._stage_clamp[stage_index]))
            if not options:
                return False
            partition = self.partitions[stage_index]
            best_time.append(min(
                self.context.stage_compute_time(partition,
                                                self.microbatch_size,
                                                opt.node_type,
                                                opt.tensor_parallel)
                for opt, _ in options))
            best_rate.append(self.data_parallel * min(
                (self.context.gpus_per_node(opt.node_type)
                 * self.context.gpu_price_per_second(opt.node_type))
                / opt.replicas_per_node
                for opt, _ in options))

        self._sfx_sum = [0.0] * (num_stages + 1)
        self._sfx_max = [0.0] * (num_stages + 1)
        self._sfx_rate = [0.0] * (num_stages + 1)
        for j in range(num_stages - 1, -1, -1):
            # Same (right-leaning) association as _combine builds solutions
            # with, so floating-point monotonicity keeps the bound admissible.
            self._sfx_sum[j] = best_time[j] + self._sfx_sum[j + 1]
            self._sfx_max[j] = max(best_time[j], self._sfx_max[j + 1])
            self._sfx_rate[j] = best_rate[j] + self._sfx_rate[j + 1]
        return True

    def _value(self, solution: DPSolution) -> float:
        """Scalar the DP minimises (iteration time, or cost under MIN_COST)."""
        if self.goal is OptimizationGoal.MIN_COST:
            return solution.projected_cost(self.num_microbatches)
        return solution.projected_iteration_time(self.num_microbatches)

    def _suffix_lower_bound(self, stage_index: int,
                            assignment: StageAssignment) -> float:
        """Admissible lower bound on any solution that assigns ``assignment``
        to ``stage_index`` and completes the remaining stages somehow."""
        after = stage_index + 1
        t_a = assignment.compute_time_s
        sum_lb = t_a + self._sfx_sum[after]
        max_lb = t_a if t_a >= self._sfx_max[after] else self._sfx_max[after]
        time_lb = (sum_lb + (self.num_microbatches - 1) * max_lb
                   + assignment.sync_time_s)
        if self.goal is OptimizationGoal.MIN_COST:
            rate_lb = assignment.cost_rate_usd_per_s + self._sfx_rate[after]
            return rate_lb * time_lb * _COST_BOUND_SLACK
        return time_lb

    # -- budget interval memo ------------------------------------------------------

    def _budget_lookup(self, stage_index: int, key: bytes, budget: float,
                       upper_bound: float) -> tuple | None:
        """Interval entry answering ``budget`` under the caller's bound.

        An entry ``[lo, hi, solution, exact, bound]`` answers every budget
        in ``[lo, hi]`` (module docstring has the proof); a bound-limited
        entry additionally requires the caller's bound to be at least as
        strict, exactly like the unbudgeted memo.
        """
        entries = self._budget_memo[stage_index].get(key)
        if entries is None:
            return None
        for entry in entries:
            if (entry[0] <= budget <= entry[1]
                    and (entry[3] or upper_bound <= entry[4])):
                return entry
        return None

    def _budget_store(self, stage_index: int, key: bytes, lo: float,
                      hi: float, solution: DPSolution | None, exact: bool,
                      bound: float) -> None:
        """Record one interval entry, widening an existing compatible one.

        A re-solve of the same subproblem at a new budget usually returns
        the *same* solution object (served from the unbudgeted memo via
        dominance) -- those merge into one wider interval instead of
        forking, which is where the entry-count drop vs per-budget keying
        comes from.
        """
        if exact:
            bound = math.inf  # lookups ignore the bound on exact entries
        memo = self._budget_memo[stage_index]
        entries = memo.get(key)
        if entries is None:
            memo[key] = [[lo, hi, solution, exact, bound]]
            return
        for entry in entries:
            if (entry[2] is solution and entry[3] == exact
                    and entry[4] == bound and entry[0] == lo):
                if hi > entry[1]:
                    entry[1] = hi
                return
        entries.append([lo, hi, solution, exact, bound])

    # -- budget certificates (straggler/cost lower bounds) ------------------------

    def _engine_bounds(self) -> BudgetBoundTables:
        """Bound tables over the engine layers, built on first budget use.

        One batched backward pass (``compute_budget_bounds``); shared
        across candidates through the search context when the backward
        sharing toggle is on -- the key captures everything the pass reads
        (forward signature, microbatch count, per-stage compute/cost/sync
        scalars -- sync entered the pass with the folded sync floor, and it
        varies with the data-parallel degree, so omitting it would alias
        candidates), so only bit-identical tables are ever reused.
        """
        bounds = self._bounds
        if bounds is None:
            tables = self._tables
            forward = self._engine.forward
            nb = self.num_microbatches

            def build():
                return compute_budget_bounds(
                    forward, tables, nb, search_budget=self.search_budget)

            if self.config.shared_backward:
                signature = (self._forward_sig, nb,
                             tuple(t.compute.tobytes() for t in tables),
                             tuple(t.rate.tobytes() for t in tables),
                             tuple(t.sync.tobytes() for t in tables))
                bounds = self.context.budget_bounds(signature, build)
            else:
                bounds = build()
            self._bounds = bounds
        return bounds

    def _scalar_bound(self, stage_index: int, state: tuple,
                      key: tuple) -> tuple:
        """Scalar-mode bound recursion: ``(straggler_lb, decomposable cost,
        rate_lb, sum_lb, sync_lb, cost_lb)`` of one tuple state, memoized.

        The tiny-pool counterpart of ``compute_budget_bounds`` -- same five
        admissible quantities, same sync-folded product/decomposable cost
        bound (see that function's docstring for the admissibility
        argument, including why sync folds in and egress must not), same
        slack -- computed over the recursion's own per-state combo cache
        (one memoized pass over the unconstrained reachable space, which a
        binding budget search walks anyway).  All-``inf`` marks an
        infeasible suffix.
        """
        memo = self._scalar_bound_memo[stage_index]
        cached = memo.get(key)
        if cached is not None:
            return cached
        if self.search_budget is not None:
            self.search_budget.tick()
        nb = self.num_microbatches
        combos, _ = self._combos_for_state(stage_index, state, key)
        is_last = stage_index == len(self.partitions) - 1
        next_stage = stage_index + 1
        caps = None
        if not is_last and self._clamp_active[next_stage]:
            caps = self._caps_list[next_stage]
        context = self.context
        partition = self.partitions[stage_index]
        dp = self.data_parallel
        best_s = best_d = best_r = best_u = best_m = math.inf
        for entry, pairs in combos:
            t_c = entry[4]
            rate = context.stage_cost_rate(entry[0])
            sync = context.stage_sync_time(partition, dp, entry[0])
            if is_last:
                s, d, r, u, m = t_c, rate * (nb * t_c), rate, t_c, sync
            else:
                child = list(state)
                for slot, used in pairs:
                    child[slot] -= used
                if caps is not None:
                    child = [count if count <= cap else cap
                             for count, cap in zip(child, caps)]
                child_state = tuple(child)
                c_s, c_d, c_r, c_u, c_m, _ = self._scalar_bound(
                    next_stage, child_state, child_state)
                if c_s == math.inf:
                    continue
                s = t_c if t_c >= c_s else c_s
                d = rate * (nb * t_c) + c_d
                r = rate + c_r
                u = t_c + c_u
                m = sync if sync >= c_m else c_m
            if s < best_s:
                best_s = s
            if d < best_d:
                best_d = d
            if r < best_r:
                best_r = r
            if u < best_u:
                best_u = u
            if m < best_m:
                best_m = m
        if best_s == math.inf:
            result = (math.inf, math.inf, math.inf, math.inf, math.inf,
                      math.inf)
        else:
            product = best_r * (best_u + (nb - 1) * best_s + best_m)
            decomposable = best_d + best_r * best_m
            cost = ((decomposable if decomposable >= product else product)
                    * _COST_BOUND_SLACK)
            result = (best_s, best_d, best_r, best_u, best_m, cost)
        memo[key] = result
        return result

    # -- recursion ------------------------------------------------------------------

    def _solve(self, stage_index: int, resources,
               budget: float | None, upper_bound: float,
               key: bytes | None = None) -> DPSolution | None:
        """Best assignment of stages ``stage_index..P-1`` from ``resources``.

        ``resources`` is an array-encoded state, already clamped at this
        stage's caps (the root is clamped by :meth:`solve`, children by
        :meth:`_combos_for_state`); ``key`` is its memo key when the caller
        already has it.
        """
        if key is None:
            key = (resources if isinstance(resources, tuple)
                   else resources.tobytes())
        nb = self.num_microbatches
        if budget is None:
            entry = self._memo[stage_index].get(key)
            if entry is not None:
                solution, exact, bound = entry
                # A bound-limited entry only proves "nothing beats `bound`";
                # it can be reused when the caller's bound is at least as
                # strict.
                if exact or upper_bound <= bound:
                    self.stats.memo_hits += 1
                    return solution
        else:
            if self.track_budget_forks:
                # Keyed on the exact budget float: rounding to 6 decimals
                # collided budgets differing below 1e-6 USD and undercounted
                # distinct forks (the stat the interval-memo property tests
                # compare entry counts against).
                self.fork_keys.add((stage_index, key, budget))
            hit = self._budget_lookup(stage_index, key, budget, upper_bound)
            if hit is not None:
                self.stats.memo_hits += 1
                return hit[2]
        self.stats.nodes_explored += 1
        guard = self.search_budget
        if guard is not None:
            guard.tick()

        if budget is not None:
            # Budget dominance: the unconstrained optimum of this subproblem
            # is shared by every budget the straggler loop proposes.  When
            # it fits the remaining budget it is also the budgeted optimum
            # (the constraint is inactive at the optimum), valid for every
            # budget down to its own cost -- the interval [cost, +inf).
            # When the subproblem is infeasible outright, so is every
            # budgeted variant: (-inf, +inf).  Only genuinely binding
            # budgets fall through to the budget-threaded search.  The
            # layered engine answers the probe in O(1) from its
            # already-computed table (including the projected cost, so
            # binding probes materialise nothing); the recursive fallback
            # covers ``enable_pruning=False``.
            engine = self._engine
            row = (engine.row_for_key(stage_index, key)
                   if engine is not None else None)
            if row is not None:
                if not engine.feasible(stage_index, row):
                    self._budget_store(stage_index, key, -math.inf, math.inf,
                                       None, True, math.inf)
                    return None
                cost = engine.projected_cost(stage_index, row)
                if cost <= budget:
                    unconstrained = self._materialize(stage_index, row)
                    self._budget_store(stage_index, key, cost, math.inf,
                                       unconstrained, True, math.inf)
                    return unconstrained
                if (self._certs_active
                        and self._engine_bounds().cost_lb[stage_index][row]
                        > budget):
                    # Certificate: every solution in this node's search
                    # space costs more than the budget (a budgeted scan
                    # only ever returns budget-respecting solutions, so
                    # it would come back empty) -- true infeasibility,
                    # valid for every budget at or below this one.
                    self.stats.suffix_certified += 1
                    self._budget_store(stage_index, key, -math.inf, budget,
                                       None, True, math.inf)
                    return None
                if (self.config.batched_budget_threading
                        and not self.track_budget_forks):
                    # Genuinely binding budget on an engine-covered state:
                    # scan the whole combo row threaded through the engine
                    # layers.  Fork tracking must observe every suffix
                    # query in _solve, so it pins the scalar scan (same
                    # guard as _solve_suffix's inline memo probe).
                    return self._solve_budget_batched(stage_index, key, row,
                                                      budget, upper_bound)
            else:
                unconstrained = self._solve(stage_index, resources, None,
                                            math.inf, key)
                if unconstrained is None:
                    self._budget_store(stage_index, key, -math.inf, math.inf,
                                       None, True, math.inf)
                    return None
                cost = unconstrained.projected_cost(nb)
                if cost <= budget:
                    self._budget_store(stage_index, key, cost, math.inf,
                                       unconstrained, True, math.inf)
                    return unconstrained
                if (self._certs_active and not self._vector_states
                        and self._scalar_bound(stage_index, resources,
                                               key)[5] > budget):
                    # Scalar-mode node certificate (tiny pools): same true
                    # infeasibility proof as the engine-layer bound above.
                    self.stats.suffix_certified += 1
                    self._budget_store(stage_index, key, -math.inf, budget,
                                       None, True, math.inf)
                    return None

        stats = self.stats
        context = self.context
        partition = self.partitions[stage_index]
        best: DPSolution | None = None
        best_value = math.inf
        pruning = self.config.enable_pruning
        combos, children = self._combos_for_state(stage_index, resources, key)
        is_last = stage_index == len(self.partitions) - 1
        next_stage = stage_index + 1
        child_memo = None if is_last else self._memo[next_stage]
        # Hot-loop locals: the suffix bound and candidate scoring below are
        # the inlined, allocation-free forms of _suffix_lower_bound /
        # _combine + _value -- the exact same floating-point operations in
        # the same order, minus the per-combo call and DPSolution overhead.
        nb1 = nb - 1
        is_cost = self.goal is OptimizationGoal.MIN_COST
        sum_after = self._sfx_sum[next_stage]
        max_after = self._sfx_max[next_stage]
        rate_after = self._sfx_rate[next_stage]
        # Scalar rows fill their child state/key lazily (see
        # _combos_for_state); these locals serve that first-visit build.
        vector = self._vector_states
        if not vector and not is_last:
            scalar_caps = (self._caps_list[next_stage]
                           if self._clamp_active[next_stage] else None)

        for combo_index, combo in enumerate(combos):
            entry = combo[0]
            assignment = entry[2]
            if assignment is None:
                assignment = context.build_stage_assignment(
                    partition, self.microbatch_size, self.data_parallel,
                    entry[0], nodes_used=entry[1], compute_time_s=entry[4])
                entry[2] = assignment
            t_a = assignment.compute_time_s
            sync_a = assignment.sync_time_s
            if is_last:
                time_v = t_a + nb1 * t_a + sync_a
                if is_cost or budget is not None:
                    cost_v = assignment.cost_rate_usd_per_s * time_v
                if budget is not None and cost_v > budget:
                    continue
                value = cost_v if is_cost else time_v
                if value < best_value:
                    best = DPSolution(
                        assignments=[assignment],
                        max_stage_time_s=t_a,
                        sum_stage_time_s=t_a,
                        max_sync_time_s=sync_a,
                        cost_rate_usd_per_s=assignment.cost_rate_usd_per_s,
                    )
                    best_value = value
                continue

            cutoff = upper_bound if upper_bound < best_value else best_value
            if pruning:
                sum_lb = t_a + sum_after
                max_lb = t_a if t_a >= max_after else max_after
                base_lb = sum_lb + nb1 * max_lb
                if is_cost:
                    bound = ((assignment.cost_rate_usd_per_s + rate_after)
                             * (base_lb + sync_a) * _COST_BOUND_SLACK)
                    if bound >= cutoff:
                        stats.pruned_branches += 1
                        continue
                elif base_lb >= cutoff:
                    # Combos are sorted by stage compute time, and the
                    # sync-free bound is monotone in it (IEEE-754 add/mul
                    # are monotone), so every remaining combo's individual
                    # bound check would also prune: cut the whole tail.
                    stats.pruned_branches += len(combos) - combo_index
                    break
                elif base_lb + sync_a >= cutoff:
                    stats.pruned_branches += 1
                    continue

            if vector:
                child_key = combo[2]
                child_state = None  # children[combo[1]], fetched on miss
            else:
                child = list(resources)
                for slot, used in combo[1]:
                    child[slot] -= used
                if scalar_caps is not None:
                    child = [count if count <= cap else cap
                             for count, cap in zip(child, scalar_caps)]
                child_state = tuple(child)
                child_key = child_state

            if budget is None:
                # Inlined fast path: memo probe on the precomputed child key
                # without the call overhead of _solve (the overwhelmingly
                # common hit case); the bound matches _child_bound exactly.
                if not pruning or cutoff == math.inf:
                    child_bound = math.inf
                elif is_cost:
                    child_bound = cutoff
                else:
                    child_bound = (cutoff - t_a) * (1.0 + 1e-12)
                child_entry = child_memo.get(child_key)
                if child_entry is not None and (
                        child_entry[1] or child_bound <= child_entry[2]):
                    stats.memo_hits += 1
                    suffix = child_entry[0]
                else:
                    if child_state is None:
                        child_state = children[combo[1]]
                    suffix = self._solve(next_stage, child_state, None,
                                         child_bound, child_key)
                if suffix is None:
                    continue
                sum_t = t_a + suffix.sum_stage_time_s
                s_max = suffix.max_stage_time_s
                max_t = t_a if t_a >= s_max else s_max
                s_sync = suffix.max_sync_time_s
                sync_t = sync_a if sync_a >= s_sync else s_sync
                time_v = sum_t + nb1 * max_t + sync_t
                if is_cost:
                    value = (assignment.cost_rate_usd_per_s
                             + suffix.cost_rate_usd_per_s) * time_v
                else:
                    value = time_v
                if value < best_value:
                    best = DPSolution(
                        assignments=[assignment] + suffix.assignments,
                        max_stage_time_s=max_t,
                        sum_stage_time_s=sum_t,
                        max_sync_time_s=sync_t,
                        cost_rate_usd_per_s=(assignment.cost_rate_usd_per_s
                                             + suffix.cost_rate_usd_per_s),
                    )
                    best_value = value
                continue

            if child_state is None:
                child_state = children[combo[1]]
            candidate = self._solve_suffix(
                stage_index, assignment, child_state, child_key, budget,
                cutoff if pruning else math.inf)
            if candidate is None:
                continue
            value = self._value(candidate)
            if value < best_value:
                best, best_value = candidate, value

        # best_value < upper_bound proves optimality: every pruned branch had
        # a lower bound >= min(upper_bound, incumbent-at-the-time) and the
        # incumbent only improves, so nothing better was discarded.
        exact = best_value < upper_bound or upper_bound == math.inf
        if budget is None:
            self._memo[stage_index][key] = (best, exact, upper_bound)
        else:
            # The found optimum answers every budget down to its own cost;
            # an infeasible result, every budget below the one that failed.
            lo = best.projected_cost(nb) if best is not None else -math.inf
            self._budget_store(stage_index, key, lo, budget, best, exact,
                               upper_bound)
        return best

    def _budget_row(self, stage_index: int, row: int, is_last: bool) -> tuple:
        """Per-(stage, row) scalars the batched budget scan threads through.

        One gather per engine row -- the combo columns plus this stage's
        ``(t, sync, rate)`` and the children's unconstrained ``(sum, max,
        sync, rate, cost, feasible)`` -- converted from the engine's layer
        arrays to plain Python floats once and reused by every budget the
        straggler search proposes for the row.  (A per-node NumPy variant
        was measured *slower*: the combo rows are capped at
        ``max_combos_per_stage``, far too short to amortise array-op
        overhead per node, while this gather-once + scalar-thread layout
        cuts the recursion's per-combo call machinery outright.)
        """
        cached = self._budget_row_cache.get((stage_index, row))
        if cached is not None:
            return cached
        engine = self._engine
        table = self._tables[stage_index]
        if self.config.shared_backward:
            # The column/child indices are forward-only, so the (possibly
            # cross-candidate) forward layers cache them once for every
            # candidate; only the scalar gathers below are per candidate.
            cols, child = engine.forward.row_cols(stage_index, row, is_last)
        elif is_last:
            cols = engine.forward.last_sel[row].nonzero()[0]
            child = None
        else:
            crow = engine.forward.child_row[stage_index][row]
            cols = (crow >= 0).nonzero()[0]
            child = crow[cols]
        if is_last:
            entry = (cols.tolist(), table.compute[cols].tolist(),
                     table.sync[cols].tolist(), table.rate[cols].tolist(),
                     None, None, None, None, None, None, None, None)
        else:
            next_stage = stage_index + 1
            if self.config.shared_backward:
                # Whole-layer dominance tables: one vectorized pass per
                # layer, per-element bit-identical to the per-row gather.
                cost_vec, feas_vec = engine.budget_tables(next_stage)
                cost_unc = cost_vec[child]
                feasible = feas_vec[child]
            else:
                rate_gather = engine.rate[next_stage][child]
                # Elementwise product == engine.projected_cost per row.
                cost_unc = rate_gather * engine.time_value[next_stage][child]
                feasible = np.isfinite(engine.value[next_stage][child])
            clb = None
            if self._certs_active and self.config.batched_layer_resolve:
                clb = (self._engine_bounds().cost_lb[next_stage][child]
                       .tolist())
            entry = (cols.tolist(), table.compute[cols].tolist(),
                     table.sync[cols].tolist(), table.rate[cols].tolist(),
                     child.tolist(),
                     engine.sum_t[next_stage][child].tolist(),
                     engine.max_t[next_stage][child].tolist(),
                     engine.sync_t[next_stage][child].tolist(),
                     engine.rate[next_stage][child].tolist(),
                     cost_unc.tolist(),
                     feasible.tolist(),
                     clb)
        self._budget_row_cache[(stage_index, row)] = entry
        return entry

    @hot_path
    def _solve_budget_batched(self, stage_index: int, key: bytes, row: int,
                              budget: float,
                              upper_bound: float) -> DPSolution | None:
        """One budget node's combo scan threaded through the engine layers.

        Replaces the scalar per-combo straggler recursion for states the
        layered engine covers.  The straggler-approximation loop's suffix
        solves are, in the overwhelmingly common case, answered by budget
        dominance (the suffix's unconstrained optimum fits the remaining
        budget) -- and the engine's backward arrays already hold every
        child's unconstrained ``(sum, max, sync, rate)`` quadruple and
        projected cost (gathered once per row by :meth:`_budget_row`), so
        those combos resolve inline without the recursion's per-combo
        ``_solve`` call, memo probes, suffix materialisation or
        ``_combine`` allocation:

        * iteration 1 assumes the stage is the straggler (``rb1 = budget -
          rate * Nb * t``); children whose unconstrained cost fits ``rb1``
          take their engine optimum as the suffix, and the combined
          quadruple/value is computed with the exact op order of
          ``_combine`` / ``_value`` (bit-identical floats, same first-min
          tie-break);
        * a combo whose discovered straggler exceeds the assumption
          re-tests dominance at the tightened budget (``rb2``); when it
          still holds the suffix is unchanged, so the loop's fixpoint is
          reached with the same combined solution the scalar recursion
          returns;
        * only combos with a genuinely binding suffix budget fall back to
          the scalar straggler recursion (:meth:`_solve_suffix`), threaded
          with the same running-incumbent cutoff the scalar scan uses --
          and the same B&B bound checks (including the sorted-combo tail
          cut) guard every combo first, exactly as in :meth:`_solve`.

        Only the winning combo ever materialises ``StageAssignment`` /
        ``DPSolution`` objects; the scalar path materialised every
        dominance-answered suffix it probed.
        """
        nb = self.num_microbatches
        nb1 = nb - 1
        is_cost = self.goal is OptimizationGoal.MIN_COST
        is_last = stage_index == len(self.partitions) - 1
        next_stage = stage_index + 1
        stats = self.stats
        table = self._tables[stage_index]
        (cols, t_list, sync_list, rate_list, child_list, sum_list, max_list,
         sync_c_list, rate_c_list, cost_unc_list, feasible_list, clb_list) = \
            self._budget_row(stage_index, row, is_last)

        best: DPSolution | None = None
        best_value = math.inf
        best_idx = -1  # winning *resolved* combo, materialised after the scan
        pruning = self.config.enable_pruning
        max_iterations = self.config.max_budget_iterations
        sum_after = self._sfx_sum[next_stage]
        max_after = self._sfx_max[next_stage]
        rate_after = self._sfx_rate[next_stage]
        num_combos = len(cols)
        forward_states = (None if is_last
                          else self._engine.forward.states[next_stage])

        guard = self.search_budget
        for n in range(num_combos):
            if guard is not None:
                guard.tick()
            t_s = t_list[n]
            sync_s = sync_list[n]
            rate_s = rate_list[n]
            if is_last:
                time_v = t_s + nb1 * t_s + sync_s
                cost_v = rate_s * time_v
                if cost_v > budget:
                    continue
                value = cost_v if is_cost else time_v
                if value < best_value:
                    best_value = value
                    best_idx = n
                continue

            cutoff = upper_bound if upper_bound < best_value else best_value
            if pruning:
                # Same admissible bounds (and tail cut) as the scalar scan;
                # the scalars come from the kernel table instead of a
                # lazily-built assignment, bit-identical by construction.
                sum_lb = t_s + sum_after
                max_lb = t_s if t_s >= max_after else max_after
                base_lb = sum_lb + nb1 * max_lb
                if is_cost:
                    bound = ((rate_s + rate_after) * (base_lb + sync_s)
                             * _COST_BOUND_SLACK)
                    if bound >= cutoff:
                        stats.pruned_branches += 1
                        continue
                elif base_lb >= cutoff:
                    stats.pruned_branches += num_combos - n
                    break
                elif base_lb + sync_s >= cutoff:
                    stats.pruned_branches += 1
                    continue

            if not feasible_list[n]:
                continue  # infeasible suffix: the recursion returns None
            rb1 = budget - rate_s * nb * t_s
            if rb1 <= 0:
                continue
            resolved = False
            iter1_done = False
            if cost_unc_list[n] <= rb1:
                # Dominance at the assumed straggler: the suffix is the
                # child's unconstrained engine optimum.  Combine inline
                # (op order of _combine + _value).
                stats.suffix_iterations += 1
                sum_t = t_s + sum_list[n]
                max_c = max_list[n]
                max_t = t_s if t_s >= max_c else max_c
                sync_c = sync_c_list[n]
                sync_t = sync_s if sync_s >= sync_c else sync_c
                rate_t = rate_s + rate_c_list[n]
                time_v = sum_t + nb1 * max_t + sync_t
                cost_v = rate_t * time_v
                if cost_v > budget:
                    continue  # combined busts the budget: combo infeasible
                if max_iterations == 1 or straggler_converged(max_t, t_s):
                    resolved = True
                else:
                    # Iteration 2 re-assumes the discovered straggler; when
                    # dominance survives the tightened budget the suffix --
                    # and so the combined solution -- is unchanged, which
                    # *is* the loop's fixpoint.
                    rb2 = budget - rate_s * nb * max_t
                    if rb2 <= 0:
                        continue
                    if cost_unc_list[n] <= rb2:
                        resolved = True
                    elif clb_list is not None and clb_list[n] > rb2:
                        # Certificate: at the tightened budget every
                        # suffix solution costs more, so the recursion's
                        # iteration 2 would come back empty and the combo
                        # contributes nothing.
                        stats.suffix_certified += 1
                        continue
                    else:
                        iter1_done = True
            elif clb_list is not None and clb_list[n] > rb1:
                # Certificate: the suffix is budget-infeasible even with
                # this stage assumed the straggler -- the recursion's
                # iteration 1 would return None.  Resolved in-layer, no
                # scalar fallback.
                stats.suffix_certified += 1
                continue
            if resolved:
                value = cost_v if is_cost else time_v
                if value < best_value:
                    best_value = value
                    best_idx = n
                    best = None
                continue

            # Genuinely binding suffix budget: scalar straggler recursion.
            entry = table.entries[cols[n]]
            assignment = entry[2]
            if assignment is None:
                assignment = self.context.build_stage_assignment(
                    self.partitions[stage_index], self.microbatch_size,
                    self.data_parallel, entry[0], nodes_used=entry[1],
                    compute_time_s=entry[4])
                entry[2] = assignment
            child_state = forward_states[child_list[n]]
            seed = None
            if iter1_done:
                if self.config.batched_layer_resolve:
                    # Hand the inline iteration-1 result over so the
                    # recursion enters at iteration 2 instead of
                    # re-deriving it.
                    seed = self._materialize(next_stage, child_list[n])
                else:
                    # The recursion will re-derive (and re-count)
                    # iteration 1; retract the inline count so the
                    # counter stays comparable across toggles.
                    stats.suffix_iterations -= 1
            candidate = self._solve_suffix(
                stage_index, assignment, child_state, child_state.tobytes(),
                budget, cutoff if pruning else math.inf, seed_suffix=seed)
            if candidate is None:
                continue
            value = self._value(candidate)
            if value < best_value:
                best, best_value = candidate, value
                best_idx = -1

        if best is None and best_idx >= 0:
            best_col = cols[best_idx]
            best_child = -1 if is_last else child_list[best_idx]
            entry = table.entries[best_col]
            assignment = entry[2]
            if assignment is None:
                assignment = self.context.build_stage_assignment(
                    self.partitions[stage_index], self.microbatch_size,
                    self.data_parallel, entry[0], nodes_used=entry[1],
                    compute_time_s=entry[4])
                entry[2] = assignment
            if is_last:
                best = DPSolution(
                    assignments=[assignment],
                    max_stage_time_s=assignment.compute_time_s,
                    sum_stage_time_s=assignment.compute_time_s,
                    max_sync_time_s=assignment.sync_time_s,
                    cost_rate_usd_per_s=assignment.cost_rate_usd_per_s,
                )
            else:
                best = self._combine(assignment,
                                     self._materialize(next_stage, best_child))

        exact = best_value < upper_bound or upper_bound == math.inf
        lo = best.projected_cost(nb) if best is not None else -math.inf
        self._budget_store(stage_index, key, lo, budget, best, exact,
                           upper_bound)
        return best

    def _child_bound(self, cutoff: float, assignment: StageAssignment) -> float:
        """Upper bound to thread into the suffix solve below ``assignment``.

        Any completed solution satisfies ``combined >= suffix + t_a`` for the
        throughput objective and ``combined >= suffix`` for cost, so a suffix
        at or above the returned bound can never beat the incumbent.  The
        tiny relative slack absorbs rounding in the subtraction.
        """
        if cutoff == math.inf:
            return math.inf
        if self.goal is OptimizationGoal.MIN_COST:
            return cutoff
        return (cutoff - assignment.compute_time_s) * (1.0 + 1e-12)

    def _solve_suffix(self, stage_index: int, assignment: StageAssignment,
                      remaining, remaining_key: bytes,
                      budget: float, cutoff: float,
                      seed_suffix: DPSolution | None = None,
                      ) -> DPSolution | None:
        """Combine one stage assignment with the best budgeted suffix.

        Implements the straggler-approximation loop of section 4.2.3: assume
        the current stage is the straggler, compute the remaining budget,
        solve the suffix, and retry with the discovered straggler when the
        assumption turns out wrong.  (The unbudgeted case is handled by the
        inlined fast path in :meth:`_solve`.)

        ``seed_suffix`` is the batched scan's continuation handoff: the
        caller already resolved (and counted) iteration 1 inline -- the
        suffix is the child's unconstrained engine optimum, dominance held
        at the assumed straggler, the combined solution passed the budget
        check, convergence failed, and the re-tested budget is positive
        but binding -- so the loop starts at iteration 2 instead of
        re-deriving all of that.

        Three certificates resolve the loop without suffix solves, each
        outcome-identical to running it (the reduction is what
        ``SearchStats.suffix_iterations`` / ``suffix_certified`` observe):

        * **Engine-seeded straggler** (``engine_seeded_straggler``): when
          the child's unconstrained engine optimum fits the remaining
          budget even at the straggler the *combined* solution discovers
          (its ``max_t`` is known from the engine layer), the loop's
          fixpoint is that combination: iteration 1 takes it via budget
          dominance and iteration 2's re-probe at the tightened budget
          returns it unchanged.  Equivalence does not depend on the memo's
          content -- with dominance in force, any interval entry covering
          the iteration-1 budget must *be* the dominance entry (a binding
          or infeasible entry stored at a budget at or above the
          unconstrained cost would contradict the dominance shortcut that
          guards every store).
        * **Cost lower bound** (``enable_straggler_bound``): a monotone
          per-(stage, state) lower bound on the cost of *every* suffix
          solution in the truncated search space.  ``cost_lb > remaining
          budget`` proves the iteration's suffix solve returns ``None``
          (a budgeted solve only returns budget-respecting solutions), so
          the loop dies without probing or solving.  Because the assumed
          straggler only grows, the remaining budget only shrinks -- once
          any iteration is certified dead, so is the rest of the loop.
        * **Fixpoint identity**: when an iteration's interval-memo probe
          returns the same suffix object as the previous iteration, the
          recombined solution is field-identical, its budget check passed
          last iteration, and the discovered straggler equals the assumed
          one exactly -- converged, no recombination needed.
        """
        nb = self.num_microbatches
        child_bound = self._child_bound(cutoff, assignment)
        next_stage = stage_index + 1
        # Inlined interval-memo probe for the loop's suffix queries (the
        # overwhelmingly common hit case): same lookup rule as
        # _budget_lookup, minus the per-iteration call overhead.  Skipped
        # under fork tracking, which must observe every query in _solve.
        budget_memo = self._budget_memo[next_stage]
        probe_inline = not self.track_budget_forks
        stats = self.stats
        t_a = assignment.compute_time_s
        rate_a = assignment.cost_rate_usd_per_s

        cost_lb = None
        iterations = self.config.max_budget_iterations
        combined: DPSolution | None = None
        prev_suffix: DPSolution | None = None
        assumed_straggler = t_a
        engine = self._engine
        certs = self._certs_active
        if engine is not None and (certs or self._seed_active
                                   or seed_suffix is not None):
            row = engine.row_for_key(next_stage, remaining_key)
            if row is not None:
                cost_vec, feas_vec = engine.budget_tables(next_stage)
                if not feas_vec[row]:
                    # Iteration 1's solve would find the suffix state
                    # infeasible outright.
                    stats.suffix_certified += 1
                    return None
                if certs:
                    cost_lb = self._engine_bounds().cost_lb[next_stage][row]
                if seed_suffix is not None:
                    # Batched-scan continuation: the caller already ran --
                    # and counted -- iteration 1 inline (dominance at the
                    # assumed straggler, combined under budget, not
                    # converged, re-tested budget positive but binding),
                    # so enter the loop at iteration 2 directly.
                    combined = self._combine(assignment, seed_suffix)
                    # Replicate iteration 1's dominance store so later
                    # probes of this suffix state hit.
                    self._budget_store(next_stage, remaining_key,
                                       float(cost_vec[row]), math.inf,
                                       seed_suffix, True, math.inf)
                    prev_suffix = seed_suffix
                    assumed_straggler = combined.max_stage_time_s
                    iterations -= 1
                elif self._seed_active:
                    rb1 = budget - rate_a * nb * t_a
                    if rb1 <= 0:
                        return None
                    cost_unc = cost_vec[row]
                    if cost_unc <= rb1:
                        # Iteration 1 resolves by dominance; seed the
                        # loop at its discovered straggler.
                        stats.suffix_iterations += 1
                        suffix = self._materialize(next_stage, row)
                        combined = self._combine(assignment, suffix)
                        if combined.projected_cost(nb) > budget:
                            return None
                        actual = combined.max_stage_time_s
                        if (iterations == 1
                                or straggler_converged(actual, t_a)):
                            return combined
                        rb2 = budget - rate_a * nb * actual
                        if rb2 <= 0:
                            return None
                        # Replicate iteration 1's dominance store so
                        # later probes of this suffix state hit.
                        self._budget_store(next_stage, remaining_key,
                                           float(cost_unc), math.inf,
                                           suffix, True, math.inf)
                        if cost_unc <= rb2:
                            # Iteration 2 re-probes the same dominance
                            # entry: the fixpoint is certified.
                            stats.suffix_certified += 1
                            return combined
                        # Genuinely binding at the discovered straggler:
                        # continue from iteration 2.
                        iterations -= 1
                        prev_suffix = suffix
                        assumed_straggler = actual
        elif certs and engine is None:
            bound = self._scalar_bound(next_stage, remaining, remaining_key)
            cost_lb = bound[5]

        guard = self.search_budget
        for _ in range(iterations):
            if guard is not None:
                guard.tick()
            stage_cost = rate_a * nb * assumed_straggler
            remaining_budget = budget - stage_cost
            if remaining_budget <= 0:
                return None
            if cost_lb is not None and cost_lb > remaining_budget:
                # Certified: this (and so every later) iteration's suffix
                # solve returns None.
                stats.suffix_certified += 1
                return None
            stats.suffix_iterations += 1
            suffix = None
            hit = None
            if probe_inline:
                entries = budget_memo.get(remaining_key)
                if entries is not None:
                    for entry in entries:
                        if (entry[0] <= remaining_budget <= entry[1]
                                and (entry[3] or child_bound <= entry[4])):
                            hit = entry
                            break
            if hit is not None:
                stats.memo_hits += 1
                suffix = hit[2]
                if suffix is prev_suffix and suffix is not None:
                    # Fixpoint identity: recombining is field-identical,
                    # the budget check passed last iteration, and the
                    # straggler matches the assumption exactly.
                    return combined
            else:
                suffix = self._solve(next_stage, remaining,
                                     remaining_budget, child_bound,
                                     remaining_key)
            if suffix is None:
                return None
            prev_suffix = suffix
            combined = self._combine(assignment, suffix)
            if combined.projected_cost(nb) > budget:
                return None
            actual_straggler = combined.max_stage_time_s
            if straggler_converged(actual_straggler, assumed_straggler):
                return combined
            assumed_straggler = actual_straggler
        return combined

    @staticmethod
    def _combine(assignment: StageAssignment, suffix: DPSolution) -> DPSolution:
        return DPSolution(
            assignments=[assignment] + suffix.assignments,
            max_stage_time_s=max(assignment.compute_time_s, suffix.max_stage_time_s),
            sum_stage_time_s=assignment.compute_time_s + suffix.sum_stage_time_s,
            max_sync_time_s=max(assignment.sync_time_s, suffix.max_sync_time_s),
            cost_rate_usd_per_s=(assignment.cost_rate_usd_per_s
                                 + suffix.cost_rate_usd_per_s),
        )
