"""Per-stage resource assignment via dynamic programming (paper Listing 1).

Given a pipeline depth ``P``, a data-parallel degree ``D``, a microbatch size
and the per-(stage, node type) tensor-parallel candidates, the solver walks
the stages front to back.  For each stage it enumerates *resource combos*
(ways to place the stage's ``D`` replicas on the remaining nodes of one
region, possibly mixing node types -- heuristic H5 keeps a stage's
data-parallel group inside one region), recurses on the remaining stages and
remaining resources, and keeps the combination minimising the projected
iteration time

``T = sum_i t_i + (Nb - 1) * max_i t_i + max_i sync_i``

(or the projected cost when the objective is cost minimisation).  Results
are memoised on ``(stage, remaining resources, remaining budget)``.

When a budget constraint is present, the solver follows the paper's
straggler-approximation loop: it first assumes the current stage is the
pipeline straggler to estimate the budget left for the remaining stages,
solves them, and re-iterates with the discovered straggler when the
assumption was wrong (section 4.2.3).  This is what makes budget-constrained
searches slower (Table 3).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.collectives import ring_allreduce_time
from repro.core.objectives import OptimizationGoal
from repro.core.simulator.environment import SimulationEnvironment
from repro.hardware.network import LinkClass
from repro.hardware.nodes import get_node_type
from repro.models.partition import LayerPartition
from repro.models.spec import TrainingJobSpec


#: Type alias: remaining nodes keyed by (zone, node type).
ResourceMap = dict[tuple[str, str], int]


@dataclass(frozen=True)
class StageOption:
    """One way to host replicas of a stage: a (zone, node type, TP) choice."""

    zone: str
    node_type: str
    tensor_parallel: int

    @property
    def gpus_per_node(self) -> int:
        return get_node_type(self.node_type).gpus_per_node

    @property
    def replicas_per_node(self) -> int:
        """How many replicas of this option fit on one node."""
        return max(1, self.gpus_per_node // self.tensor_parallel)

    def nodes_needed(self, replicas: int) -> int:
        """Whole nodes needed to host ``replicas`` replicas."""
        return math.ceil(replicas / self.replicas_per_node)


@dataclass
class StageAssignment:
    """Resources given to one stage: replica counts per option."""

    stage_index: int
    placements: list[tuple[StageOption, int]]
    compute_time_s: float
    sync_time_s: float
    cost_rate_usd_per_s: float

    @property
    def nodes_used(self) -> dict[tuple[str, str], int]:
        """Whole nodes consumed, keyed by (zone, node type)."""
        out: dict[tuple[str, str], int] = {}
        for option, count in self.placements:
            key = (option.zone, option.node_type)
            out[key] = out.get(key, 0) + option.nodes_needed(count)
        return out

    @property
    def total_replicas(self) -> int:
        return sum(count for _, count in self.placements)

    @property
    def zones(self) -> list[str]:
        return sorted({opt.zone for opt, _ in self.placements})


@dataclass
class DPSolution:
    """Best assignment found for a suffix of the pipeline."""

    assignments: list[StageAssignment]
    max_stage_time_s: float
    sum_stage_time_s: float
    max_sync_time_s: float
    cost_rate_usd_per_s: float

    def projected_iteration_time(self, num_microbatches: int) -> float:
        """Iteration-time estimate the DP optimises."""
        return (self.sum_stage_time_s
                + (num_microbatches - 1) * self.max_stage_time_s
                + self.max_sync_time_s)

    def projected_cost(self, num_microbatches: int) -> float:
        """Cost estimate (compute only) the DP uses under budget constraints."""
        return self.cost_rate_usd_per_s * self.projected_iteration_time(num_microbatches)

    @property
    def straggler_stage(self) -> int:
        """Index (within the suffix) of the slowest stage."""
        best = 0
        for i, assignment in enumerate(self.assignments):
            if assignment.compute_time_s > self.assignments[best].compute_time_s:
                best = i
        return best


@dataclass
class DPSolverConfig:
    """Knobs bounding the DP search."""

    max_combos_per_stage: int = 16
    max_mixed_types_per_stage: int = 2
    split_fractions: tuple[float, ...] = (0.25, 0.5, 0.75)
    max_budget_iterations: int = 4


class DPSolver:
    """Solves the per-stage resource-assignment problem for one (P, D, mbs)."""

    def __init__(self, env: SimulationEnvironment, job: TrainingJobSpec,
                 partitions: list[LayerPartition],
                 tp_options_per_stage: list[dict[str, list[int]]],
                 microbatch_size: int, data_parallel: int,
                 num_microbatches: int,
                 goal: OptimizationGoal = OptimizationGoal.MAX_THROUGHPUT,
                 config: DPSolverConfig | None = None) -> None:
        self.env = env
        self.job = job
        self.partitions = partitions
        self.tp_options_per_stage = tp_options_per_stage
        self.microbatch_size = microbatch_size
        self.data_parallel = data_parallel
        self.num_microbatches = num_microbatches
        self.goal = goal
        self.config = config or DPSolverConfig()
        self._stage_time_cache: dict[tuple[int, str, int], float] = {}
        self._memo: dict[tuple, DPSolution | None] = {}
        self.nodes_explored = 0

    # -- public API ------------------------------------------------------------

    def solve(self, resources: ResourceMap,
              budget_per_iteration: float | None = None) -> DPSolution | None:
        """Assign resources to every stage; ``None`` when nothing fits."""
        self._memo.clear()
        usable = {key: count for key, count in resources.items() if count > 0}
        return self._solve(0, usable, budget_per_iteration)

    # -- stage metrics -----------------------------------------------------------

    def stage_compute_time(self, stage_index: int, node_type: str,
                           tensor_parallel: int) -> float:
        """Per-microbatch forward+backward time of a stage on one option."""
        key = (stage_index, node_type, tensor_parallel)
        cached = self._stage_time_cache.get(key)
        if cached is not None:
            return cached
        partition = self.partitions[stage_index]
        gpu_type = get_node_type(node_type).gpu.name
        profile = self.env.profiles.job_profile(gpu_type)
        layer = profile.layer(self.microbatch_size, tensor_parallel)
        total = partition.num_layers * layer.fwd_bwd_s
        if partition.has_embedding:
            total += profile.embedding(self.microbatch_size, tensor_parallel).fwd_bwd_s
        if partition.has_lm_head:
            total += profile.head(self.microbatch_size, tensor_parallel).fwd_bwd_s
        self._stage_time_cache[key] = total
        return total

    def stage_sync_time(self, stage_index: int,
                        placements: list[tuple[StageOption, int]]) -> float:
        """Approximate gradient all-reduce time of a stage's replicas."""
        if self.data_parallel == 1:
            return 0.0
        partition = self.partitions[stage_index]
        stage_params = partition.stage_params(self.job.model)
        message = max(stage_params / opt.tensor_parallel * 2.0
                      for opt, _ in placements)
        zones = sorted({opt.zone for opt, _ in placements})
        node_types = sorted({opt.node_type for opt, _ in placements})
        if len(zones) == 1:
            link_class = LinkClass.INTRA_ZONE
        else:
            link_class = self.env.link_class(zones[0], zones[-1])
        profile = self.env.profiles.network_profile(
            node_types[0], node_types[-1], link_class)
        return ring_allreduce_time(message, self.data_parallel, profile.transfer_time)

    def stage_cost_rate(self, placements: list[tuple[StageOption, int]]) -> float:
        """USD per second of the whole nodes a stage occupies."""
        total = 0.0
        for option, count in placements:
            spec = get_node_type(option.node_type)
            nodes = option.nodes_needed(count)
            total += (nodes * spec.gpus_per_node
                      * self.env.prices.gpu_price_per_second(spec.gpu.name))
        return total

    # -- combo generation ---------------------------------------------------------

    def _options_for_stage(self, stage_index: int,
                           resources: ResourceMap) -> list[tuple[StageOption, int]]:
        """All (option, max replicas) pairs available for a stage."""
        tp_options = self.tp_options_per_stage[stage_index]
        options: list[tuple[StageOption, int]] = []
        for (zone, node_type), count in resources.items():
            if count <= 0 or node_type not in tp_options:
                continue
            for tp in tp_options[node_type]:
                option = StageOption(zone=zone, node_type=node_type, tensor_parallel=tp)
                max_replicas = count * option.replicas_per_node
                if max_replicas >= 1:
                    options.append((option, max_replicas))
        return options

    def _split_counts(self, total: int) -> list[int]:
        """Coarse split points for mixing two options within one stage."""
        if total < 2:
            return []
        points = {1, total - 1}
        for fraction in self.config.split_fractions:
            k = int(round(total * fraction))
            if 1 <= k <= total - 1:
                points.add(k)
        return sorted(points)

    def generate_combos(self, stage_index: int,
                        resources: ResourceMap) -> list[list[tuple[StageOption, int]]]:
        """Resource combos able to host the stage's ``D`` replicas.

        Honours H5: every combo stays within a single region.  Combos are
        ranked by the stage compute time they imply (cost rate for the cost
        objective) and truncated to ``max_combos_per_stage``.
        """
        needed = self.data_parallel
        options = self._options_for_stage(stage_index, resources)
        by_region: dict[str, list[tuple[StageOption, int]]] = {}
        for option, max_replicas in options:
            by_region.setdefault(self.env.region_of(option.zone), []).append(
                (option, max_replicas))

        combos: list[list[tuple[StageOption, int]]] = []
        for region_options in by_region.values():
            # Single-option combos.
            for option, max_replicas in region_options:
                if max_replicas >= needed:
                    combos.append([(option, needed)])
            # Two-option combos (heterogeneous stage or two zones).
            if self.config.max_mixed_types_per_stage >= 2 and needed >= 2:
                for (opt_a, max_a), (opt_b, max_b) in itertools.combinations(
                        region_options, 2):
                    if opt_a.zone == opt_b.zone and opt_a.node_type == opt_b.node_type:
                        continue
                    for k in self._split_counts(needed):
                        if k <= max_a and (needed - k) <= max_b:
                            combos.append([(opt_a, k), (opt_b, needed - k)])

        def combo_key(placements: list[tuple[StageOption, int]]) -> float:
            if self.goal is OptimizationGoal.MIN_COST:
                return self.stage_cost_rate(placements)
            return max(self.stage_compute_time(stage_index, opt.node_type,
                                               opt.tensor_parallel)
                       for opt, _ in placements)

        combos.sort(key=combo_key)
        return combos[:self.config.max_combos_per_stage]

    # -- recursion ------------------------------------------------------------------

    @staticmethod
    def _canonical(resources: ResourceMap) -> tuple:
        return tuple(sorted((k, v) for k, v in resources.items() if v > 0))

    @staticmethod
    def _subtract(resources: ResourceMap,
                  nodes_used: dict[tuple[str, str], int]) -> ResourceMap | None:
        remaining = dict(resources)
        for key, used in nodes_used.items():
            have = remaining.get(key, 0)
            if used > have:
                return None
            remaining[key] = have - used
        return remaining

    def _assignment_for(self, stage_index: int,
                        placements: list[tuple[StageOption, int]]) -> StageAssignment:
        compute = max(self.stage_compute_time(stage_index, opt.node_type,
                                              opt.tensor_parallel)
                      for opt, _ in placements)
        sync = self.stage_sync_time(stage_index, placements)
        cost_rate = self.stage_cost_rate(placements)
        return StageAssignment(stage_index=stage_index, placements=placements,
                               compute_time_s=compute, sync_time_s=sync,
                               cost_rate_usd_per_s=cost_rate)

    def _better(self, candidate: DPSolution, incumbent: DPSolution | None) -> bool:
        if incumbent is None:
            return True
        nb = self.num_microbatches
        if self.goal is OptimizationGoal.MIN_COST:
            return candidate.projected_cost(nb) < incumbent.projected_cost(nb)
        return (candidate.projected_iteration_time(nb)
                < incumbent.projected_iteration_time(nb))

    def _solve(self, stage_index: int, resources: ResourceMap,
               budget: float | None) -> DPSolution | None:
        key = (stage_index, self._canonical(resources),
               None if budget is None else round(budget, 6))
        if key in self._memo:
            return self._memo[key]
        self.nodes_explored += 1

        best: DPSolution | None = None
        combos = self.generate_combos(stage_index, resources)
        is_last = stage_index == len(self.partitions) - 1

        for placements in combos:
            assignment = self._assignment_for(stage_index, placements)

            if is_last:
                solution = DPSolution(
                    assignments=[assignment],
                    max_stage_time_s=assignment.compute_time_s,
                    sum_stage_time_s=assignment.compute_time_s,
                    max_sync_time_s=assignment.sync_time_s,
                    cost_rate_usd_per_s=assignment.cost_rate_usd_per_s,
                )
                if budget is not None and solution.projected_cost(self.num_microbatches) > budget:
                    continue
                if self._better(solution, best):
                    best = solution
                continue

            remaining = self._subtract(resources, assignment.nodes_used)
            if remaining is None:
                continue

            candidate = self._solve_suffix(stage_index, assignment, remaining, budget)
            if candidate is not None and self._better(candidate, best):
                best = candidate

        self._memo[key] = best
        return best

    def _solve_suffix(self, stage_index: int, assignment: StageAssignment,
                      remaining: ResourceMap,
                      budget: float | None) -> DPSolution | None:
        """Combine one stage assignment with the best suffix solution.

        Implements the straggler-approximation loop of section 4.2.3 when a
        budget is present: assume the current stage is the straggler, compute
        the remaining budget, solve the suffix, and retry with the discovered
        straggler when the assumption turns out wrong.
        """
        nb = self.num_microbatches

        if budget is None:
            suffix = self._solve(stage_index + 1, remaining, None)
            if suffix is None:
                return None
            return self._combine(assignment, suffix)

        assumed_straggler = assignment.compute_time_s
        for _ in range(self.config.max_budget_iterations):
            stage_cost = assignment.cost_rate_usd_per_s * nb * assumed_straggler
            remaining_budget = budget - stage_cost
            if remaining_budget <= 0:
                return None
            suffix = self._solve(stage_index + 1, remaining, remaining_budget)
            if suffix is None:
                return None
            combined = self._combine(assignment, suffix)
            if combined.projected_cost(nb) > budget:
                return None
            actual_straggler = combined.max_stage_time_s
            if actual_straggler <= assumed_straggler + 1e-12:
                return combined
            assumed_straggler = actual_straggler
        return combined

    @staticmethod
    def _combine(assignment: StageAssignment, suffix: DPSolution) -> DPSolution:
        return DPSolution(
            assignments=[assignment] + suffix.assignments,
            max_stage_time_s=max(assignment.compute_time_s, suffix.max_stage_time_s),
            sum_stage_time_s=assignment.compute_time_s + suffix.sum_stage_time_s,
            max_sync_time_s=max(assignment.sync_time_s, suffix.max_sync_time_s),
            cost_rate_usd_per_s=(assignment.cost_rate_usd_per_s
                                 + suffix.cost_rate_usd_per_s),
        )
