"""Estimators used by the baseline planners.

The paper's central observation (sections 3.2 / 5.1) is that prior planners
rank candidate plans with estimators that ignore important effects:

* memory: some ignore the footprint entirely (AMP), some omit optimizer
  state / activations / communication buffers (Varuna, Oobleck), some assume
  a uniform footprint across stages and workers (Piper, FlashFlex, Metis);
* time: some assume homogeneous GPUs (Piper, Varuna, Aceso, Galvatron),
  some use theoretical peak FLOPS instead of profiles (FlashFlex), some
  mis-model heterogeneous network bandwidth (Metis).

:class:`BaselineEstimator` implements a configurable estimator whose flags
select which effects are modelled; each baseline instantiates it with the
flag combination the paper attributes to that system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives import ring_allreduce_time
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.core.simulator.environment import SimulationEnvironment
from repro.hardware.gpus import get_gpu
from repro.hardware.network import LinkClass


@dataclass
class EstimatorFlags:
    """Which effects a baseline's estimator models."""

    models_memory: bool = True
    include_optimizer_state: bool = True
    include_activations: bool = True
    include_framework_overhead: bool = False
    uniform_stage_memory: bool = False
    per_stage_in_flight: bool = True

    models_stragglers: bool = True
    uses_theoretical_flops: bool = False
    models_p2p_communication: bool = True
    models_dp_sync: bool = True
    message_size_aware_bandwidth: bool = True
    #: Whether the estimator accounts for the embedding and LM-head/loss
    #: compute of the first/last stage.  Most prior planners model the model
    #: as a stack of identical transformer blocks and ignore both, which
    #: under-estimates the last (straggler) stage.
    models_embedding_and_head: bool = True


class BaselineEstimator:
    """Configurable iteration-time / memory estimator for baselines."""

    def __init__(self, env: SimulationEnvironment, flags: EstimatorFlags) -> None:
        self.env = env
        self.flags = flags

    # -- time ---------------------------------------------------------------

    def _reference_replica(self, plan: ParallelizationPlan) -> StageReplica:
        """The replica whose GPU type a homogeneity-assuming estimator uses.

        Planners that assume homogeneous clusters profile one GPU type and
        apply it everywhere; on a mixed cluster that is the (fastest) type of
        the first replica they see, which is how they end up ignoring the
        forward/backward differences between GPU generations (Figure 6).
        """
        return plan.stages[0].replicas[0]

    def replica_compute_time(self, plan: ParallelizationPlan, stage: StageConfig,
                             replica: StageReplica) -> float:
        """Per-microbatch forward+backward time of a replica."""
        if not self.flags.models_stragglers:
            reference = self._reference_replica(plan)
            if reference.gpu_type != replica.gpu_type:
                capped_tp = min(replica.tensor_parallel,
                                reference.node_spec.gpus_per_node)
                replica = StageReplica(node_type=reference.node_type,
                                       tensor_parallel=capped_tp,
                                       zone=replica.zone)
        mbs, tp = plan.microbatch_size, replica.tensor_parallel
        model = plan.job.model
        if self.flags.uses_theoretical_flops:
            gpu = get_gpu(replica.gpu_type)
            flops = (model.layer_forward_flops(mbs, plan.job.sequence_length)
                     + model.layer_backward_flops(mbs, plan.job.sequence_length))
            flops *= stage.partition.num_layers
            if stage.partition.has_lm_head and self.flags.models_embedding_and_head:
                flops += 3.0 * model.lm_head_forward_flops(mbs, plan.job.sequence_length)
            return flops / tp / gpu.peak_flops
        profile = self.env.job_profile(replica)
        layer = profile.layer(mbs, tp)
        total = stage.partition.num_layers * layer.fwd_bwd_s
        if self.flags.models_embedding_and_head:
            if stage.partition.has_embedding:
                total += profile.embedding(mbs, tp).fwd_bwd_s
            if stage.partition.has_lm_head:
                total += profile.head(mbs, tp).fwd_bwd_s
        return total

    def stage_time(self, plan: ParallelizationPlan, stage: StageConfig) -> float:
        """Per-microbatch stage time; straggler-aware only when configured."""
        times = [self.replica_compute_time(plan, stage, r) for r in stage.replicas]
        if self.flags.models_stragglers:
            return max(times)
        # Straggler-oblivious estimators implicitly assume every replica runs
        # as fast as the first (homogeneous) one.
        return times[0]

    def _transfer_time(self, sender: StageReplica, receiver: StageReplica,
                       message_bytes: float) -> float:
        if self.flags.message_size_aware_bandwidth:
            link = self.env.link_between(sender, receiver)
            return link.transfer_time(message_bytes)
        # Flat-bandwidth estimators assume the nominal datacenter bandwidth of
        # the link class, ignoring both the message-size dependence and the
        # per-node NIC limits (this is how planners "fail to fully capture the
        # heterogeneous network bandwidth between nodes").
        from repro.hardware.network import DEFAULT_LINKS

        link_class = self.env.link_class(sender.zone, receiver.zone)
        nominal = DEFAULT_LINKS[link_class]
        return message_bytes / nominal.bandwidth_bytes_per_s

    def p2p_time(self, plan: ParallelizationPlan, sender: StageReplica,
                 receiver: StageReplica) -> float:
        """Boundary-activation transfer time between two stages."""
        if not self.flags.models_p2p_communication:
            return 0.0
        profile = self.env.job_profile(sender)
        message = profile.boundary_bytes[plan.microbatch_size]
        return self._transfer_time(sender, receiver, message)

    def sync_time(self, plan: ParallelizationPlan, stage: StageConfig) -> float:
        """Gradient all-reduce time of a stage's data-parallel group."""
        if not self.flags.models_dp_sync or stage.data_parallel == 1:
            return 0.0
        stage_params = stage.partition.stage_params(plan.job.model)
        message = max(stage_params / r.tensor_parallel * 2.0 for r in stage.replicas)
        replicas = stage.replicas
        sample = replicas[0]
        other = replicas[1] if len(replicas) > 1 else replicas[0]
        return ring_allreduce_time(
            message, stage.data_parallel,
            lambda m: self._transfer_time(sample, other, m))

    def estimate_iteration_time(self, plan: ParallelizationPlan) -> float:
        """Seconds per iteration under this baseline's assumptions."""
        num_microbatches = plan.num_microbatches
        stage_times = [self.stage_time(plan, s) for s in plan.stages]
        straggler = max(stage_times)
        p2p = 0.0
        if self.flags.models_p2p_communication:
            chain = plan.pipeline(0)
            for i in range(len(chain) - 1):
                p2p += 2.0 * self.p2p_time(plan, chain[i], chain[i + 1])
        pipeline = sum(stage_times) + (num_microbatches - 1) * straggler + p2p
        sync = max((self.sync_time(plan, s) for s in plan.stages), default=0.0)
        return pipeline + sync

    def estimate_throughput(self, plan: ParallelizationPlan) -> float:
        """Iterations per second under this baseline's assumptions."""
        t = self.estimate_iteration_time(plan)
        return 1.0 / t if t > 0 else 0.0

    # -- memory --------------------------------------------------------------

    def estimate_stage_memory(self, plan: ParallelizationPlan,
                              stage: StageConfig) -> float | None:
        """Peak bytes per worker of one stage (``None`` = not modelled)."""
        if not self.flags.models_memory:
            return None
        job = plan.job
        model = job.model

        if self.flags.uniform_stage_memory:
            params = model.total_params / plan.pipeline_parallel
        else:
            params = stage.partition.stage_params(model)

        tp = max(1, min(r.tensor_parallel for r in stage.replicas))
        if self.flags.include_optimizer_state:
            bytes_per_param = job.bytes_per_param
        else:
            # Weights + gradients only (fp16).
            bytes_per_param = 4.0
        model_bytes = params / tp * bytes_per_param

        activation_bytes = 0.0
        if self.flags.include_activations:
            profile = self.env.job_profile(stage.replicas[0])
            per_layer = profile.activations(plan.microbatch_size, tp)
            layers = (model.num_layers / plan.pipeline_parallel
                      if self.flags.uniform_stage_memory
                      else stage.partition.num_layers)
            if self.flags.per_stage_in_flight:
                in_flight = max(1, min(plan.num_microbatches,
                                       plan.pipeline_parallel - stage.stage_index))
            else:
                in_flight = 1
            activation_bytes = in_flight * layers * per_layer

        overhead = 1.5 * (1024 ** 3) if self.flags.include_framework_overhead else 0.0
        return model_bytes + activation_bytes + overhead

    def estimate_peak_memory(self, plan: ParallelizationPlan) -> list[float] | None:
        """Per-stage peak bytes, or ``None`` when memory is not modelled."""
        if not self.flags.models_memory:
            return None
        out = []
        for stage in plan.stages:
            estimate = self.estimate_stage_memory(plan, stage)
            out.append(estimate if estimate is not None else 0.0)
        return out

    def plan_fits(self, plan: ParallelizationPlan) -> bool:
        """OOM check under this baseline's memory model.

        Estimators that do not model memory accept every plan.
        """
        peaks = self.estimate_peak_memory(plan)
        if peaks is None:
            return True
        for stage, peak in zip(plan.stages, peaks):
            for replica in stage.replicas:
                if peak > get_gpu(replica.gpu_type).memory_bytes:
                    return False
        return True


# -- convenience factories ----------------------------------------------------

def IgnoreMemoryEstimator(env: SimulationEnvironment) -> BaselineEstimator:
    """Estimator that does not model memory at all (AMP-style)."""
    return BaselineEstimator(env, EstimatorFlags(
        models_memory=False, models_stragglers=False))


def UniformStageEstimator(env: SimulationEnvironment) -> BaselineEstimator:
    """Estimator that assumes uniform per-stage memory (Piper/FlashFlex-style)."""
    return BaselineEstimator(env, EstimatorFlags(
        uniform_stage_memory=True, per_stage_in_flight=False))


def TheoreticalFlopsEstimator(env: SimulationEnvironment) -> BaselineEstimator:
    """Estimator using theoretical peak FLOPS (FlashFlex-style)."""
    return BaselineEstimator(env, EstimatorFlags(
        uses_theoretical_flops=True, uniform_stage_memory=True,
        per_stage_in_flight=False))
