"""AMP (Li et al., 2022).

Heterogeneity-aware automatic model-parallel planner.  Characteristics
reproduced from the paper's comparison:

* searches uniform 3D parallelism degrees only (no per-stage heterogeneity),
  while allowing replicas to land on different GPU types;
* does not model the training memory footprint at all, so it proposes many
  plans that OOM (bold counts in Figures 8-10);
* does not model stragglers correctly, so its throughput drops in
  heterogeneous clusters even though it nominally supports them;
* moderate search time (tens of seconds at 128+ GPUs).
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class AMPPlanner(BaselinePlanner):
    """Uniform-degree planner that is heterogeneity-aware but memory-blind."""

    name = "amp"
    parallelism = "3D"
    recommends_allocation = False
    supports_heterogeneous = True
    supports_multizone = False

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=False,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        plans = self.enumerate_uniform_plans(job, topology,
                                             allow_mixed_types=True)
        candidates = [self.candidate_from_plan(plan, objective)
                      for plan in plans]
        return self._sort_candidates(candidates, objective)
