"""Baseline planners.

Reimplementations of the planners the paper compares against (Table 1 and
section 5), sharing a unified API (:class:`BaselinePlanner`) so they can be
swapped into the experiment harnesses.  Each baseline reproduces the search
strategy *and* the characteristic estimation behaviour the paper attributes
to it (e.g. AMP ignores memory, Varuna only searches 2D parallelism and
underestimates memory, FlashFlex ranks by theoretical FLOPS, Metis searches
exhaustively and is slow, DTFM only partitions a given plan across zones by
communication volume).

| Planner    | Recommends allocation | Heterogeneous GPUs | Multi-zone |
|------------|----------------------|--------------------|------------|
| Piper      | no                   | no                 | no         |
| Varuna     | no                   | no                 | no         |
| AMP        | no                   | yes                | no         |
| Metis      | no                   | yes                | no         |
| FlashFlex  | yes                  | yes                | no         |
| Galvatron  | no                   | no                 | no         |
| Aceso      | no                   | no                 | no         |
| Oobleck    | no                   | no                 | no         |
| DTFM       | no                   | no                 | yes        |
| Sailor     | yes                  | yes                | yes        |
"""

from repro.baselines.base import BaselinePlanner, CandidatePlan, get_baseline, list_baselines
from repro.baselines.estimators import (
    BaselineEstimator,
    IgnoreMemoryEstimator,
    UniformStageEstimator,
    TheoreticalFlopsEstimator,
)
from repro.baselines.piper import PiperPlanner
from repro.baselines.varuna import VarunaPlanner
from repro.baselines.amp import AMPPlanner
from repro.baselines.metis import MetisPlanner
from repro.baselines.flashflex import FlashFlexPlanner
from repro.baselines.galvatron import GalvatronPlanner
from repro.baselines.aceso import AcesoPlanner
from repro.baselines.oobleck import OobleckPlanner
from repro.baselines.dtfm import DTFMPlanner

__all__ = [
    "BaselinePlanner",
    "CandidatePlan",
    "get_baseline",
    "list_baselines",
    "BaselineEstimator",
    "IgnoreMemoryEstimator",
    "UniformStageEstimator",
    "TheoreticalFlopsEstimator",
    "PiperPlanner",
    "VarunaPlanner",
    "AMPPlanner",
    "MetisPlanner",
    "FlashFlexPlanner",
    "GalvatronPlanner",
    "AcesoPlanner",
    "OobleckPlanner",
    "DTFMPlanner",
]
