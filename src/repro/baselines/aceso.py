"""Aceso (Liu et al., EuroSys 2024).

Plans parallelisation by *iterative bottleneck alleviation*: starting from an
initial configuration, it repeatedly identifies the bottleneck (the slowest
or most memory-pressured stage) and applies a local mutation (change TP,
microbatch size, or pipeline depth) until no improvement is found.
Characteristics reproduced from the paper's comparison:

* search time around a couple of hundred seconds (it evaluates many
  incremental mutations);
* homogeneous assumptions, no resource-allocation decisions, no zones;
* its iterative descent can get stuck in poor local optima, which is why it
  trails the best planners in Figure 7.
"""

from __future__ import annotations

import time

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class AcesoPlanner(BaselinePlanner):
    """Iterative bottleneck-alleviation planner for homogeneous clusters."""

    name = "aceso"
    parallelism = "3D"
    recommends_allocation = False
    supports_heterogeneous = False
    supports_multizone = False

    def __init__(self, env, limits=None, max_iterations: int = 200,
                 time_limit_s: float = 200.0) -> None:
        super().__init__(env, limits)
        self.max_iterations = max_iterations
        self.time_limit_s = time_limit_s

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=True,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=True,
            per_stage_in_flight=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=True,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        deadline = time.perf_counter() + self.time_limit_s
        all_plans = self.enumerate_uniform_plans(job, topology,
                                                 allow_mixed_types=False)
        if not all_plans:
            return []
        by_key = {self._key(p): p for p in all_plans}

        current = self._initial_plan(all_plans)
        current_candidate = self.candidate_from_plan(current, objective)
        visited = {self._key(current)}
        trail = [current_candidate]

        for _ in range(self.max_iterations):
            if time.perf_counter() > deadline:
                break
            improved = False
            for neighbour_key in self._neighbour_keys(self._key(current)):
                neighbour = by_key.get(neighbour_key)
                if neighbour is None or neighbour_key in visited:
                    continue
                visited.add(neighbour_key)
                if not self.estimator.plan_fits(neighbour):
                    continue
                candidate = self.candidate_from_plan(neighbour, objective)
                trail.append(candidate)
                if (candidate.estimated_iteration_time_s
                        < current_candidate.estimated_iteration_time_s):
                    current, current_candidate = neighbour, candidate
                    improved = True
                    break
            if not improved:
                break

        return self._sort_candidates(trail, objective)

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _key(plan: ParallelizationPlan) -> tuple[int, int, int, int]:
        tp = plan.stages[0].replicas[0].tensor_parallel
        return (plan.pipeline_parallel, tp, plan.data_parallel,
                plan.microbatch_size)

    @staticmethod
    def _neighbour_keys(key: tuple[int, int, int, int]) -> list[tuple[int, int, int, int]]:
        pp, tp, dp, mbs = key
        neighbours = []
        for npp in (pp // 2, pp * 2, pp + 1, pp - 1):
            if npp >= 1:
                neighbours.append((npp, tp, dp, mbs))
        for ntp in (tp * 2, tp // 2):
            if ntp >= 1:
                neighbours.append((pp, ntp, dp, mbs))
        for ndp in (dp * 2, dp // 2):
            if ndp >= 1:
                neighbours.append((pp, tp, ndp, mbs))
        for nmbs in (mbs * 2, mbs // 2):
            if nmbs >= 1:
                neighbours.append((pp, tp, dp, nmbs))
        return neighbours

    def _initial_plan(self, plans: list[ParallelizationPlan]) -> ParallelizationPlan:
        """Aceso starts from a balanced middle-of-the-road configuration."""
        def balance(plan: ParallelizationPlan) -> float:
            tp = plan.stages[0].replicas[0].tensor_parallel
            return abs(plan.pipeline_parallel - tp) + abs(plan.microbatch_size - 2)
        return min(plans, key=balance)
