"""Varuna (Athlur et al., EuroSys 2022).

Targets commodity clusters with data + pipeline parallelism only (no tensor
parallelism).  Characteristics reproduced from the paper's comparison:

* very fast exhaustive search over (PP, DP, microbatch size);
* no tensor parallelism, which limits its search space (it fails to find
  valid plans for some models in Figure 7);
* memory estimation that omits optimizer state and communication buffers,
  so it recommends configurations that OOM when deployed (section 1 / 3.2).
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class VarunaPlanner(BaselinePlanner):
    """2D (DP x PP) planner with an optimistic memory model."""

    name = "varuna"
    parallelism = "2D"
    recommends_allocation = False
    supports_heterogeneous = False
    supports_multizone = False

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=False,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=False,
            per_stage_in_flight=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=False,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        plans = self.enumerate_uniform_plans(
            job, topology, tensor_parallel_degrees=[1],
            allow_mixed_types=False)
        candidates = []
        for plan in plans:
            if not self.estimator.plan_fits(plan):
                continue
            candidates.append(self.candidate_from_plan(plan, objective))
        return self._sort_candidates(candidates, objective)
