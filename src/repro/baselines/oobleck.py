"""Oobleck (Jang et al., SOSP 2023).

Resilient training system built on *pipeline templates*: it precomputes a
set of pipeline configurations for different node counts so that it can
re-instantiate pipelines quickly after failures.  Characteristics reproduced
from the paper's comparison:

* very long search times (hours in Table 1) because it enumerates and
  evaluates a large space of pipeline templates up front -- we model this
  with an explicit template enumeration capped by ``time_limit_s``;
* homogeneous assumptions (single GPU type, single zone);
* memory estimation that omits optimizer state and communication buffers,
  one of the under-estimators called out in section 3.2.
"""

from __future__ import annotations

import time

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class OobleckPlanner(BaselinePlanner):
    """Pipeline-template planner for homogeneous clusters."""

    name = "oobleck"
    parallelism = "3D"
    recommends_allocation = False
    supports_heterogeneous = False
    supports_multizone = False

    def __init__(self, env, limits=None, time_limit_s: float = 300.0) -> None:
        super().__init__(env, limits)
        self.time_limit_s = time_limit_s

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=False,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=True,
            per_stage_in_flight=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=False,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        deadline = time.perf_counter() + self.time_limit_s
        candidates: list[CandidatePlan] = []
        # Template enumeration: Oobleck builds one template per feasible
        # number of nodes per pipeline, then instantiates as many pipelines
        # as fit.  We enumerate the same space: every (nodes-per-pipeline,
        # TP, mbs) combination is a template, and instantiating it fixes DP.
        zones = self.usable_zones(topology)
        node_types = self.usable_node_types(topology)
        pools = self._node_pools(topology, node_types, zones)
        total_nodes = sum(c for _, _, c in pools)
        if total_nodes == 0:
            return []

        for nodes_per_pipeline in range(1, total_nodes + 1):
            for tp in (1, 2, 4, 8):
                for mbs in self.microbatch_candidates(job):
                    if time.perf_counter() > deadline:
                        return self._sort_candidates(candidates, objective)
                    for plan in self.enumerate_uniform_plans(
                            job, topology, tensor_parallel_degrees=[tp],
                            allow_mixed_types=False):
                        if plan.microbatch_size != mbs:
                            continue
                        if plan.pipeline_parallel != nodes_per_pipeline:
                            continue
                        if not self.estimator.plan_fits(plan):
                            continue
                        candidates.append(self.candidate_from_plan(plan, objective))
        return self._sort_candidates(candidates, objective)
