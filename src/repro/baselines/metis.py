"""Metis (Um et al., USENIX ATC 2024).

Automatic planner for heterogeneous GPU clusters.  Characteristics
reproduced from the paper's comparison:

* exhaustive exploration of *device groups* (how GPUs of each type are
  grouped into pipeline stages) combined with load-balanced layer
  partitioning, which makes the search extremely slow -- hours for a
  16-GPU heterogeneous cluster; the paper therefore caps it at 300 s and
  takes the best plan found so far (we do the same via ``time_limit_s``);
* reasonably accurate compute/memory modelling, but it mis-models
  heterogeneous network bandwidth (flat-bandwidth assumption), giving ~28%
  iteration-time error in Figure 6;
* requires the global batch size to divide evenly by the total number of
  GPUs, so it fails to produce plans for some cluster sizes (Figure 10);
* still generates OOM plans for large models (Figure 9).
"""

from __future__ import annotations

import itertools
import time

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.partition import balanced_partition, uniform_partition
from repro.models.spec import TrainingJobSpec


@register_baseline
class MetisPlanner(BaselinePlanner):
    """Exhaustive device-group search for heterogeneous clusters."""

    name = "metis"
    parallelism = "3D"
    recommends_allocation = False
    supports_heterogeneous = True
    supports_multizone = False

    def __init__(self, env, limits=None, time_limit_s: float = 300.0,
                 max_permutation_length: int = 10) -> None:
        super().__init__(env, limits)
        #: Wall-clock cap on the search, as applied in the paper's evaluation.
        self.time_limit_s = time_limit_s
        #: Mirrors the max_permutation_length knob of the Metis paper.
        self.max_permutation_length = max_permutation_length

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=True,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=False,
            per_stage_in_flight=False,
            models_stragglers=True,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            message_size_aware_bandwidth=False,
        ))

    # -- search ------------------------------------------------------------------

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        deadline = time.perf_counter() + self.time_limit_s
        zones = self.usable_zones(topology)
        node_types = self.usable_node_types(topology)
        pools = self._node_pools(topology, node_types, zones)
        total_gpus = sum(count * get_node_type(t).gpus_per_node
                         for _, t, count in pools)
        if total_gpus == 0:
            return []

        candidates: list[CandidatePlan] = []
        # Metis exhaustively explores orderings of GPU "device groups" along
        # the pipeline and, for each, load-balanced layer partitions within a
        # configured variance.  We walk the same space: permutations of
        # node-type orderings x pipeline depth x TP degree x microbatch size
        # x per-stage weight perturbations, until the deadline.  The weight
        # perturbations are what blows up the search at larger pipeline
        # depths, matching the hours-long searches reported in Table 1.
        type_orderings = list(itertools.permutations(node_types))
        for pp in self.pipeline_candidates(job, sum(c for _, _, c in pools)):
            for ordering in type_orderings:
                for tp in (1, 2, 4, 8):
                    for mbs in self.microbatch_candidates(job):
                        for weights in self._weight_variants(pp):
                            if time.perf_counter() > deadline:
                                return self._sort_candidates(candidates, objective)
                            plan = self._build_plan(job, topology, pools, ordering,
                                                    pp, tp, mbs, total_gpus,
                                                    weight_scale=weights)
                            if plan is None:
                                continue
                            if not self.estimator.plan_fits(plan):
                                continue
                            candidates.append(
                                self.candidate_from_plan(plan, objective))
        return self._sort_candidates(candidates, objective)

    def _weight_variants(self, pp: int) -> list[tuple[float, ...] | None]:
        """Per-stage weight perturbations (the device-group variance search)."""
        variance = 0.5
        length = min(pp, self.max_permutation_length, 6)
        variants: list[tuple[float, ...] | None] = [None]
        for pattern in itertools.product((1.0, 1.0 + variance), repeat=length):
            scale = tuple(pattern[i % length] for i in range(pp))
            variants.append(scale)
        return variants

    # -- plan construction ---------------------------------------------------------

    def _build_plan(self, job: TrainingJobSpec, topology: ClusterTopology,
                    pools: list[tuple[str, str, int]],
                    ordering: tuple[str, ...], pp: int, tp: int, mbs: int,
                    total_gpus: int,
                    weight_scale: tuple[float, ...] | None = None,
                    ) -> ParallelizationPlan | None:
        # Metis quirk: the global batch must divide by the total GPU count.
        if job.global_batch_size % max(1, total_gpus) != 0:
            return None

        ordered_pools = sorted(
            pools, key=lambda p: ordering.index(p[1]) if p[1] in ordering else 99)
        remaining = {(z, t): c for z, t, c in ordered_pools
                     if get_node_type(t).gpus_per_node >= tp}
        if not remaining:
            return None
        order = [(z, t) for z, t, _ in ordered_pools if (z, t) in remaining]

        max_dp = sum(c * (get_node_type(t).gpus_per_node // tp)
                     for (z, t), c in remaining.items()) // pp
        dp = 0
        for d in self._dp_candidates(job, mbs, max_dp):
            dp = max(dp, d)
        if dp == 0:
            return None

        # Load-balanced layer partitioning: weight stages by the aggregate
        # profiled speed of the GPU type they will (mostly) land on.
        stage_weights = self._stage_weights(job, order, pp, tp, mbs, dp)
        if stage_weights is not None and weight_scale is not None:
            stage_weights = [w * s for w, s in zip(stage_weights, weight_scale)]
        try:
            if stage_weights is None:
                partitions = uniform_partition(job.model, pp)
            else:
                partitions = balanced_partition(job.model, pp, stage_weights)
        except ValueError:
            return None

        replica_sets = self._place_uniform(ordered_pools, tp, pp, dp,
                                           allow_mixed_types=True)
        if replica_sets is None:
            return None
        stages = [StageConfig(partition=partitions[i], replicas=replica_sets[i])
                  for i in range(pp)]
        try:
            return ParallelizationPlan(job=job, stages=stages, microbatch_size=mbs)
        except ValueError:
            return None

    def _stage_weights(self, job: TrainingJobSpec,
                       order: list[tuple[str, str]], pp: int, tp: int,
                       mbs: int, dp: int) -> list[float] | None:
        """Relative speed of the GPU type each stage is expected to use."""
        if not order:
            return None
        speeds = []
        for i in range(pp):
            zone, node_type = order[min(i * len(order) // pp, len(order) - 1)]
            gpu = get_node_type(node_type).gpu
            try:
                profile = self.env.profiles.job_profile(gpu.name)
                layer = profile.layer(mbs, tp)
                speeds.append(1.0 / max(layer.fwd_bwd_s, 1e-9))
            except KeyError:
                speeds.append(gpu.peak_tflops)
        return speeds
