"""Galvatron (Miao et al., VLDB 2022).

Automatic parallelism planner for transformer training on homogeneous
clusters, combining dynamic programming over layers with a cost model.
Characteristics reproduced from the paper's comparison:

* search time of tens of seconds;
* homogeneous assumptions (single GPU type, no zones);
* per-stage memory modelling that tracks parameters and activations but not
  framework overheads or in-flight microbatch growth, so its estimates are
  optimistic for early pipeline stages.
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class GalvatronPlanner(BaselinePlanner):
    """Homogeneous 3D planner with a layer-wise cost model."""

    name = "galvatron"
    parallelism = "3D"
    recommends_allocation = False
    supports_heterogeneous = False
    supports_multizone = False

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=True,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=False,
            per_stage_in_flight=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=True,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        plans = self.enumerate_uniform_plans(job, topology,
                                             allow_mixed_types=False)
        candidates = []
        for plan in plans:
            if not self.estimator.plan_fits(plan):
                continue
            candidates.append(self.candidate_from_plan(plan, objective))
        return self._sort_candidates(candidates, objective)
