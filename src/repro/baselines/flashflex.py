"""FlashFlex (Yan et al., 2024).

Accommodates LLM training over heterogeneous GPUs and, unlike most
baselines, chooses how many of the available GPUs to use.  Characteristics
reproduced from the paper's comparison:

* short search time (~seconds);
* ranks candidates using the *theoretical* peak FLOPS of each GPU, so its
  runtime estimates are far off (69% error in Figure 6) and its plans are
  suboptimal;
* prefers small tensor-parallel degrees and small microbatch sizes and uses
  unnecessarily many pipeline stages, which hurts throughput and raises cost
  (Figures 8 and 10);
* assumes a uniform memory footprint across stages, so it fails to find
  valid plans for large models (the X entries of Figure 9).
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class FlashFlexPlanner(BaselinePlanner):
    """Theoretical-FLOPS-driven planner for heterogeneous clusters."""

    name = "flashflex"
    parallelism = "3D"
    recommends_allocation = True
    supports_heterogeneous = True
    supports_multizone = False

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=True,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=True,
            per_stage_in_flight=False,
            models_stragglers=True,
            uses_theoretical_flops=True,
            models_p2p_communication=False,
            models_dp_sync=True,
            message_size_aware_bandwidth=False,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        # FlashFlex favours low TP degrees and small microbatches.
        plans = self.enumerate_uniform_plans(
            job, topology, tensor_parallel_degrees=[1, 2],
            allow_mixed_types=True)
        candidates = []
        for plan in plans:
            if plan.microbatch_size > 2:
                continue
            if not self.estimator.plan_fits(plan):
                continue
            candidates.append(self.candidate_from_plan(plan, objective))
        ranked = self._sort_candidates(candidates, objective)
        # Because the FLOPS-only estimate barely penalises deep pipelines,
        # FlashFlex breaks ties towards plans that use more stages and more
        # of the available GPUs.
        ranked.sort(key=lambda c: (c.estimated_iteration_time_s,
                                   -c.plan.pipeline_parallel,
                                   -c.plan.total_gpus))
        return ranked
