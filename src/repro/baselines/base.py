"""Common infrastructure for baseline planners.

All baselines implement :class:`BaselinePlanner`:

* :meth:`BaselinePlanner.ranked_plans` returns the candidate plans the
  baseline would try, best first *according to its own estimator*;
* :meth:`BaselinePlanner.plan` mimics deployment: candidates are tried in
  rank order, plans that actually run out of memory (checked with the
  accurate Sailor memory model) are counted as failed deployments, and the
  first plan that fits is returned together with its accurate evaluation.

This mirrors the paper's methodology: every baseline is integrated behind a
unified API, is given the same profiling information, and the number of OOM
plans generated before a valid one is reported alongside throughput.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field

from repro.baselines.estimators import BaselineEstimator
from repro.core.objectives import Objective, OptimizationGoal
from repro.core.plan import (
    ParallelizationPlan,
    PlanEvaluation,
    PlannerResult,
    StageConfig,
    StageReplica,
)
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.partition import uniform_partition
from repro.models.spec import TrainingJobSpec


@dataclass
class CandidatePlan:
    """One plan a baseline considered, with its own estimates attached."""

    plan: ParallelizationPlan
    estimated_iteration_time_s: float
    estimated_peak_memory_bytes: list[float] | None = None
    estimated_cost_usd: float | None = None

    @property
    def estimated_throughput(self) -> float:
        if self.estimated_iteration_time_s <= 0:
            return 0.0
        return 1.0 / self.estimated_iteration_time_s


@dataclass
class BaselineSearchLimits:
    """Bounds on the candidate enumeration (keep searches finite)."""

    max_pipeline_parallel: int = 16
    max_microbatch_size: int = 8
    max_candidates: int = 4096
    max_ranked: int = 64
    time_limit_s: float | None = 300.0


class BaselinePlanner(abc.ABC):
    """Base class for all reimplemented baseline planners."""

    #: Planner name as used in the paper's figures.
    name: str = "baseline"
    #: Degrees of parallelism searched ("3D" or "2D").
    parallelism: str = "3D"
    #: Whether the planner chooses the resource allocation itself.
    recommends_allocation: bool = False
    #: Whether heterogeneous GPU types are supported.
    supports_heterogeneous: bool = False
    #: Whether multi-zone / geo-distributed placements are supported.
    supports_multizone: bool = False

    def __init__(self, env: SimulationEnvironment,
                 limits: BaselineSearchLimits | None = None) -> None:
        self.env = env
        self.limits = limits or BaselineSearchLimits()
        self.simulator = SailorSimulator(env)
        self.estimator = self.build_estimator()
        #: Absolute ``time.perf_counter()`` deadline for the current solve,
        #: set by :meth:`plan`; ``None`` outside a deadline-bounded call.
        self._deadline: float | None = None
        #: Whether the last enumeration was cut short by the deadline.
        self._enumeration_truncated = False

    # -- subclass interface -------------------------------------------------------

    @abc.abstractmethod
    def build_estimator(self) -> BaselineEstimator:
        """Create the estimator with this baseline's characteristic flags."""

    @abc.abstractmethod
    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        """Candidate plans, best first according to the baseline itself."""

    # -- shared deployment logic -----------------------------------------------------

    def plan(self, job: TrainingJobSpec, topology: ClusterTopology,
             objective: Objective | None = None, *,
             deadline: float | None = None) -> PlannerResult:
        """Pick the baseline's plan and evaluate it accurately.

        ``deadline`` is an *absolute* ``time.perf_counter()`` instant -- the
        same clock and convention :class:`~repro.core.budget.SearchBudget`
        uses -- so a quality-vs-deadline sweep can hand every planner,
        Sailor and baseline alike, one uniform wall deadline instead of
        per-planner relative limits.  When omitted, the baseline's own
        ``limits.time_limit_s`` still applies (relative to the call).  A
        result whose enumeration was cut short is marked ``complete=False``
        with an infinite gap bound: baselines certify nothing about the
        candidates they never generated.
        """
        objective = objective or Objective.max_throughput()
        start = time.perf_counter()
        if deadline is None and self.limits.time_limit_s:
            deadline = start + self.limits.time_limit_s
        self._deadline = deadline
        self._enumeration_truncated = False
        try:
            ranked = self.ranked_plans(job, topology, objective)
        finally:
            self._deadline = None
        search_time = time.perf_counter() - start
        complete = not self._enumeration_truncated

        oom_plans = 0
        chosen: ParallelizationPlan | None = None
        chosen_eval: PlanEvaluation | None = None
        for candidate in ranked:
            evaluation = self.simulator.evaluate(candidate.plan)
            if not evaluation.is_valid:
                oom_plans += 1
                continue
            if not objective.constraint.satisfied_by(
                    evaluation, total_gpus=candidate.plan.total_gpus):
                continue
            chosen, chosen_eval = candidate.plan, evaluation
            break

        return PlannerResult(
            plan=chosen,
            evaluation=chosen_eval,
            search_time_s=search_time,
            planner_name=self.name,
            candidates_evaluated=len(ranked),
            oom_plans_generated=oom_plans,
            complete=complete,
            optimality_gap_bound=0.0 if complete else math.inf,
        )

    # -- shared enumeration helpers ----------------------------------------------------

    def _sort_candidates(self, candidates: list[CandidatePlan],
                         objective: Objective) -> list[CandidatePlan]:
        """Rank candidates by the baseline's own estimate of the objective."""
        if objective.goal is OptimizationGoal.MIN_COST:
            def key(c: CandidatePlan) -> float:
                if c.estimated_cost_usd is not None:
                    return c.estimated_cost_usd
                return c.estimated_iteration_time_s
        else:
            def key(c: CandidatePlan) -> float:
                return c.estimated_iteration_time_s
        ranked = sorted(candidates, key=key)
        return ranked[:self.limits.max_ranked]

    def _estimate_cost(self, plan: ParallelizationPlan,
                       estimated_time_s: float) -> float:
        """Cost estimate used only when a baseline is asked to rank by cost."""
        gpu_counts = plan.resource_allocation().gpus_by_type()
        return self.env.prices.compute_cost(gpu_counts, estimated_time_s)

    def candidate_from_plan(self, plan: ParallelizationPlan,
                            objective: Objective) -> CandidatePlan:
        """Wrap a plan with this baseline's estimates."""
        estimated_time = self.estimator.estimate_iteration_time(plan)
        memory = self.estimator.estimate_peak_memory(plan)
        cost = None
        if objective.goal is OptimizationGoal.MIN_COST or \
                objective.constraint.max_cost_per_iteration_usd is not None:
            cost = self._estimate_cost(plan, estimated_time)
        return CandidatePlan(plan=plan,
                             estimated_iteration_time_s=estimated_time,
                             estimated_peak_memory_bytes=memory,
                             estimated_cost_usd=cost)

    # .. uniform plan enumeration ..........................................................

    def usable_node_types(self, topology: ClusterTopology) -> list[str]:
        """Node types this baseline will consider on the given topology.

        Heterogeneity-aware baselines use every type; homogeneous baselines
        restrict themselves to the fastest GPU type present (the paper gives
        them the A100 pool in mixed clusters).
        """
        node_types = topology.node_types()
        if self.supports_heterogeneous or len(node_types) <= 1:
            return node_types
        def peak(node_type: str) -> float:
            return get_node_type(node_type).gpu.peak_tflops
        best = max(node_types, key=peak)
        return [best]

    def usable_zones(self, topology: ClusterTopology) -> list[str]:
        """Zones this baseline will place workers in."""
        zones = topology.zones
        if self.supports_multizone or len(zones) <= 1:
            return zones
        # Single-zone planners use the zone with the most GPUs.
        return [max(zones, key=topology.gpu_count)]

    def pipeline_candidates(self, job: TrainingJobSpec,
                            total_nodes: int) -> list[int]:
        """Pipeline depths a baseline explores."""
        limit = min(job.model.num_layers, max(1, total_nodes),
                    self.limits.max_pipeline_parallel)
        return list(range(1, limit + 1))

    def microbatch_candidates(self, job: TrainingJobSpec) -> list[int]:
        """Microbatch sizes a baseline explores."""
        return job.valid_microbatch_sizes(max_mbs=self.limits.max_microbatch_size)

    def enumerate_uniform_plans(self, job: TrainingJobSpec,
                                topology: ClusterTopology,
                                *,
                                tensor_parallel_degrees: list[int] | None = None,
                                allow_mixed_types: bool = False,
                                ) -> list[ParallelizationPlan]:
        """All uniform (P, TP, DP, mbs) plans that fit on the fixed topology.

        ``allow_mixed_types`` lets replicas spill onto slower GPU pools once
        the fastest pool is exhausted (how AMP/Metis/FlashFlex use mixed
        clusters while keeping uniform parallelism degrees).
        """
        node_types = self.usable_node_types(topology)
        zones = self.usable_zones(topology)
        if not node_types or not zones:
            return []

        pools = self._node_pools(topology, node_types, zones)
        total_nodes = sum(count for _, _, count in pools)
        if total_nodes == 0:
            return []
        max_gpus_per_node = max(get_node_type(t).gpus_per_node
                                for _, t, _ in pools)

        if tensor_parallel_degrees is None:
            tensor_parallel_degrees = [d for d in (1, 2, 4, 8)
                                       if d <= max_gpus_per_node]

        plans: list[ParallelizationPlan] = []
        # Inside plan() the shared absolute deadline governs; a direct call
        # falls back to the baseline's own relative time limit.
        deadline = self._deadline
        if deadline is None and self.limits.time_limit_s:
            deadline = time.perf_counter() + self.limits.time_limit_s
        for pp in self.pipeline_candidates(job, total_nodes):
            if pp > job.model.num_layers:
                continue
            partitions = uniform_partition(job.model, pp)
            for tp in tensor_parallel_degrees:
                for mbs in self.microbatch_candidates(job):
                    if deadline and time.perf_counter() > deadline:
                        self._enumeration_truncated = True
                        return plans
                    max_dp = self._max_uniform_dp(pools, tp, pp)
                    for dp in self._dp_candidates(job, mbs, max_dp):
                        replica_sets = self._place_uniform(
                            pools, tp, pp, dp, allow_mixed_types)
                        if replica_sets is None:
                            continue
                        stages = [StageConfig(partition=partitions[i],
                                              replicas=replica_sets[i])
                                  for i in range(pp)]
                        try:
                            plans.append(ParallelizationPlan(
                                job=job, stages=stages, microbatch_size=mbs))
                        except ValueError:
                            continue
                        if len(plans) >= self.limits.max_candidates:
                            return plans
        return plans

    # -- placement internals ---------------------------------------------------------------

    @staticmethod
    def _node_pools(topology: ClusterTopology, node_types: list[str],
                    zones: list[str]) -> list[tuple[str, str, int]]:
        """(zone, node_type, count) pools ordered fastest GPU first."""
        pools = []
        for zone in zones:
            for node_type in node_types:
                count = topology.node_count(zone, node_type)
                if count > 0:
                    pools.append((zone, node_type, count))
        pools.sort(key=lambda p: -get_node_type(p[1]).gpu.peak_tflops)
        return pools

    @staticmethod
    def _max_uniform_dp(pools: list[tuple[str, str, int]], tp: int,
                        pp: int) -> int:
        slots = 0
        for _, node_type, count in pools:
            per_node = get_node_type(node_type).gpus_per_node
            if tp > per_node:
                continue
            slots += count * (per_node // tp)
        return slots // pp if pp > 0 else 0

    @staticmethod
    def _dp_candidates(job: TrainingJobSpec, mbs: int, max_dp: int) -> list[int]:
        candidates = []
        d = 1
        while d <= max_dp:
            if (job.global_batch_size % d == 0
                    and (job.global_batch_size // d) % mbs == 0):
                candidates.append(d)
            d *= 2
        return candidates

    @staticmethod
    def _place_uniform(pools: list[tuple[str, str, int]], tp: int, pp: int,
                       dp: int, allow_mixed_types: bool,
                       ) -> list[list[StageReplica]] | None:
        """Pack P*D replicas of TP GPUs each onto the pools, stage by stage."""
        remaining = {(zone, node_type): count for zone, node_type, count in pools
                     if get_node_type(node_type).gpus_per_node >= tp}
        if not remaining:
            return None
        order = [(zone, node_type) for zone, node_type, _ in pools
                 if (zone, node_type) in remaining]
        if not allow_mixed_types:
            # Keep only pools of the first (fastest) node type.
            first_type = order[0][1]
            order = [key for key in order if key[1] == first_type]

        open_slots: dict[tuple[str, str], int] = {}
        stages: list[list[StageReplica]] = []
        for _ in range(pp):
            replicas: list[StageReplica] = []
            for _ in range(dp):
                placed = False
                for key in order:
                    zone, node_type = key
                    if open_slots.get(key, 0) >= tp:
                        open_slots[key] -= tp
                        replicas.append(StageReplica(node_type=node_type,
                                                     tensor_parallel=tp,
                                                     zone=zone))
                        placed = True
                        break
                    if remaining.get(key, 0) > 0:
                        remaining[key] -= 1
                        open_slots[key] = open_slots.get(key, 0) \
                            + get_node_type(node_type).gpus_per_node - tp
                        replicas.append(StageReplica(node_type=node_type,
                                                     tensor_parallel=tp,
                                                     zone=zone))
                        placed = True
                        break
                if not placed:
                    return None
            stages.append(replicas)
        return stages


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BASELINE_REGISTRY: dict[str, type] = {}


def register_baseline(cls: type) -> type:
    """Class decorator registering a baseline under its ``name``."""
    _BASELINE_REGISTRY[cls.name] = cls
    return cls


def get_baseline(name: str, env: SimulationEnvironment,
                 **kwargs) -> BaselinePlanner:
    """Instantiate a baseline planner by its paper name."""
    try:
        cls = _BASELINE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_BASELINE_REGISTRY))
        raise KeyError(f"unknown baseline {name!r}; known: {known}") from None
    return cls(env, **kwargs)


def list_baselines() -> list[str]:
    """Names of all registered baselines, sorted."""
    return sorted(_BASELINE_REGISTRY)
