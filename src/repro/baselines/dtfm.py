"""DTFM (Yuan et al., 2023) -- decentralized / geo-distributed training.

DTFM does not pick parallelism degrees itself: given a (DP, PP) plan it
assigns the workers to the available zones and regions so as to minimise the
time spent in data- and pipeline-parallel communication.  Following the
paper's methodology, we exhaustively generate all homogeneous 2D plans and
apply DTFM's partitioning to each one.  Characteristics reproduced:

* multi-zone / multi-region support, but no heterogeneous GPU types and no
  tensor parallelism (2D);
* a cost function based purely on communication volume/time, which ranks
  candidate plans suboptimally (section 5.2.3);
* it spreads work over *all* available regions even when an extra region
  adds cost without adding throughput;
* no memory footprint estimation, so it OOMs on large models (Figure 12
  discussion);
* exhaustive search, so hundreds of seconds for large clusters.
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan, StageConfig, StageReplica
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.partition import uniform_partition
from repro.models.spec import TrainingJobSpec


@register_baseline
class DTFMPlanner(BaselinePlanner):
    """Communication-aware zone assignment for given 2D plans."""

    name = "dtfm"
    parallelism = "2D"
    recommends_allocation = False
    supports_heterogeneous = False
    supports_multizone = True

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=False,
        ))

    # -- search --------------------------------------------------------------------

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        node_types = self.usable_node_types(topology)
        zones = topology.zones
        pools = self._node_pools(topology, node_types, zones)
        total_nodes = sum(c for _, _, c in pools)
        if total_nodes == 0:
            return []

        # DTFM partitions *given* plans, so the exhaustive generation feeds it
        # plans that use (nearly) all of the fixed allocation it received.
        total_gpus = sum(c * get_node_type(t).gpus_per_node for _, t, c in pools)
        candidates: list[CandidatePlan] = []
        for pp in self.pipeline_candidates(job, total_nodes):
            partitions = uniform_partition(job.model, pp) \
                if pp <= job.model.num_layers else None
            if partitions is None:
                continue
            for mbs in self.microbatch_candidates(job):
                max_dp = self._max_uniform_dp(pools, 1, pp)
                for dp in self._dp_candidates(job, mbs, max_dp):
                    if pp * dp < 0.75 * total_gpus:
                        continue  # the given plan must use the allocation
                    plan = self._assign_zones(job, partitions, pools, pp, dp, mbs)
                    if plan is None:
                        continue
                    candidate = self.candidate_from_plan(plan, objective)
                    # DTFM ranks by communication time only.
                    candidate = CandidatePlan(
                        plan=candidate.plan,
                        estimated_iteration_time_s=self._communication_time(plan),
                        estimated_peak_memory_bytes=None,
                        estimated_cost_usd=candidate.estimated_cost_usd)
                    candidates.append(candidate)
                    if len(candidates) >= self.limits.max_candidates:
                        return self._sort_candidates(candidates, objective)
        return self._sort_candidates(candidates, objective)

    # -- DTFM specifics ----------------------------------------------------------------

    def _communication_time(self, plan: ParallelizationPlan) -> float:
        """DTFM's objective: time spent in DP + PP communication only."""
        p2p = 0.0
        chain = plan.pipeline(0)
        for i in range(len(chain) - 1):
            p2p += 2.0 * self.estimator.p2p_time(plan, chain[i], chain[i + 1])
        p2p *= plan.num_microbatches
        sync = max((self.estimator.sync_time(plan, s) for s in plan.stages),
                   default=0.0)
        return p2p + sync

    def _assign_zones(self, job: TrainingJobSpec, partitions, pools,
                      pp: int, dp: int, mbs: int) -> ParallelizationPlan | None:
        """Spread pipelines across *all* zones (DTFM's partitioning habit).

        Each data-parallel pipeline is placed in one zone (keeping pipeline
        communication local) and pipelines are distributed round-robin over
        every zone that has capacity, which matches DTFM's tendency to use
        all available regions.
        """
        remaining = {(z, t): c for z, t, c in pools}
        zone_order = sorted({z for z, _, _ in pools})
        if not zone_order:
            return None

        # replicas[stage][d]
        replicas: list[list[StageReplica | None]] = [
            [None] * dp for _ in range(pp)]
        open_slots: dict[tuple[str, str], int] = {}
        zone_index = 0
        for d in range(dp):
            # Pick the next zone with any remaining capacity.
            chosen = None
            for offset in range(len(zone_order)):
                zone = zone_order[(zone_index + offset) % len(zone_order)]
                has_capacity = any(
                    remaining.get((zone, t), 0) > 0 or open_slots.get((zone, t), 0) > 0
                    for _, t, _ in pools)
                if has_capacity:
                    chosen = zone
                    zone_index = (zone_index + offset + 1) % len(zone_order)
                    break
            if chosen is None:
                return None
            for stage_idx in range(pp):
                placed = False
                for zone, node_type, _ in pools:
                    if zone != chosen:
                        continue
                    key = (zone, node_type)
                    if open_slots.get(key, 0) >= 1:
                        open_slots[key] -= 1
                        replicas[stage_idx][d] = StageReplica(
                            node_type=node_type, tensor_parallel=1, zone=zone)
                        placed = True
                        break
                    if remaining.get(key, 0) > 0:
                        remaining[key] -= 1
                        open_slots[key] = get_node_type(node_type).gpus_per_node - 1
                        replicas[stage_idx][d] = StageReplica(
                            node_type=node_type, tensor_parallel=1, zone=zone)
                        placed = True
                        break
                if not placed:
                    # Fall back to any zone with capacity (pipeline spills).
                    for zone, node_type, _ in pools:
                        key = (zone, node_type)
                        if open_slots.get(key, 0) >= 1:
                            open_slots[key] -= 1
                        elif remaining.get(key, 0) > 0:
                            remaining[key] -= 1
                            open_slots[key] = get_node_type(node_type).gpus_per_node - 1
                        else:
                            continue
                        replicas[stage_idx][d] = StageReplica(
                            node_type=node_type, tensor_parallel=1, zone=zone)
                        placed = True
                        break
                if not placed:
                    return None

        stages = []
        for stage_idx in range(pp):
            stage_replicas = [r for r in replicas[stage_idx] if r is not None]
            if len(stage_replicas) != dp:
                return None
            stages.append(StageConfig(partition=partitions[stage_idx],
                                      replicas=stage_replicas))
        try:
            return ParallelizationPlan(job=job, stages=stages, microbatch_size=mbs)
        except ValueError:
            return None
