"""Piper (Tarnawski et al., NeurIPS 2021).

A multidimensional planner for homogeneous clusters: given a fixed resource
allocation it searches tensor/pipeline/data parallelism with a two-level
dynamic program.  Characteristics reproduced from the paper's comparison:

* very fast search (< 1 s for 128 A100 in Table 1);
* homogeneous assumptions -- one GPU type, no zones, no stragglers;
* memory model that assumes a *uniform* footprint across pipeline stages and
  a single in-flight microbatch, which is why its peak-memory estimates are
  far from the measured footprint in Figure 3.
"""

from __future__ import annotations

from repro.baselines.base import BaselinePlanner, CandidatePlan, register_baseline
from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


@register_baseline
class PiperPlanner(BaselinePlanner):
    """Dynamic-programming planner for homogeneous clusters."""

    name = "piper"
    parallelism = "3D"
    recommends_allocation = False
    supports_heterogeneous = False
    supports_multizone = False

    def build_estimator(self) -> BaselineEstimator:
        return BaselineEstimator(self.env, EstimatorFlags(
            models_memory=True,
            include_optimizer_state=True,
            include_activations=True,
            include_framework_overhead=False,
            uniform_stage_memory=True,
            per_stage_in_flight=False,
            models_stragglers=False,
            uses_theoretical_flops=False,
            models_p2p_communication=True,
            models_dp_sync=True,
            models_embedding_and_head=False,
            message_size_aware_bandwidth=False,
        ))

    def ranked_plans(self, job: TrainingJobSpec, topology: ClusterTopology,
                     objective: Objective) -> list[CandidatePlan]:
        plans = self.enumerate_uniform_plans(job, topology,
                                             allow_mixed_types=False)
        candidates = []
        for plan in plans:
            if not self.estimator.plan_fits(plan):
                continue
            candidates.append(self.candidate_from_plan(plan, objective))
        return self._sort_candidates(candidates, objective)
