"""Simulated job profiler.

Produces the per-layer compute/memory tables (:class:`~repro.profiler.profiles.JobProfile`)
that the real Sailor profiler would measure with PyTorch hooks and CUDA
events on a single node of each GPU type.

The timing model combines:

* analytic FLOP counts per transformer block / embedding / LM head
  (:mod:`repro.models.spec`);
* a per-GPU *efficiency curve* -- the fraction of peak throughput achieved as
  a function of the work per kernel (small microbatches and high
  tensor-parallel degrees under-utilise the GPU);
* intra-node tensor-parallel all-reduce time (the real profiler measures the
  layer *including* its TP collectives, so we fold that in here);
* a memory-bandwidth-bound optimizer update; and
* optional multiplicative measurement noise, so the "measured" numbers do not
  exactly match the analytic ground truth (mirroring real profiling jitter).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collectives import ring_allreduce_time
from repro.hardware.gpus import GPUSpec
from repro.hardware.network import LinkSpec
from repro.models.spec import TrainingJobSpec, dtype_size_bytes
from repro.profiler.profiles import JobProfile, LayerCompute


#: Achievable fraction of peak tensor throughput for large, well-shaped GEMMs,
#: by GPU architecture generation.  Data-centre parts sustain a larger share
#: of peak than consumer boards.
DEFAULT_PEAK_EFFICIENCY: dict[str, float] = {
    "hopper": 0.60,
    "grace-hopper": 0.62,
    "ampere": 0.55,
    "volta": 0.48,
    "turing": 0.33,
}

#: Fallback efficiency for unknown generations.
FALLBACK_EFFICIENCY = 0.40


@dataclass
class GPUEfficiencyModel:
    """Maps (GPU, per-rank work) to achieved FLOP/s.

    ``saturation_s`` is the kernel duration (at peak) beyond which the GPU is
    considered fully utilised; shorter kernels are launch/memory bound and
    achieve proportionally less.  ``tp_penalty`` models the small loss in
    kernel efficiency when a layer is sliced across tensor-parallel ranks.
    """

    peak_efficiency: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PEAK_EFFICIENCY))
    saturation_s: float = 2e-3
    tp_penalty: float = 0.03

    def max_efficiency(self, gpu: GPUSpec) -> float:
        """Best-case fraction of peak for this GPU."""
        return self.peak_efficiency.get(gpu.generation, FALLBACK_EFFICIENCY)

    def achieved_flops(self, gpu: GPUSpec, flops_per_rank: float,
                       tensor_parallel: int = 1) -> float:
        """Achieved FLOP/s for a kernel of ``flops_per_rank`` on one rank."""
        if flops_per_rank <= 0:
            return gpu.peak_flops * self.max_efficiency(gpu)
        if tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        max_eff = self.max_efficiency(gpu)
        # Ramp: kernels much shorter than saturation_s are under-utilised.
        ideal_duration = flops_per_rank / (gpu.peak_flops * max_eff)
        ramp = ideal_duration / (ideal_duration + self.saturation_s)
        tp_factor = max(0.5, 1.0 - self.tp_penalty * (tensor_parallel - 1))
        efficiency = max_eff * (0.25 + 0.75 * ramp) * tp_factor
        return gpu.peak_flops * efficiency

    def compute_time(self, gpu: GPUSpec, flops_per_rank: float,
                     tensor_parallel: int = 1) -> float:
        """Seconds to execute ``flops_per_rank`` on one rank."""
        if flops_per_rank <= 0:
            return 0.0
        return flops_per_rank / self.achieved_flops(gpu, flops_per_rank, tensor_parallel)


class ComputeProfiler:
    """Builds :class:`JobProfile` tables for a (job, GPU type) pair."""

    def __init__(self, efficiency_model: GPUEfficiencyModel | None = None,
                 noise_std: float = 0.0, seed: int = 0) -> None:
        self.efficiency = efficiency_model or GPUEfficiencyModel()
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    # -- public API ----------------------------------------------------------

    def profile(self, job: TrainingJobSpec, gpu: GPUSpec,
                microbatch_sizes: list[int] | None = None,
                tensor_parallel_degrees: list[int] | None = None) -> JobProfile:
        """Profile one job on one GPU type.

        Mirrors the paper's single-node profiling: only one transformer layer
        is measured (repeated layers are identical), plus the embedding and
        the LM head, for every combination of microbatch size and
        tensor-parallel degree requested.
        """
        model = job.model
        if microbatch_sizes is None:
            microbatch_sizes = job.valid_microbatch_sizes(max_mbs=16)
        if tensor_parallel_degrees is None:
            tensor_parallel_degrees = [1, 2, 4, 8]

        profile = JobProfile(
            model_name=model.name,
            gpu_type=gpu.name,
            params_per_layer=model.params_per_layer,
            embedding_params=model.embedding_params,
            head_params=model.lm_head_params or model.vocab_size * model.hidden_size,
        )
        seq = job.sequence_length
        for mbs in microbatch_sizes:
            profile.boundary_bytes[mbs] = model.boundary_activation_bytes(
                mbs, seq, dtype=job.dtype)
            for tp in tensor_parallel_degrees:
                profile.layer_times[(mbs, tp)] = self._profile_layer(job, gpu, mbs, tp)
                profile.embedding_times[(mbs, tp)] = self._profile_embedding(job, gpu, mbs, tp)
                profile.head_times[(mbs, tp)] = self._profile_head(job, gpu, mbs, tp)
                profile.activation_bytes[(mbs, tp)] = model.layer_activation_bytes(
                    mbs, seq, tensor_parallel=tp, dtype=job.dtype)
        return profile

    # -- internals -----------------------------------------------------------

    def _noise(self) -> float:
        if self.noise_std <= 0:
            return 1.0
        return float(max(0.5, self._rng.normal(1.0, self.noise_std)))

    def _tp_allreduce_time(self, job: TrainingJobSpec, gpu: GPUSpec,
                           microbatch_size: int, tensor_parallel: int,
                           num_collectives: int) -> float:
        """Intra-node all-reduce time folded into a layer's measured time."""
        if tensor_parallel <= 1:
            return 0.0
        message_bytes = (job.model.boundary_activation_bytes(
            microbatch_size, job.sequence_length, dtype=job.dtype))
        link = LinkSpec(bandwidth_gbps=gpu.intra_node_bw_gbps * 8.0, latency_s=5e-6)
        single = ring_allreduce_time(message_bytes, tensor_parallel, link.transfer_time)
        return num_collectives * single

    def _update_time(self, params: int, gpu: GPUSpec, tensor_parallel: int) -> float:
        """Optimizer step time: memory-bandwidth bound over optimizer state."""
        # Adam reads/writes roughly 32 bytes per parameter (fp32 master, m, v
        # read + write, fp16 weight write).
        bytes_touched = (params / tensor_parallel) * 32.0
        return bytes_touched / (gpu.mem_bandwidth_gbps * 1e9)

    def _profile_layer(self, job: TrainingJobSpec, gpu: GPUSpec,
                       mbs: int, tp: int) -> LayerCompute:
        model = job.model
        seq = job.sequence_length
        fwd_flops = model.layer_forward_flops(mbs, seq) / tp
        bwd_flops = model.layer_backward_flops(mbs, seq) / tp
        fwd = self.efficiency.compute_time(gpu, fwd_flops, tp)
        bwd = self.efficiency.compute_time(gpu, bwd_flops, tp)
        fwd += self._tp_allreduce_time(job, gpu, mbs, tp, num_collectives=2)
        bwd += self._tp_allreduce_time(job, gpu, mbs, tp, num_collectives=2)
        update = self._update_time(model.params_per_layer, gpu, tp)
        return LayerCompute(
            gpu_type=gpu.name, microbatch_size=mbs, tensor_parallel=tp,
            forward_s=fwd * self._noise(),
            backward_s=bwd * self._noise(),
            update_s=update * self._noise(),
        )

    def _profile_embedding(self, job: TrainingJobSpec, gpu: GPUSpec,
                           mbs: int, tp: int) -> LayerCompute:
        model = job.model
        seq = job.sequence_length
        # Embedding lookup is memory-bandwidth bound.
        bytes_moved = mbs * seq * model.hidden_size * dtype_size_bytes(job.dtype)
        fwd = bytes_moved / (gpu.mem_bandwidth_gbps * 1e9)
        bwd = 2.0 * fwd  # scatter-add of gradients
        update = self._update_time(model.embedding_params, gpu, tp)
        return LayerCompute(
            gpu_type=gpu.name, microbatch_size=mbs, tensor_parallel=tp,
            forward_s=fwd * self._noise(),
            backward_s=bwd * self._noise(),
            update_s=update * self._noise(),
        )

    def _profile_head(self, job: TrainingJobSpec, gpu: GPUSpec,
                      mbs: int, tp: int) -> LayerCompute:
        model = job.model
        seq = job.sequence_length
        fwd_flops = model.lm_head_forward_flops(mbs, seq) / tp
        fwd = self.efficiency.compute_time(gpu, fwd_flops, tp)
        bwd = 2.0 * fwd
        head_params = model.lm_head_params or model.vocab_size * model.hidden_size
        update = self._update_time(head_params, gpu, tp)
        return LayerCompute(
            gpu_type=gpu.name, microbatch_size=mbs, tensor_parallel=tp,
            forward_s=fwd * self._noise(),
            backward_s=bwd * self._noise(),
            update_s=update * self._noise(),
        )
