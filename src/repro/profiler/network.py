"""Simulated network profiler.

The real Sailor profiler measures bandwidth between every pair of machine
types by running PyTorch/NCCL transfers at varying message sizes and fitting
a polynomial to the achieved bandwidth (paper section 4.1).  This module
reproduces that pipeline against the ground-truth
:class:`~repro.hardware.network.NetworkModel`: it "measures" achieved
bandwidth at a sweep of message sizes (optionally with noise) and fits the
same polynomial, producing :class:`~repro.profiler.profiles.NetworkProfile`
objects for the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.network import LinkClass, NetworkModel
from repro.hardware.nodes import NodeSpec
from repro.profiler.profiles import NetworkProfile, ProfileStore


#: Message sizes (bytes) swept by the profiler: 4 KiB .. 1 GiB in 2x steps.
DEFAULT_MESSAGE_SIZES: tuple[float, ...] = tuple(
    float(4 * 1024 * (2 ** i)) for i in range(19))


def fit_bandwidth_polynomial(message_sizes: list[float],
                             bandwidths: list[float],
                             degree: int = 3) -> tuple[float, ...]:
    """Fit achieved bandwidth (bytes/s) as a polynomial in log2(message size).

    Returns the coefficients highest-power-first, matching
    :class:`~repro.profiler.profiles.NetworkProfile`.
    """
    if len(message_sizes) != len(bandwidths):
        raise ValueError("message_sizes and bandwidths must have equal length")
    if len(message_sizes) <= degree:
        raise ValueError("need more measurements than the polynomial degree")
    if any(m <= 0 for m in message_sizes):
        raise ValueError("message sizes must be positive")
    x = np.log2(np.asarray(message_sizes, dtype=float))
    y = np.asarray(bandwidths, dtype=float)
    coeffs = np.polyfit(x, y, deg=degree)
    return tuple(float(c) for c in coeffs)


class NetworkProfiler:
    """Measures and fits bandwidth curves between node-type pairs."""

    def __init__(self, network: NetworkModel, noise_std: float = 0.0,
                 seed: int = 0, degree: int = 4) -> None:
        self.network = network
        self.noise_std = noise_std
        self.degree = degree
        self._rng = np.random.default_rng(seed)

    def measure(self, node_a: NodeSpec, node_b: NodeSpec, link_class: LinkClass,
                message_sizes: tuple[float, ...] = DEFAULT_MESSAGE_SIZES,
                ) -> tuple[list[float], list[float]]:
        """Measure achieved bandwidth at each message size (with noise)."""
        sizes = list(message_sizes)
        truth = self.network.bandwidth_curve(node_a, node_b, link_class, sizes)
        if self.noise_std <= 0:
            return sizes, truth
        noise = self._rng.normal(1.0, self.noise_std, size=len(truth))
        measured = [max(1.0, b * max(0.5, n)) for b, n in zip(truth, noise)]
        return sizes, measured

    def profile_pair(self, node_a: NodeSpec, node_b: NodeSpec,
                     link_class: LinkClass,
                     message_sizes: tuple[float, ...] = DEFAULT_MESSAGE_SIZES,
                     ) -> NetworkProfile:
        """Measure one node-type pair and fit the bandwidth polynomial."""
        sizes, measured = self.measure(node_a, node_b, link_class, message_sizes)
        coeffs = fit_bandwidth_polynomial(sizes, measured, degree=self.degree)
        return NetworkProfile(
            node_type_a=node_a.name,
            node_type_b=node_b.name,
            link_class=link_class,
            coefficients=coeffs,
            min_message_bytes=min(sizes),
            max_message_bytes=max(sizes),
        )

    def profile_all_pairs(self, node_types: list[NodeSpec],
                          store: ProfileStore | None = None) -> ProfileStore:
        """Profile every (pair, link class) combination into a store."""
        store = store or ProfileStore()
        for i, node_a in enumerate(node_types):
            for node_b in node_types[i:]:
                for link_class in LinkClass:
                    if link_class is LinkClass.INTRA_NODE and node_a.name != node_b.name:
                        continue
                    store.add_network_profile(
                        self.profile_pair(node_a, node_b, link_class))
        return store
