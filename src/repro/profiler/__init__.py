"""Simulated Sailor profiler.

The real Sailor profiler runs one node of every GPU type, instruments a
single transformer layer with PyTorch hooks / CUDA events, and measures the
network between node-type pairs with NCCL microbenchmarks (paper section
4.1).  Without GPUs, this package produces the *same profile tables* from an
analytic model:

* :mod:`repro.profiler.compute` -- per-layer forward/backward/update times
  per (GPU type, microbatch size, tensor-parallel degree), plus parameter
  and activation sizes.
* :mod:`repro.profiler.network` -- bandwidth-vs-message-size measurements
  and the polynomial fit the paper describes.
* :mod:`repro.profiler.profiles` -- the profile dataclasses and the
  :class:`ProfileStore` consumed by the planner and simulator.
"""

from repro.profiler.profiles import (
    LayerCompute,
    JobProfile,
    NetworkProfile,
    ProfileStore,
)
from repro.profiler.compute import ComputeProfiler, GPUEfficiencyModel
from repro.profiler.network import NetworkProfiler, fit_bandwidth_polynomial

__all__ = [
    "LayerCompute",
    "JobProfile",
    "NetworkProfile",
    "ProfileStore",
    "ComputeProfiler",
    "GPUEfficiencyModel",
    "NetworkProfiler",
    "fit_bandwidth_polynomial",
]
