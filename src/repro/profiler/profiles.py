"""Profile dataclasses and the profile store.

These are the tables the Sailor planner and simulator consume.  They are the
interface between "measurement" (real hardware in the paper, the analytic
profiler here) and everything downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.network import LinkClass


@dataclass(frozen=True)
class LayerCompute:
    """Measured compute times of one transformer layer on one GPU type.

    All times are seconds for a single microbatch at the given microbatch
    size and tensor-parallel degree.
    """

    gpu_type: str
    microbatch_size: int
    tensor_parallel: int
    forward_s: float
    backward_s: float
    update_s: float

    def __post_init__(self) -> None:
        if self.microbatch_size < 1 or self.tensor_parallel < 1:
            raise ValueError("microbatch_size and tensor_parallel must be >= 1")
        if min(self.forward_s, self.backward_s, self.update_s) < 0:
            raise ValueError("times must be non-negative")

    @property
    def fwd_bwd_s(self) -> float:
        """Forward plus backward time for one microbatch."""
        return self.forward_s + self.backward_s


@dataclass
class JobProfile:
    """Profile of one training job on one GPU type.

    Attributes
    ----------
    model_name / gpu_type:
        Identification of the profiled (model, GPU) pair.
    layer_times:
        ``(microbatch_size, tensor_parallel) -> LayerCompute`` for one
        transformer block.
    embedding_times / head_times:
        Same mapping for the embedding and the LM-head/loss portion.
    params_per_layer / embedding_params / head_params:
        Parameter counts used by the memory estimator.
    activation_bytes:
        ``(microbatch_size, tensor_parallel) -> bytes`` of saved activations
        of one transformer block.
    boundary_bytes:
        ``microbatch_size -> bytes`` of the activation tensor crossing a
        pipeline-stage boundary.
    """

    model_name: str
    gpu_type: str
    layer_times: dict[tuple[int, int], LayerCompute] = field(default_factory=dict)
    embedding_times: dict[tuple[int, int], LayerCompute] = field(default_factory=dict)
    head_times: dict[tuple[int, int], LayerCompute] = field(default_factory=dict)
    params_per_layer: int = 0
    embedding_params: int = 0
    head_params: int = 0
    activation_bytes: dict[tuple[int, int], float] = field(default_factory=dict)
    boundary_bytes: dict[int, float] = field(default_factory=dict)

    def microbatch_sizes(self) -> list[int]:
        """Microbatch sizes covered by this profile, sorted."""
        return sorted({mbs for mbs, _ in self.layer_times})

    def tensor_parallel_degrees(self) -> list[int]:
        """Tensor-parallel degrees covered by this profile, sorted."""
        return sorted({tp for _, tp in self.layer_times})

    def layer(self, microbatch_size: int, tensor_parallel: int) -> LayerCompute:
        """Layer times for one configuration; raises ``KeyError`` if absent."""
        try:
            return self.layer_times[(microbatch_size, tensor_parallel)]
        except KeyError:
            raise KeyError(
                f"no profile for mbs={microbatch_size}, tp={tensor_parallel} "
                f"on {self.gpu_type} (model {self.model_name})") from None

    def has(self, microbatch_size: int, tensor_parallel: int) -> bool:
        """True when a configuration was profiled."""
        return (microbatch_size, tensor_parallel) in self.layer_times

    def embedding(self, microbatch_size: int, tensor_parallel: int) -> LayerCompute:
        """Embedding times for one configuration."""
        return self.embedding_times[(microbatch_size, tensor_parallel)]

    def head(self, microbatch_size: int, tensor_parallel: int) -> LayerCompute:
        """LM-head times for one configuration."""
        return self.head_times[(microbatch_size, tensor_parallel)]

    def activations(self, microbatch_size: int, tensor_parallel: int) -> float:
        """Saved-activation bytes of one block for one configuration."""
        return self.activation_bytes[(microbatch_size, tensor_parallel)]


@dataclass
class NetworkProfile:
    """Fitted bandwidth curve between a pair of node types.

    ``coefficients`` are polynomial coefficients (highest power first, as
    returned by :func:`numpy.polyfit`) of achieved bandwidth in bytes/s as a
    function of ``log2(message_bytes)``, which is the fit the paper describes
    in section 4.1.
    """

    node_type_a: str
    node_type_b: str
    link_class: LinkClass
    coefficients: tuple[float, ...]
    min_message_bytes: float
    max_message_bytes: float

    def bandwidth(self, message_bytes: float) -> float:
        """Predicted achieved bandwidth (bytes/s) for a message size."""
        import math

        if message_bytes <= 0:
            return 0.0
        clamped = min(max(message_bytes, self.min_message_bytes), self.max_message_bytes)
        x = math.log2(clamped)
        result = 0.0
        for coeff in self.coefficients:
            result = result * x + coeff
        return max(result, 1.0)

    def transfer_time(self, message_bytes: float) -> float:
        """Predicted time (s) to move ``message_bytes`` once over the link."""
        if message_bytes <= 0:
            return 0.0
        return message_bytes / self.bandwidth(message_bytes)


@dataclass
class ProfileStore:
    """All profiles the planner needs for one job on one resource pool."""

    job_profiles: dict[str, JobProfile] = field(default_factory=dict)
    network_profiles: dict[tuple[str, str, LinkClass], NetworkProfile] = field(
        default_factory=dict)

    def add_job_profile(self, profile: JobProfile) -> None:
        """Register the job profile for one GPU type."""
        self.job_profiles[profile.gpu_type] = profile

    def add_network_profile(self, profile: NetworkProfile) -> None:
        """Register a fitted network curve (both orderings of the pair)."""
        key = (profile.node_type_a, profile.node_type_b, profile.link_class)
        self.network_profiles[key] = profile
        rkey = (profile.node_type_b, profile.node_type_a, profile.link_class)
        self.network_profiles.setdefault(rkey, profile)

    def job_profile(self, gpu_type: str) -> JobProfile:
        """Job profile for a GPU type; raises ``KeyError`` when missing."""
        try:
            return self.job_profiles[gpu_type]
        except KeyError:
            known = ", ".join(sorted(self.job_profiles))
            raise KeyError(
                f"no job profile for GPU type {gpu_type!r}; profiled: {known}") from None

    def network_profile(self, node_type_a: str, node_type_b: str,
                        link_class: LinkClass) -> NetworkProfile:
        """Fitted network curve for a node-type pair and link class."""
        key = (node_type_a, node_type_b, link_class)
        try:
            return self.network_profiles[key]
        except KeyError:
            raise KeyError(
                f"no network profile for {node_type_a} <-> {node_type_b} "
                f"({link_class.value})") from None

    def gpu_types(self) -> list[str]:
        """GPU types with a job profile, sorted."""
        return sorted(self.job_profiles)
