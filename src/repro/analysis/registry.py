"""Rule registry of the invariant linter.

A rule is a class with a unique ``name``, a one-line ``description`` and a
``run(index) -> list[Finding]`` method.  Registration is by decorator so
``repro.analysis.rules`` only has to be imported for the full set to be
available; the driver instantiates each rule once per lint run.
"""

from __future__ import annotations

from repro.analysis.core import Finding, ProjectIndex

#: name -> rule class; populated by :func:`register_rule`.
RULES: dict[str, type["Rule"]] = {}


class Rule:
    """Base class; subclasses override :meth:`run`."""

    #: Unique rule id, used in reports and ``# lint: disable=<name>``.
    name: str = ""
    #: One-line statement of the enforced invariant.
    description: str = ""

    def run(self, index: ProjectIndex) -> list[Finding]:
        raise NotImplementedError


def register_rule(cls: type[Rule]) -> type[Rule]:
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULES[cls.name] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """The full registry, importing the project rules on first use."""
    # Imported lazily so `from repro.analysis.core import ...` never pays
    # for (or cycles through) the rule modules.
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return dict(RULES)
