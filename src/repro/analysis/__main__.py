"""``python -m repro.analysis`` -> the lint CLI."""

import sys

from repro.analysis.driver import main

sys.exit(main())
