"""Framework primitives of the invariant linter.

Three pieces, deliberately dependency-free (stdlib ``ast`` only):

* :class:`Finding` -- one rule violation, anchored to a file/line.
* :class:`Suppression` -- a parsed ``# lint: disable=<rule> -- <why>``
  comment.  The justification text is **mandatory**: a disable comment
  without one is itself reported (rule id ``bad-suppression``) and
  suppresses nothing, so every waived invariant carries its reason in the
  source next to the waiver.
* :class:`SourceFile` / :class:`ProjectIndex` -- parsed files plus the
  cross-file lookups the project rules share (config-class extraction,
  the identifier corpus of the test suite).

Suppression scopes
------------------
``# lint: disable=rule[,rule2] -- justification`` applies to findings on
the same line or the first code line below it; contiguous comment lines in
between still count, so a long justification may continue over several
``#`` lines under the disable comment.  Rules that check whole functions
additionally anchor their findings to the ``def``/decorator lines, so one
justified comment above the function covers it (used sparingly; see
CONTRACTS.md).
``# lint: disable-file=rule -- justification`` at any line waives the rule
for the whole file.  The rule name ``all`` matches every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: ``# lint: disable=rule-a,rule-b -- justification`` (file variant:
#: ``disable-file``).  The justification separator is a literal ``--``.
_SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\- ]+?)\s*"
    r"(?:--\s*(?P<why>.*\S)\s*)?$")

#: Marker phrases in a config field's ``#:`` doc comment that declare it
#: value-preserving (a pure latency/dispatch knob whose on/off products are
#: bit-identical, backed by the equivalence suites).  Such fields are
#: exempt from the cache-key completeness contract -- an unkeyed field can
#: only fork cached results if it can change a result at all.
VALUE_PRESERVING_MARKERS = (
    "byte-identical",
    "bit-identical",
    "value-preserving",
    "value-identical",
    "outcome-identical",
    "equivalence test",
    "latency knob",
    "latency policy",
    "purely a latency",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str
    path: str  # repo-relative, "/" separated
    line: int
    col: int
    message: str
    #: Extra lines where a suppression also waives this finding (e.g. the
    #: ``def`` line of the enclosing function for whole-function rules).
    anchor_lines: tuple[int, ...] = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(rule=data["rule"], path=data["path"], line=data["line"],
                   col=data["col"], message=data["message"])


@dataclass(frozen=True)
class Suppression:
    """A parsed, well-formed disable comment."""

    rules: tuple[str, ...]
    justification: str
    line: int
    file_scope: bool

    def matches(self, rule: str) -> bool:
        return rule in self.rules or "all" in self.rules


def parse_suppressions(source: str, rel_path: str,
                       ) -> tuple[dict[int, list[Suppression]],
                                  list[Suppression], list[Finding]]:
    """Extract disable comments from one file's source.

    Returns ``(by_line, file_scope, malformed)`` where ``malformed`` holds
    ``bad-suppression`` findings for disable comments missing their
    mandatory ``-- justification`` tail (those suppress nothing).
    """
    by_line: dict[int, list[Suppression]] = {}
    file_scope: list[Suppression] = []
    malformed: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "lint:" not in text:
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        why = match.group("why")
        rules = tuple(part.strip() for part in match.group("rules").split(",")
                      if part.strip())
        if not why or not rules:
            malformed.append(Finding(
                rule="bad-suppression", path=rel_path, line=lineno,
                col=text.index("#"),
                message="lint suppression without a justification: write "
                        "'# lint: disable=<rule> -- <why>' (the reason is "
                        "mandatory; this comment suppresses nothing)"))
            continue
        suppression = Suppression(
            rules=rules, justification=why, line=lineno,
            file_scope=match.group("scope") == "disable-file")
        if suppression.file_scope:
            file_scope.append(suppression)
        else:
            by_line.setdefault(lineno, []).append(suppression)
    return by_line, file_scope, malformed


@dataclass
class SourceFile:
    """One parsed python file plus its suppression table."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, list[Suppression]]
    file_suppressions: list[Suppression]
    malformed: list[Finding]

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        rel = path.relative_to(root).as_posix()
        tree = ast.parse(source, filename=str(path))
        by_line, file_scope, malformed = parse_suppressions(source, rel)
        return cls(path=path, rel=rel, source=source, tree=tree,
                   suppressions=by_line, file_suppressions=file_scope,
                   malformed=malformed)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def is_suppressed(self, finding: Finding) -> Suppression | None:
        """The suppression waiving ``finding`` in this file, if any.

        A suppression applies on the finding's own line (or any anchor
        line, e.g. the enclosing ``def`` for whole-function rules), or in
        the contiguous comment block directly above it -- so a disable
        comment may carry continuation comment lines below it.
        """
        for suppression in self.file_suppressions:
            if suppression.matches(finding.rule):
                return suppression
        lines = self.lines
        candidates: set[int] = set()
        for anchor in (finding.line, *finding.anchor_lines):
            candidates.add(anchor)
            cursor = anchor - 1
            while (cursor >= 1 and cursor - 1 < len(lines)
                   and lines[cursor - 1].lstrip().startswith("#")):
                candidates.add(cursor)
                cursor -= 1
        for lineno in candidates:
            for suppression in self.suppressions.get(lineno, ()):
                if suppression.matches(finding.rule):
                    return suppression
        return None

    # -- AST helpers ----------------------------------------------------------

    def functions(self) -> list[tuple[str, ast.FunctionDef]]:
        """Every (qualified name, def) in the file, methods included."""
        found: list[tuple[str, ast.FunctionDef]] = []

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    name = f"{prefix}{child.name}"
                    found.append((name, child))
                    walk(child, f"{name}.")
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.")
                else:
                    walk(child, prefix)

        walk(self.tree, "")
        return found


@dataclass(frozen=True)
class ConfigField:
    """One annotated field of a config dataclass."""

    cls_name: str
    name: str
    annotation: str
    line: int
    file: str
    doc_comment: str

    @property
    def is_bool(self) -> bool:
        return self.annotation == "bool"

    @property
    def declared_value_preserving(self) -> bool:
        lowered = self.doc_comment.lower()
        return any(marker in lowered for marker in VALUE_PRESERVING_MARKERS)


def extract_config_fields(source_file: SourceFile,
                          class_names: tuple[str, ...]) -> list[ConfigField]:
    """Annotated fields of the named dataclasses, with their ``#:`` docs.

    The doc comment is the contiguous comment block directly above the
    field (the ``#:`` convention the configs use); rules match
    value-preservation markers against it.
    """
    lines = source_file.lines
    fields: list[ConfigField] = []
    for node in ast.walk(source_file.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in class_names:
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            comment_parts: list[str] = []
            cursor = stmt.lineno - 2  # 0-based line above the field
            while cursor >= 0 and lines[cursor].lstrip().startswith("#"):
                comment_parts.append(lines[cursor].lstrip().lstrip("#:").strip())
                cursor -= 1
            fields.append(ConfigField(
                cls_name=node.name, name=stmt.target.id,
                annotation=ast.unparse(stmt.annotation),
                line=stmt.lineno, file=source_file.rel,
                doc_comment=" ".join(reversed(comment_parts))))
    return fields


@dataclass
class ProjectIndex:
    """Parsed source + test corpora handed to every rule.

    ``src_files`` is what the rules lint; ``test_files`` is consulted as a
    reference corpus only (which toggles/bounds the test suite mentions),
    never linted itself.
    """

    root: Path
    src_files: list[SourceFile]
    test_files: list[SourceFile]
    _test_corpus: set[str] | None = field(default=None, repr=False)

    @classmethod
    def build(cls, root: Path, src_paths: list[Path],
              test_paths: list[Path]) -> "ProjectIndex":
        return cls(root=root,
                   src_files=[SourceFile.load(p, root) for p in sorted(src_paths)],
                   test_files=[SourceFile.load(p, root) for p in sorted(test_paths)])

    def by_basename(self, *names: str) -> list[SourceFile]:
        return [f for f in self.src_files if f.path.name in names]

    def test_corpus(self) -> set[str]:
        """Every identifier, attribute and string literal in the tests.

        AST-gated on purpose: a toggle named only in a *comment* does not
        count as covered -- it must appear as a keyword argument, an
        attribute, a name or a string (e.g. a parametrize id).
        """
        if self._test_corpus is None:
            corpus: set[str] = set()
            for source_file in self.test_files:
                for node in ast.walk(source_file.tree):
                    if isinstance(node, ast.Name):
                        corpus.add(node.id)
                    elif isinstance(node, ast.Attribute):
                        corpus.add(node.attr)
                    elif isinstance(node, ast.keyword) and node.arg:
                        corpus.add(node.arg)
                    elif (isinstance(node, ast.Constant)
                          and isinstance(node.value, str)):
                        corpus.update(
                            re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
                    elif isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef, ast.ClassDef)):
                        corpus.add(node.name)
            self._test_corpus = corpus
        return self._test_corpus


def attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def call_name(node: ast.Call) -> str | None:
    """The terminal name of a call's callee (``a.b.f(...)`` -> ``f``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None
