"""Text and JSON reporters for lint results.

The JSON schema (``version`` 1) round-trips through
:func:`result_from_json` -- the tests assert schema stability so CI
tooling can consume ``sailor-repro lint --json`` without chasing format
drift:

.. code-block:: json

    {"version": 1,
     "clean": false,
     "files_scanned": 123,
     "rules": {"determinism": {"findings": 2, "time_s": 0.01}, ...},
     "findings": [{"rule": "...", "path": "...", "line": 1, "col": 0,
                   "message": "..."}, ...]}
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.core import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.driver import LintResult

JSON_SCHEMA_VERSION = 1


def format_text(result: "LintResult") -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f"{f.location()}: [{f.rule}] {f.message}"
             for f in result.findings]
    timing = ", ".join(f"{name} {seconds * 1000:.0f}ms"
                       for name, seconds in sorted(result.rule_times.items()))
    lines.append(f"lint: {len(result.findings)} finding(s) over "
                 f"{result.files_scanned} file(s) in "
                 f"{result.total_time_s:.2f}s ({timing})")
    return "\n".join(lines)


def format_json(result: "LintResult") -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "clean": not result.findings,
        "files_scanned": result.files_scanned,
        "rules": {
            name: {"findings": sum(1 for f in result.findings
                                   if f.rule == name),
                   "time_s": result.rule_times.get(name, 0.0)}
            for name in sorted(set(result.rule_times)
                               | {f.rule for f in result.findings})
        },
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def result_from_json(text: str) -> tuple[list[Finding], dict]:
    """Parse a reporter payload back into findings (schema round-trip)."""
    payload = json.loads(text)
    if payload.get("version") != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint report version {payload.get('version')!r}")
    return [Finding.from_dict(item) for item in payload["findings"]], payload
