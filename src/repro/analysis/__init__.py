"""Project-invariant static analysis (the invariant linter).

Eight PRs of planner speedups survive only because of hand-maintained
invariants: byte-identical plans under every toggle, admissible lower
bounds, signature-keyed caches, deterministic replay.  This package turns
those tribal rules into machine-checked ones: a self-contained AST
analysis framework (rule registry, per-file visitor pipeline, justified
``# lint: disable=<rule> -- why`` suppressions, text + JSON reporters)
plus the project rules themselves (``repro.analysis.rules``).

Entry points
------------
* ``sailor-repro lint`` / ``python -m repro.analysis`` -- the CLI.
* ``make lint`` -- the same, wired into ``make ci`` ahead of tier-1.
* :func:`repro.analysis.driver.run_lint` -- the library API the tests use.

Exit-code contract: 0 = clean tree, 1 = findings (or malformed
suppressions), 2 = usage or internal error.  The enforced invariants are
documented rule by rule in ``CONTRACTS.md`` at the repo root.
"""

from repro.analysis.core import Finding, ProjectIndex, SourceFile, Suppression
from repro.analysis.driver import LintResult, main, run_lint
from repro.analysis.registry import RULES, Rule, register_rule

__all__ = [
    "Finding",
    "LintResult",
    "ProjectIndex",
    "RULES",
    "Rule",
    "SourceFile",
    "Suppression",
    "main",
    "register_rule",
    "run_lint",
]
