"""Lint driver: file discovery, rule execution, suppression filtering, CLI.

``run_lint`` is the library entry point (the meta-tests call it on both
the live tree and the seeded-violation fixtures); ``main`` backs both
``python -m repro.analysis`` and the ``sailor-repro lint`` subcommand.

Exit-code contract
------------------
* 0 -- no findings (suppressed findings do not count).
* 1 -- at least one finding, including malformed suppressions
  (``bad-suppression``): a waiver without a justification fails the lint
  rather than silently waiving.
* 2 -- usage error (unknown rule, missing path) or a rule crash; a
  crashing rule must never masquerade as a clean run.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding, ProjectIndex, SourceFile
from repro.analysis.registry import all_rules
from repro.analysis.report import format_json, format_text

#: Directories under the repo root whose python files are linted.
DEFAULT_SRC_DIRS = ("src/repro",)
#: Directories consulted as the test-reference corpus (never linted).
DEFAULT_TEST_DIRS = ("tests", "benchmarks")
#: The linter's own package is exempt from linting: its rule sources
#: necessarily *name* the forbidden patterns they search for.
EXEMPT_PARTS = ("analysis",)
#: Seeded-violation fixture trees are excluded from the *corpus* scan:
#: their contents must not satisfy coverage rules for the live tree.  (A
#: fixture linted as its own root keeps its own ``tests/`` corpus.)
CORPUS_EXEMPT_PARTS = ("analysis_fixtures",)


@dataclass
class LintResult:
    findings: list[Finding]
    suppressed: list[Finding]
    rule_times: dict[str, float]
    files_scanned: int
    total_time_s: float = 0.0
    errors: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def _discover(root: Path, dirs: tuple[str, ...],
              exempt: tuple[str, ...]) -> list[Path]:
    paths: list[Path] = []
    for rel in dirs:
        base = root / rel
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            rel_parts = path.relative_to(root).parts
            if any(part in exempt for part in rel_parts):
                continue
            paths.append(path)
    return paths


def build_index(root: Path,
                src_dirs: tuple[str, ...] = DEFAULT_SRC_DIRS,
                test_dirs: tuple[str, ...] = DEFAULT_TEST_DIRS) -> ProjectIndex:
    return ProjectIndex.build(
        root,
        _discover(root, src_dirs, exempt=EXEMPT_PARTS),
        _discover(root, test_dirs, exempt=CORPUS_EXEMPT_PARTS))


def run_lint(root: Path | str,
             rule_names: list[str] | None = None,
             index: ProjectIndex | None = None) -> LintResult:
    """Run the (selected) rules over the tree rooted at ``root``."""
    started = time.perf_counter()
    root = Path(root)
    if index is None:
        index = build_index(root)
    registry = all_rules()
    if rule_names:
        unknown = sorted(set(rule_names) - set(registry))
        if unknown:
            return LintResult(
                findings=[], suppressed=[], rule_times={}, files_scanned=0,
                errors=[f"unknown rule(s): {', '.join(unknown)} "
                        f"(known: {', '.join(sorted(registry))})"])
        registry = {name: registry[name] for name in rule_names}

    by_rel: dict[str, SourceFile] = {f.rel: f for f in index.src_files}
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    errors: list[str] = []
    rule_times: dict[str, float] = {}
    for name in sorted(registry):
        rule_started = time.perf_counter()
        try:
            raw = registry[name]().run(index)
        except Exception as exc:  # a crashing rule must not pass as clean
            errors.append(f"rule {name} crashed: {exc!r}")
            raw = []
        rule_times[name] = time.perf_counter() - rule_started
        for finding in raw:
            source_file = by_rel.get(finding.path)
            if source_file is not None and source_file.is_suppressed(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    # Malformed suppressions are findings regardless of which rules ran.
    for source_file in index.src_files:
        findings.extend(source_file.malformed)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintResult(findings=findings, suppressed=suppressed,
                      rule_times=rule_times,
                      files_scanned=len(index.src_files),
                      total_time_s=time.perf_counter() - started,
                      errors=errors)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sailor-repro lint",
        description="Run the project-invariant static analysis "
                    "(see CONTRACTS.md for the enforced rules)")
    parser.add_argument("--root", default=".",
                        help="repo root to lint (default: cwd)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids to run")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for name, cls in sorted(all_rules().items()):
            print(f"{name}: {cls.description}")
        return 0
    root = Path(args.root)
    if not root.exists():
        print(f"error: no such root: {root}", file=sys.stderr)
        return 2
    rule_names = ([part.strip() for part in args.rules.split(",") if part.strip()]
                  if args.rules else None)
    result = run_lint(root, rule_names=rule_names)
    print(format_json(result) if args.as_json else format_text(result))
    for error in result.errors:
        print(f"error: {error}", file=sys.stderr)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
