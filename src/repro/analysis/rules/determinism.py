"""Rule ``determinism``: no wall-clock, unseeded RNG or set-order reads
in plan-affecting modules.

The planner's headline contract is byte-identical plans: same inputs,
same plan, across every toggle, across warm/cold contexts, across replay.
Anything that injects wall-clock time, unseeded randomness or hash-order
iteration into the search spine can silently break that.  This rule
forbids, in every ``core/`` module except the sanctioned
``core/budget.py`` (the *one* place wall-clock deadlines are supposed to
enter the search):

* wall-clock reads: ``time.time`` / ``perf_counter`` / ``monotonic`` /
  ``*_ns`` variants, ``datetime.now`` / ``utcnow`` / ``today`` -- whether
  module-qualified or imported bare;
* unseeded randomness: any ``random.*`` call, and ``np.random.*`` except
  explicitly seeded constructions (``default_rng`` / ``Generator`` /
  ``SeedSequence`` *with at least one argument*);
* set-order iteration: a ``set`` literal, set comprehension or
  ``set()`` / ``frozenset()`` call used directly as the iterable of a
  ``for`` / comprehension or as the argument of ``list`` / ``tuple`` /
  ``enumerate`` / ``iter`` / ``reversed`` / ``"".join`` -- iteration
  order is hash-order; wrap in ``sorted(...)``.  (Sets flowing through
  variables are not tracked; the convention is to sort at the point of
  construction, which is what the spine does.)

Sanctioned exceptions are written as justified line suppressions, e.g.
the planner's ``search_time_s`` observability stamps and the anytime
deadline plumbing into ``SearchBudget``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ProjectIndex, SourceFile, attribute_chain
from repro.analysis.registry import Rule, register_rule

_CLOCK_MODULES = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}
_CLOCK_BARE = {"perf_counter", "perf_counter_ns", "monotonic",
               "monotonic_ns", "time_ns"}
_SEEDED_NP_RANDOM = {"default_rng", "Generator", "SeedSequence"}
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "reversed",
                          "join"}
_SANCTIONED_BASENAMES = {"budget.py"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"})


@register_rule
class DeterminismRule(Rule):
    name = "determinism"
    description = ("plan-affecting modules must not read wall clocks, "
                   "unseeded RNGs or set iteration order "
                   "(core/budget.py is the sanctioned clock site)")

    def run(self, index: ProjectIndex) -> list[Finding]:
        findings: list[Finding] = []
        for source_file in index.src_files:
            parts = source_file.path.parts
            if "core" not in parts:
                continue
            if source_file.path.name in _SANCTIONED_BASENAMES:
                continue
            findings.extend(self._check_file(source_file))
        return findings

    def _check_file(self, source_file: SourceFile) -> list[Finding]:
        findings: list[Finding] = []
        anchor = 0  # first line of the enclosing statement

        def flag(node: ast.AST, message: str) -> None:
            # Anchor to the statement start too, so one suppression above a
            # multi-line statement covers reads on its continuation lines.
            anchors = (anchor,) if anchor and anchor != node.lineno else ()
            findings.append(Finding(
                rule=self.name, path=source_file.rel, line=node.lineno,
                col=node.col_offset, message=message, anchor_lines=anchors))

        def check_expr(node: ast.AST) -> None:
            if isinstance(node, ast.Call):
                findings_before = len(findings)
                self._check_call(node, flag)
                if len(findings) > findings_before:
                    return
                # Order-sensitive consumption of a raw set.
                name = (node.func.attr if isinstance(node.func, ast.Attribute)
                        else node.func.id if isinstance(node.func, ast.Name)
                        else None)
                if (name in _ORDER_SENSITIVE_CALLS and node.args
                        and _is_set_expr(node.args[0])):
                    flag(node, f"{name}() over a raw set consumes "
                               "hash-iteration order; wrap the set in "
                               "sorted(...)")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        flag(generator.iter,
                             "comprehension over a raw set is "
                             "hash-order-dependent; wrap it in sorted(...)")

        for stmt in ast.walk(source_file.tree):
            if not isinstance(stmt, ast.stmt):
                continue
            anchor = stmt.lineno
            if (isinstance(stmt, (ast.For, ast.AsyncFor))
                    and _is_set_expr(stmt.iter)):
                flag(stmt, "iterating a raw set is hash-order-dependent; "
                           "wrap it in sorted(...)")
            # Walk only this statement's own expressions: nested statements
            # (and except handlers, which hold statements) get their own
            # anchor when the outer ast.walk reaches them.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    continue
                for node in ast.walk(child):
                    check_expr(node)
        return findings

    def _check_call(self, node: ast.Call, flag) -> None:
        chain = attribute_chain(node.func)
        if chain is None:
            if (isinstance(node.func, ast.Name)
                    and node.func.id in _CLOCK_BARE):
                flag(node, f"wall-clock read {node.func.id}() in a "
                           "plan-affecting module; clocks may only enter "
                           "the search through core/budget.py SearchBudget")
            return
        if len(chain) >= 2:
            pair = (chain[-2], chain[-1])
            if pair in _CLOCK_MODULES:
                flag(node, f"wall-clock read {'.'.join(chain)}() in a "
                           "plan-affecting module; clocks may only enter "
                           "the search through core/budget.py SearchBudget")
                return
        if chain[0] == "random":
            flag(node, f"unseeded stdlib randomness {'.'.join(chain)}() "
                       "in a plan-affecting module")
            return
        if "random" in chain[:-1] and chain[0] in {"np", "numpy"}:
            terminal = chain[-1]
            if terminal not in _SEEDED_NP_RANDOM:
                flag(node, f"np.random.{terminal}() draws from global "
                           "(unseeded) state in a plan-affecting module; "
                           "construct a seeded default_rng instead")
            elif not node.args and not node.keywords:
                flag(node, f"np.random.{terminal}() without an explicit "
                           "seed is entropy-seeded; pass a seed")
