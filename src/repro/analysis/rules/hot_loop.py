"""Rule ``hot-loop-alloc``: no fresh full-size temporaries in ``@hot_path``
functions.

PR 8's backward-wall work established the discipline: in the functions
that dominate planner wall time, full-size ``np.where`` select passes,
``.astype`` conversions and ``.copy()`` materialisations are replaced by
in-place fused kernels (``out=`` accumulation, boolean-gate reuse).  The
:func:`repro.core.hotpath.hot_path` marker (zero runtime cost) anchors
that discipline; inside any function it decorates, this rule flags

* three-argument ``np.where(cond, a, b)`` -- a fresh full-size select
  (single-argument ``np.where(cond)`` is an index find and passes);
* ``.astype(...)`` method calls -- a fresh converted copy;
* ``.copy()`` method calls and ``np.copy(...)`` -- a fresh materialised
  copy.

Row-sized gathers (per-layer outputs, not per-``(rows, combos)``
temporaries) are legitimate and carry justified suppressions -- either on
the line, or on the ``def`` for functions whose *entire* output contract
is row-sized (findings are anchored to the ``def`` line too, so one
justified comment covers the function).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ProjectIndex, attribute_chain
from repro.analysis.registry import Rule, register_rule

HOT_PATH_DECORATOR = "hot_path"


def _is_hot(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        chain = attribute_chain(decorator)
        if chain and chain[-1] == HOT_PATH_DECORATOR:
            return True
    return False


@register_rule
class HotLoopAllocRule(Rule):
    name = "hot-loop-alloc"
    description = ("@hot_path functions must not allocate fresh full-size "
                   "temporaries (3-arg np.where / .astype / .copy); fuse "
                   "in place or justify the allocation")

    def run(self, index: ProjectIndex) -> list[Finding]:
        findings: list[Finding] = []
        for source_file in index.src_files:
            for qualname, node in source_file.functions():
                if not _is_hot(node):
                    continue
                anchors = (node.lineno,
                           *(d.lineno for d in node.decorator_list))
                for sub in ast.walk(node):
                    if not isinstance(sub, ast.Call):
                        continue
                    message = self._alloc_message(sub, qualname)
                    if message:
                        findings.append(Finding(
                            rule=self.name, path=source_file.rel,
                            line=sub.lineno, col=sub.col_offset,
                            message=message, anchor_lines=anchors))
        return findings

    @staticmethod
    def _alloc_message(node: ast.Call, qualname: str) -> str | None:
        chain = attribute_chain(node.func)
        terminal = chain[-1] if chain else None
        if terminal == "where" and len(node.args) == 3:
            return (f"3-arg np.where in @hot_path {qualname} allocates a "
                    "fresh full-size select; fuse in place (out=, boolean "
                    "gates) or justify with a suppression")
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "astype":
                return (f".astype in @hot_path {qualname} allocates a "
                        "fresh converted copy; hoist the conversion out of "
                        "the hot loop or justify with a suppression")
            if node.func.attr == "copy" and not node.args:
                return (f".copy() in @hot_path {qualname} materialises a "
                        "fresh array; reuse a buffer or justify with a "
                        "suppression")
        if chain == ["np", "copy"] or chain == ["numpy", "copy"]:
            return (f"np.copy in @hot_path {qualname} materialises a fresh "
                    "array; reuse a buffer or justify with a suppression")
        return None
