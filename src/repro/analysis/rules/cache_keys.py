"""Rule ``cache-key``: every result-affecting config field is folded into
a cache key (or declared value-preserving, or suppressed with a reason).

The failure mode this guards against is the silent cache fork: a new
``DPSolverConfig`` / ``PlannerConfig`` field changes what a solve
produces, but the signature-keyed caches (``forward_signature``, the
search context's ``key = (...)`` tuples, the budget-bound signatures)
never learned about it -- so a shared or long-lived context serves
results computed under a *different* configuration.  PRs 1-8 avoided
this by hand; this rule machine-checks it.

The contract, per config field:

1. **Keyed** -- the field's value reaches a recognised cache-key
   expression.  Recognised key expressions are (a) tuples assigned to a
   name in ``{"key", "signature", "sig", "cache_key"}``, (b) the argument
   list of a ``forward_signature(...)`` call, and (c) the first argument
   of ``context.forward_layers(...)`` / ``context.budget_bounds(...)``.
   Reaching is resolved through one level of local aliasing
   (``limit = self.config.max_combos_per_stage`` then ``limit`` in the
   key) and through function parameters (``max_mixed`` in
   ``stage_master_combos``'s key, bound to
   ``self.config.max_mixed_types_per_stage`` at its call site).
2. **Declared value-preserving** -- the field's ``#:`` doc comment
   contains one of the :data:`~repro.analysis.core.VALUE_PRESERVING_MARKERS`
   phrases ("bit-identical", "off only for equivalence testing", ...),
   i.e. the field is a pure latency/dispatch knob backed by the
   equivalence suites, so no cached artifact can depend on it.
3. **Suppressed** -- ``# lint: disable=cache-key -- <why>`` on the field,
   for fields that affect results but provably never flow into a cached
   artifact (e.g. per-candidate search-policy knobs).

Fields read nowhere in the solver stack are flagged as dead.  The scanned
modules are recognised by basename (``dp_solver.py``,
``resource_state.py``, ``search_cache.py``, ``planner.py``), which is
also what lets the fixture suites feed the rule miniature replicas.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import (
    ConfigField,
    Finding,
    ProjectIndex,
    SourceFile,
    attribute_chain,
    call_name,
    extract_config_fields,
)
from repro.analysis.registry import Rule, register_rule

CONFIG_CLASSES = ("DPSolverConfig", "PlannerConfig")
CONFIG_FILES = ("dp_solver.py", "planner.py")
KEY_SITE_FILES = ("dp_solver.py", "resource_state.py", "search_cache.py",
                  "planner.py")
KEY_NAMES = {"key", "signature", "sig", "cache_key"}
KEY_BUILDER_CALLS = {"forward_signature"}
KEY_CACHE_METHODS = {"forward_layers", "budget_bounds"}
#: Attribute spellings under which a config object is read.
CONFIG_ATTRS = {"config", "dp_config", "_config"}


def _config_field_of(node: ast.AST) -> str | None:
    """``self.config.X`` / ``config.X`` / ``self.config.dp_config.X`` -> X."""
    chain = attribute_chain(node)
    if chain is None or len(chain) < 2:
        return None
    if chain[-2] in CONFIG_ATTRS:
        return chain[-1]
    return None


@dataclass
class _FunctionScan:
    """Key-relevant facts about one function."""

    qualname: str
    params: list[str]
    #: local name -> config field (single-step aliases).
    aliases: dict[str, str] = field(default_factory=dict)
    #: parameter names appearing inside this function's key expressions.
    key_params: set[str] = field(default_factory=set)
    #: config fields keyed directly inside this function.
    keyed_fields: set[str] = field(default_factory=set)


@register_rule
class CacheKeyRule(Rule):
    name = "cache-key"
    description = ("every DPSolverConfig/PlannerConfig field must be folded "
                   "into a cache key, declared value-preserving, or carry a "
                   "justified suppression (unkeyed result-affecting fields "
                   "silently fork cached results)")

    def run(self, index: ProjectIndex) -> list[Finding]:
        config_fields: list[ConfigField] = []
        for source_file in index.by_basename(*CONFIG_FILES):
            config_fields.extend(
                extract_config_fields(source_file, CONFIG_CLASSES))
        if not config_fields:
            return []
        field_names = {f.name for f in config_fields}

        scans: dict[str, list[_FunctionScan]] = {}
        read_fields: set[str] = set()
        keyed_fields: set[str] = set()
        key_files = index.by_basename(*KEY_SITE_FILES)
        for source_file in key_files:
            for qualname, node in source_file.functions():
                scan = self._scan_function(qualname, node, field_names)
                scans.setdefault(node.name, []).append(scan)
                keyed_fields |= scan.keyed_fields
            for node in ast.walk(source_file.tree):
                fname = _config_field_of(node)
                if fname in field_names:
                    read_fields.add(fname)

        # Second pass: call sites binding config fields to key parameters.
        for source_file in key_files:
            keyed_fields |= self._call_site_fields(source_file, scans,
                                                   field_names)

        findings: list[Finding] = []
        for config_field in config_fields:
            if config_field.name in keyed_fields:
                continue
            if config_field.declared_value_preserving:
                continue
            label = f"{config_field.cls_name}.{config_field.name}"
            if config_field.name not in read_fields:
                message = (f"dead config field {label}: never read in the "
                           "solver stack (remove it, or wire it up)")
            else:
                message = (
                    f"config field {label} is read by the solver stack but "
                    "folded into no cache key and not declared "
                    "value-preserving; fold it into the relevant "
                    "signature/key, add a '#:' doc comment with an "
                    "equivalence-suite-backed marker (e.g. 'bit-identical', "
                    "'off only for equivalence testing'), or suppress with "
                    "a justification")
            findings.append(Finding(
                rule=self.name, path=config_field.file,
                line=config_field.line, col=0, message=message))
        return findings

    # -- pass 1: per-function key expressions ----------------------------------

    def _scan_function(self, qualname: str, node: ast.FunctionDef,
                       field_names: set[str]) -> _FunctionScan:
        params = [arg.arg for arg in (node.args.posonlyargs + node.args.args
                                      + node.args.kwonlyargs)]
        scan = _FunctionScan(qualname=qualname, params=params)
        # Single-step aliases: x = self.config.F (only direct, unconditional
        # assignments in this function's own body).
        for stmt in ast.walk(node):
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                fname = _config_field_of(stmt.value)
                if fname in field_names:
                    scan.aliases[stmt.targets[0].id] = fname

        key_exprs: list[ast.AST] = []
        for stmt in ast.walk(node):
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id in KEY_NAMES):
                key_exprs.append(stmt.value)
            elif isinstance(stmt, ast.Call):
                name = call_name(stmt)
                if name in KEY_BUILDER_CALLS:
                    key_exprs.extend(stmt.args)
                    key_exprs.extend(kw.value for kw in stmt.keywords)
                elif name in KEY_CACHE_METHODS and stmt.args:
                    key_exprs.append(stmt.args[0])

        for expr in key_exprs:
            for sub in ast.walk(expr):
                fname = _config_field_of(sub)
                if fname in field_names:
                    scan.keyed_fields.add(fname)
                elif isinstance(sub, ast.Name):
                    if sub.id in scan.aliases:
                        scan.keyed_fields.add(scan.aliases[sub.id])
                    elif sub.id in params:
                        scan.key_params.add(sub.id)
        return scan

    # -- pass 2: call sites feeding key parameters ------------------------------

    def _call_site_fields(self, source_file: SourceFile,
                          scans: dict[str, list[_FunctionScan]],
                          field_names: set[str]) -> set[str]:
        keyed: set[str] = set()
        # Alias maps per enclosing function, so call-site args spelled via a
        # local alias still resolve.
        alias_by_func: dict[ast.AST, dict[str, str]] = {}
        for _, func in source_file.functions():
            aliases: dict[str, str] = {}
            for stmt in ast.walk(func):
                if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    fname = _config_field_of(stmt.value)
                    if fname in field_names:
                        aliases[stmt.targets[0].id] = fname
            alias_by_func[func] = aliases

        def resolve(arg: ast.AST, aliases: dict[str, str]) -> str | None:
            fname = _config_field_of(arg)
            if fname in field_names:
                return fname
            if isinstance(arg, ast.Name):
                return aliases.get(arg.id)
            return None

        for func, aliases in alias_by_func.items():
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                for scan in scans.get(name or "", []):
                    if not scan.key_params:
                        continue
                    params = scan.params
                    # Methods called as attributes drop the leading self.
                    offset = 1 if (params and params[0] in {"self", "cls"}
                                   and isinstance(node.func, ast.Attribute)
                                   ) else 0
                    for position, arg in enumerate(node.args):
                        slot = position + offset
                        if slot < len(params) and params[slot] in scan.key_params:
                            fname = resolve(arg, aliases)
                            if fname:
                                keyed.add(fname)
                    for keyword in node.keywords:
                        if keyword.arg in scan.key_params:
                            fname = resolve(keyword.value, aliases)
                            if fname:
                                keyed.add(fname)
        return keyed
