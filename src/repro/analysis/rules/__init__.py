"""Project-invariant rules.  Importing this package registers them all."""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    admissibility,
    cache_keys,
    determinism,
    exceptions,
    hot_loop,
    toggles,
)
