"""Rule ``admissibility``: every claimed bound has a test that knows it.

The pruning/certificate machinery is only sound while its lower bounds
stay admissible -- a bound that creeps above the true optimum silently
*changes plans* (candidates are killed that should have won).  The
project's defence is property tests comparing each bound against
exhaustive evaluation; this rule makes that defence structural: any
function in ``core/`` whose **name** claims a bound (ends in ``_lb``, or
contains ``floor``) or whose **docstring** claims admissibility (contains
"admissible") must be referenced by name somewhere in the test corpus, or
carry a justified suppression on its ``def`` line.

A name reference is an AST-level occurrence in ``tests/`` /
``benchmarks/`` (identifier, attribute, keyword or string) -- renaming the
function without moving its property test breaks the lint, which is the
point.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ProjectIndex
from repro.analysis.registry import Rule, register_rule

#: Dunder/property plumbing that merely *stores* bounds doesn't claim one.
_EXEMPT_NAMES = {"__post_init__", "__init__"}


def _claims_bound(name: str, node: ast.FunctionDef) -> str | None:
    """Why this function claims a bound, or None."""
    terminal = name.rsplit(".", 1)[-1]
    if terminal in _EXEMPT_NAMES:
        return None
    if terminal.endswith("_lb"):
        return "its name ends in _lb"
    if "floor" in terminal:
        return "its name claims a floor"
    docstring = ast.get_docstring(node) or ""
    if "admissible" in docstring.lower():
        return "its docstring claims admissibility"
    return None


@register_rule
class AdmissibilityRule(Rule):
    name = "admissibility"
    description = ("functions claiming a bound (*_lb / *floor* names, "
                   "'admissible' docstrings) must be referenced by a test "
                   "(admissibility property suites)")

    def run(self, index: ProjectIndex) -> list[Finding]:
        corpus = index.test_corpus()
        findings: list[Finding] = []
        for source_file in index.src_files:
            if "core" not in source_file.path.parts:
                continue
            for qualname, node in source_file.functions():
                reason = _claims_bound(qualname, node)
                if reason is None:
                    continue
                terminal = qualname.rsplit(".", 1)[-1]
                if terminal in corpus:
                    continue
                findings.append(Finding(
                    rule=self.name, path=source_file.rel, line=node.lineno,
                    col=node.col_offset,
                    message=(f"{qualname} claims a bound ({reason}) but no "
                             "test references it by name; add a property "
                             "test checking the bound against exhaustive "
                             "evaluation (or suppress with a "
                             "justification)")))
        return findings
