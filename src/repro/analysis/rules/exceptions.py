"""Rule ``swallowed-exceptions``: the drivers may not eat what they must
surface.

Two modules own the planner's failure semantics: the parallel driver
(``core/planner.py`` -- crashed/wedged workers are *salvaged*, genuine
worker exceptions propagate) and the replanning controller
(``runtime/controller.py`` -- every degradation is a recorded decision,
never a silent ``pass``).  ``SearchBudgetExhausted`` is additionally
load-bearing: it carries the anytime truncation signal, so a handler that
swallows it without bookkeeping silently converts "deadline hit" into
"search finished".  In those modules this rule flags:

* bare ``except:`` clauses (they also swallow ``KeyboardInterrupt``);
* ``except Exception`` / ``except BaseException`` /
  ``except SearchBudgetExhausted`` handlers whose body is *only*
  ``pass`` / ``continue`` / ``...`` -- a silent swallow.  Handlers that
  do bookkeeping (count the interrupt, record the salvage, re-raise)
  pass; genuinely-benign swallows carry a justified suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, ProjectIndex, attribute_chain
from repro.analysis.registry import Rule, register_rule

TARGET_BASENAMES = ("planner.py", "controller.py")
_BROAD_TYPES = {"Exception", "BaseException", "SearchBudgetExhausted"}


def _handler_types(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str] = []
    for elt in elts:
        chain = attribute_chain(elt)
        if chain:
            names.append(chain[-1])
    return names


def _is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue  # docstring / ellipsis
        return False
    return True


@register_rule
class SwallowedExceptionsRule(Rule):
    name = "swallowed-exceptions"
    description = ("no bare except, and no silently-swallowed broad or "
                   "SearchBudgetExhausted handlers, in the parallel driver "
                   "and the replanning controller")

    def run(self, index: ProjectIndex) -> list[Finding]:
        findings: list[Finding] = []
        for source_file in index.by_basename(*TARGET_BASENAMES):
            for node in ast.walk(source_file.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    findings.append(Finding(
                        rule=self.name, path=source_file.rel,
                        line=node.lineno, col=node.col_offset,
                        message="bare 'except:' swallows everything "
                                "including KeyboardInterrupt; name the "
                                "exception types"))
                    continue
                caught = set(_handler_types(node)) & _BROAD_TYPES
                if caught and _is_silent(node.body):
                    names = ", ".join(sorted(caught))
                    findings.append(Finding(
                        rule=self.name, path=source_file.rel,
                        line=node.lineno, col=node.col_offset,
                        message=(f"handler for {names} silently swallows "
                                 "the exception (body is only "
                                 "pass/continue); record the event, "
                                 "re-raise, or justify with a "
                                 "suppression")))
        return findings
