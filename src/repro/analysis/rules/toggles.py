"""Rule ``toggle-coverage``: every boolean config toggle is exercised by
the equivalence-matrix tests.

The toggle matrix (13 scenarios x every boolean knob, plans byte-identical
on/off) is what lets "off only for equivalence testing" fields exist at
all.  A toggle the tests never mention is a toggle whose off-path can rot
unnoticed -- so every ``bool`` field of ``DPSolverConfig`` /
``PlannerConfig`` must appear somewhere in ``tests/`` (as a keyword
argument, attribute, identifier or string -- comments do not count), or
carry a justified suppression on its definition line.
"""

from __future__ import annotations

from repro.analysis.core import Finding, ProjectIndex, extract_config_fields
from repro.analysis.registry import Rule, register_rule
from repro.analysis.rules.cache_keys import CONFIG_CLASSES, CONFIG_FILES


@register_rule
class ToggleCoverageRule(Rule):
    name = "toggle-coverage"
    description = ("every boolean config field must appear in the tests/ "
                   "equivalence-matrix definitions (or carry a justified "
                   "suppression)")

    def run(self, index: ProjectIndex) -> list[Finding]:
        corpus = index.test_corpus()
        findings: list[Finding] = []
        for source_file in index.by_basename(*CONFIG_FILES):
            for config_field in extract_config_fields(source_file,
                                                      CONFIG_CLASSES):
                if not config_field.is_bool:
                    continue
                if config_field.name in corpus:
                    continue
                findings.append(Finding(
                    rule=self.name, path=config_field.file,
                    line=config_field.line, col=0,
                    message=(f"boolean toggle {config_field.cls_name}."
                             f"{config_field.name} appears nowhere in the "
                             "test suite: add it to the equivalence-matrix "
                             "definitions (plans must be byte-identical "
                             "on/off) or suppress with a justification")))
        return findings
