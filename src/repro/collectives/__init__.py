"""Analytic timing models for collective communication.

Every function takes the message size, the number of participants and a
``transfer_time(message_bytes) -> seconds`` callable describing one
point-to-point transfer over the link the collective runs on (a
:class:`~repro.hardware.network.LinkSpec` bound method or a fitted
:class:`~repro.profiler.profiles.NetworkProfile`), so the same models work
for NVLink, intra-zone Ethernet and wide-area links.
"""

from repro.collectives.models import (
    TransferTimeFn,
    ring_allreduce_time,
    ring_allgather_time,
    ring_reduce_scatter_time,
    broadcast_time,
    p2p_time,
    hierarchical_allreduce_time,
)

__all__ = [
    "TransferTimeFn",
    "ring_allreduce_time",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
    "broadcast_time",
    "p2p_time",
    "hierarchical_allreduce_time",
]
