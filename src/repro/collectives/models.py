"""Ring-based collective timing models (NCCL-style)."""

from __future__ import annotations

from typing import Callable


#: Signature of a point-to-point transfer time function.
TransferTimeFn = Callable[[float], float]


def _validate(message_bytes: float, participants: int) -> None:
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if participants < 1:
        raise ValueError("participants must be >= 1")


def p2p_time(message_bytes: float, transfer_time: TransferTimeFn) -> float:
    """Time for a single point-to-point transfer."""
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if message_bytes == 0:
        return 0.0
    return transfer_time(message_bytes)


def ring_allreduce_time(message_bytes: float, participants: int,
                        transfer_time: TransferTimeFn) -> float:
    """Ring all-reduce: reduce-scatter followed by all-gather.

    Each of the ``2 * (n - 1)`` steps moves a ``1/n`` chunk of the buffer, so
    the total bytes on the wire per rank are ``2 * (n-1)/n * message_bytes``.
    """
    _validate(message_bytes, participants)
    if participants == 1 or message_bytes == 0:
        return 0.0
    chunk = message_bytes / participants
    steps = 2 * (participants - 1)
    return steps * transfer_time(chunk)


def ring_reduce_scatter_time(message_bytes: float, participants: int,
                             transfer_time: TransferTimeFn) -> float:
    """Ring reduce-scatter: ``n - 1`` steps of ``1/n`` chunks."""
    _validate(message_bytes, participants)
    if participants == 1 or message_bytes == 0:
        return 0.0
    chunk = message_bytes / participants
    return (participants - 1) * transfer_time(chunk)


def ring_allgather_time(message_bytes: float, participants: int,
                        transfer_time: TransferTimeFn) -> float:
    """Ring all-gather: ``n - 1`` steps of ``1/n`` chunks."""
    _validate(message_bytes, participants)
    if participants == 1 or message_bytes == 0:
        return 0.0
    chunk = message_bytes / participants
    return (participants - 1) * transfer_time(chunk)


def broadcast_time(message_bytes: float, participants: int,
                   transfer_time: TransferTimeFn) -> float:
    """Pipelined binomial-tree broadcast (log2(n) transfers of full size)."""
    _validate(message_bytes, participants)
    if participants == 1 or message_bytes == 0:
        return 0.0
    hops = max(1, (participants - 1).bit_length())
    return hops * transfer_time(message_bytes)


def hierarchical_allreduce_time(message_bytes: float,
                                groups: list[int],
                                intra_transfer_time: TransferTimeFn,
                                inter_transfer_time: TransferTimeFn) -> float:
    """Two-level all-reduce: reduce within groups, all-reduce across leaders.

    ``groups`` lists the number of ranks inside each group (e.g. GPUs per
    node for every participating node).  The slowest intra-group
    reduce-scatter/all-gather bounds the local phases, and the leaders run a
    ring all-reduce over the inter-group link.  This is how data-parallel
    gradient synchronisation behaves when replicas span multiple nodes or
    zones.
    """
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if not groups or any(g < 1 for g in groups):
        raise ValueError("groups must be a non-empty list of positive sizes")
    if message_bytes == 0:
        return 0.0
    if len(groups) == 1:
        return ring_allreduce_time(message_bytes, groups[0], intra_transfer_time)

    local_rs = max(ring_reduce_scatter_time(message_bytes, g, intra_transfer_time)
                   for g in groups)
    leaders = ring_allreduce_time(message_bytes, len(groups), inter_transfer_time)
    local_ag = max(ring_allgather_time(message_bytes, g, intra_transfer_time)
                   for g in groups)
    return local_rs + leaders + local_ag
