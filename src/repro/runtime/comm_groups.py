"""Communication-group construction for heterogeneous plans.

Megatron-DeepSpeed assumes uniform parallelism degrees, so its rank topology
is a regular (DP, PP, TP) grid.  Sailor's framework instead takes a rank
topology *per stage*, allowing each data-parallel replica of a stage to have
its own tensor-parallel group size (paper section 4.4).  This module builds
that topology from a :class:`~repro.core.plan.ParallelizationPlan`:

* every GPU of every replica becomes a *rank*;
* tensor-parallel groups are the GPUs of one replica;
* pipeline groups connect the d-th replica of consecutive stages;
* data-parallel groups connect, for each stage, the matching tensor-parallel
  shards of all replicas (when TP degrees differ across replicas, the
  smaller group's shards are replicated to the larger one, mirroring the
  activation/gradient split-or-replicate behaviour described in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import ParallelizationPlan


@dataclass(frozen=True)
class RankAssignment:
    """Where one rank (one GPU) sits in the parallel topology."""

    rank: int
    stage_index: int
    replica_index: int
    shard_index: int
    node_type: str
    gpu_type: str
    zone: str
    tensor_parallel: int


@dataclass
class CommunicationGroups:
    """All process groups derived from a plan."""

    ranks: list[RankAssignment] = field(default_factory=list)
    tensor_groups: list[list[int]] = field(default_factory=list)
    pipeline_groups: list[list[int]] = field(default_factory=list)
    data_parallel_groups: list[list[int]] = field(default_factory=list)

    @property
    def world_size(self) -> int:
        """Total number of ranks (GPUs)."""
        return len(self.ranks)

    def groups_of_rank(self, rank: int) -> dict[str, list[list[int]]]:
        """All groups a rank participates in, keyed by group kind."""
        if not 0 <= rank < self.world_size:
            raise IndexError("rank out of range")
        return {
            "tensor": [g for g in self.tensor_groups if rank in g],
            "pipeline": [g for g in self.pipeline_groups if rank in g],
            "data_parallel": [g for g in self.data_parallel_groups if rank in g],
        }

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation.

        * every rank belongs to exactly one tensor group,
        * every rank belongs to exactly one pipeline group,
        * tensor groups are disjoint and cover all ranks.
        """
        seen: set[int] = set()
        for group in self.tensor_groups:
            for rank in group:
                if rank in seen:
                    raise ValueError(f"rank {rank} appears in two tensor groups")
                seen.add(rank)
        if seen != set(range(self.world_size)):
            raise ValueError("tensor groups do not cover all ranks exactly once")
        pipeline_membership: dict[int, int] = {}
        for group in self.pipeline_groups:
            for rank in group:
                pipeline_membership[rank] = pipeline_membership.get(rank, 0) + 1
        for rank in range(self.world_size):
            if pipeline_membership.get(rank, 0) != 1:
                raise ValueError(f"rank {rank} must be in exactly one pipeline group")


def build_rank_topology(plan: ParallelizationPlan) -> CommunicationGroups:
    """Construct the communication groups for a (possibly heterogeneous) plan."""
    groups = CommunicationGroups()

    # rank_of[(stage, replica, shard)] -> global rank
    rank_of: dict[tuple[int, int, int], int] = {}
    next_rank = 0
    for stage in plan.stages:
        for replica_index, replica in enumerate(stage.replicas):
            for shard in range(replica.tensor_parallel):
                assignment = RankAssignment(
                    rank=next_rank,
                    stage_index=stage.stage_index,
                    replica_index=replica_index,
                    shard_index=shard,
                    node_type=replica.node_type,
                    gpu_type=replica.gpu_type,
                    zone=replica.zone,
                    tensor_parallel=replica.tensor_parallel,
                )
                groups.ranks.append(assignment)
                rank_of[(stage.stage_index, replica_index, shard)] = next_rank
                next_rank += 1

    # Tensor groups: the shards of one replica.
    for stage in plan.stages:
        for replica_index, replica in enumerate(stage.replicas):
            groups.tensor_groups.append([
                rank_of[(stage.stage_index, replica_index, shard)]
                for shard in range(replica.tensor_parallel)])

    # Pipeline groups: all shards of the d-th replica of every stage
    # (activations are split or replicated across the receiving tensor group
    # when TP degrees differ between adjacent stages).
    for d in range(plan.data_parallel):
        members = []
        for stage in plan.stages:
            replica = stage.replicas[d]
            for shard in range(replica.tensor_parallel):
                members.append(rank_of[(stage.stage_index, d, shard)])
        groups.pipeline_groups.append(members)

    # Data-parallel groups: per stage, shard s of every replica.  Replicas
    # with a smaller TP degree contribute their shard (s mod tp), which is
    # how gradients are replicated across unequal tensor groups.
    for stage in plan.stages:
        max_tp = max(r.tensor_parallel for r in stage.replicas)
        for shard in range(max_tp):
            members = []
            for replica_index, replica in enumerate(stage.replicas):
                local_shard = shard % replica.tensor_parallel
                members.append(rank_of[(stage.stage_index, replica_index, local_shard)])
            groups.data_parallel_groups.append(members)

    return groups
