"""End-to-end elastic training sessions.

An :class:`ElasticTrainingSession` plays an availability trace against the
controller: it deploys the job when resources appear, trains at the rate the
simulator predicts for the current plan, takes asynchronous checkpoints,
reconfigures when availability changes (paying the section-5.5 latency), and
rolls back to the latest durable checkpoint when capacity is preempted.  The
resulting :class:`SessionReport` is what the elasticity experiments and the
fault-tolerance tests inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objectives import Objective
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.availability import AvailabilityTrace
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec
from repro.runtime.checkpoint import CheckpointConfig, CheckpointManager
from repro.runtime.controller import DegradationTier, TrainingController
from repro.runtime.engine import SimulationEngine


@dataclass
class TrainingSegment:
    """A stretch of time during which one plan trained uninterrupted."""

    start_s: float
    end_s: float
    gpus: int
    iteration_time_s: float
    iterations_completed: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class SessionReport:
    """Outcome of one elastic training session."""

    duration_s: float
    iterations_completed: int
    iterations_lost_to_rollback: int
    segments: list[TrainingSegment] = field(default_factory=list)
    reconfigurations: int = 0
    reconfiguration_time_s: float = 0.0
    idle_time_s: float = 0.0
    checkpoint_stall_s: float = 0.0

    @property
    def training_time_s(self) -> float:
        """Time spent making forward progress."""
        return sum(segment.duration_s for segment in self.segments)

    @property
    def goodput_iters_per_s(self) -> float:
        """Useful iterations per wall-clock second over the whole session."""
        if self.duration_s <= 0:
            return 0.0
        return self.iterations_completed / self.duration_s

    @property
    def availability_efficiency(self) -> float:
        """Fraction of the session spent training (vs. idle/reconfiguring)."""
        if self.duration_s <= 0:
            return 0.0
        return self.training_time_s / self.duration_s


class ElasticTrainingSession:
    """Plays an availability trace against the controller."""

    def __init__(self, env: SimulationEnvironment, job: TrainingJobSpec,
                 objective: Objective | None = None,
                 controller: TrainingController | None = None,
                 checkpoint_config: CheckpointConfig | None = None) -> None:
        self.env = env
        self.job = job
        self.objective = objective or Objective.max_throughput()
        self.controller = controller or TrainingController(
            env=env, job=job, objective=self.objective)
        self.checkpoints = CheckpointManager(
            job=job, config=checkpoint_config or CheckpointConfig())
        self.simulator = SailorSimulator(env)
        self.engine = SimulationEngine()

    # -- main entry point ---------------------------------------------------------

    def run(self, trace: AvailabilityTrace,
            base_topology: ClusterTopology | None = None,
            duration_s: float | None = None,
            max_iterations: int | None = None) -> SessionReport:
        """Simulate training over the availability trace."""
        duration = duration_s if duration_s is not None else trace.duration_s
        change_times = [t for t in trace.change_times() if t < duration]
        boundaries = sorted(set([0.0] + change_times + [duration]))

        report = SessionReport(duration_s=duration, iterations_completed=0,
                               iterations_lost_to_rollback=0)
        completed = 0

        previous_pools: dict[tuple[str, str], int] | None = None
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            if max_iterations is not None and completed >= max_iterations:
                break
            topology = trace.topology_at(start, base=base_topology)
            # Compare per-pool counts, not the GPU total: simultaneous
            # multi-pool events can cancel out in the total (zone A loses
            # what zone B gains) while still breaking the current plan.
            pools = self._pool_snapshot(topology)

            reconfig_s = 0.0
            if pools != previous_pools or self.controller.current_plan is None:
                plan_broken = (self.controller.current_plan is not None
                               and not self.controller._plan_still_fits(topology))
                event = (self.controller.start(topology, start)
                         if self.controller.current_plan is None
                         else self.controller.handle_availability_change(topology, start))
                if plan_broken and (event is None
                                    or event.tier is not DegradationTier.SHRINK_DP):
                    # Capacity was lost out from under the incumbent plan:
                    # restart from the latest durable checkpoint.  Voluntary
                    # kill-free switches (the incumbent still fit) and
                    # shrink-in-place (surviving data-parallel replicas hold
                    # complete state) lose nothing.
                    lost = self.checkpoints.rollback_iterations(completed, start)
                    report.iterations_lost_to_rollback += lost
                    completed = max(0, completed - lost)
                if event is not None:
                    report.reconfigurations += 1
                    reconfig_s = event.total_s
                    report.reconfiguration_time_s += reconfig_s
            previous_pools = pools

            plan = self.controller.current_plan
            window = end - start - reconfig_s
            if plan is None or window <= 0:
                report.idle_time_s += max(0.0, end - start)
                continue

            evaluation = self.simulator.evaluate(plan)
            iter_time = evaluation.iteration_time_s
            stall = self.checkpoints.stall_time_s(plan)
            drain = self.checkpoints.drain_time_s(plan)
            interval = self.checkpoints.config.interval_iterations

            # Effective time per iteration includes the amortised stall.
            effective_iter = iter_time + stall / interval
            iterations = int(window // effective_iter) if effective_iter > 0 else 0
            if max_iterations is not None:
                iterations = min(iterations, max_iterations - completed)

            # Record checkpoints taken during this segment.
            segment_start_iter = completed
            for i in range(1, iterations + 1):
                iteration = segment_start_iter + i
                if self.checkpoints.should_checkpoint(iteration):
                    t_taken = start + reconfig_s + i * effective_iter
                    self.checkpoints.record(iteration, t_taken, t_taken + drain)
                    report.checkpoint_stall_s += stall

            completed += iterations
            report.segments.append(TrainingSegment(
                start_s=start + reconfig_s, end_s=end, gpus=plan.total_gpus,
                iteration_time_s=iter_time, iterations_completed=iterations))

        report.iterations_completed = completed
        return report

    @staticmethod
    def _pool_snapshot(topology: ClusterTopology) -> dict[tuple[str, str], int]:
        """Per-(zone, node type) node counts of a topology."""
        return {(zone, node_type): count
                for zone, per_type in topology.nodes.items()
                for node_type, count in per_type.items() if count > 0}
