"""Training-worker state machine.

Each worker corresponds to one GPU (one rank of the communication topology).
Workers do not execute real kernels -- iteration durations come from the
simulator -- but they track the lifecycle the paper's framework implements:
initialisation, training, kill-free cleanup during reconfiguration, and
stopping, with timestamps for each transition so tests and experiments can
inspect the timeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.runtime.comm_groups import RankAssignment


class WorkerState(enum.Enum):
    """Lifecycle states of a training worker."""

    IDLE = "idle"
    INITIALIZING = "initializing"
    TRAINING = "training"
    CLEANING_UP = "cleaning_up"
    REPARTITIONING = "repartitioning"
    STOPPED = "stopped"


#: Legal state transitions.
_ALLOWED_TRANSITIONS: dict[WorkerState, tuple[WorkerState, ...]] = {
    WorkerState.IDLE: (WorkerState.INITIALIZING, WorkerState.STOPPED),
    WorkerState.INITIALIZING: (WorkerState.TRAINING, WorkerState.STOPPED),
    WorkerState.TRAINING: (WorkerState.CLEANING_UP, WorkerState.STOPPED),
    WorkerState.CLEANING_UP: (WorkerState.REPARTITIONING, WorkerState.STOPPED),
    WorkerState.REPARTITIONING: (WorkerState.INITIALIZING, WorkerState.STOPPED),
    WorkerState.STOPPED: (),
}


@dataclass
class TrainingWorker:
    """One rank of the training job."""

    assignment: RankAssignment
    state: WorkerState = WorkerState.IDLE
    completed_iterations: int = 0
    history: list[tuple[float, WorkerState]] = field(default_factory=list)

    @property
    def rank(self) -> int:
        """Global rank of this worker."""
        return self.assignment.rank

    def transition(self, new_state: WorkerState, time_s: float) -> None:
        """Move to ``new_state``; raises ``ValueError`` on illegal transitions."""
        if new_state is self.state:
            return
        allowed = _ALLOWED_TRANSITIONS[self.state]
        if new_state not in allowed:
            raise ValueError(
                f"illegal worker transition {self.state.value} -> {new_state.value}")
        self.state = new_state
        self.history.append((time_s, new_state))

    def record_iterations(self, count: int) -> None:
        """Account for finished iterations (only while training)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.state is not WorkerState.TRAINING and count > 0:
            raise ValueError("worker is not training")
        self.completed_iterations += count

    @property
    def is_active(self) -> bool:
        """True when the worker holds GPU state (not idle/stopped)."""
        return self.state not in (WorkerState.IDLE, WorkerState.STOPPED)
