"""Sailor distributed training framework (simulated).

The paper's training framework is a modified Megatron-DeepSpeed with support
for heterogeneous plans, fault tolerance and elasticity (section 4.4).  This
package reproduces its *systems* behaviour as a discrete-event simulation:

* :mod:`repro.runtime.engine` -- a small discrete-event simulation engine.
* :mod:`repro.runtime.comm_groups` -- building the data/pipeline/tensor
  communication groups (rank topology) for heterogeneous plans.
* :mod:`repro.runtime.worker` -- per-worker state machine.
* :mod:`repro.runtime.checkpoint` -- asynchronous checkpointing and rollback.
* :mod:`repro.runtime.reconfiguration` -- the kill-free reconfiguration
  latency model (section 5.5 breakdown).
* :mod:`repro.runtime.controller` -- the controller that monitors resource
  availability, re-invokes the planner and reconfigures workers.
* :mod:`repro.runtime.session` -- end-to-end elastic training sessions over
  an availability trace (used by the elasticity experiments).
"""

from repro.runtime.engine import SimulationEngine, Event
from repro.runtime.comm_groups import CommunicationGroups, build_rank_topology, RankAssignment
from repro.runtime.worker import TrainingWorker, WorkerState
from repro.runtime.checkpoint import CheckpointManager, CheckpointConfig
from repro.runtime.reconfiguration import ReconfigurationModel, ReconfigurationBreakdown
from repro.runtime.controller import TrainingController
from repro.runtime.session import ElasticTrainingSession, SessionReport

__all__ = [
    "SimulationEngine",
    "Event",
    "CommunicationGroups",
    "build_rank_topology",
    "RankAssignment",
    "TrainingWorker",
    "WorkerState",
    "CheckpointManager",
    "CheckpointConfig",
    "ReconfigurationModel",
    "ReconfigurationBreakdown",
    "TrainingController",
    "ElasticTrainingSession",
    "SessionReport",
]
