"""Sailor distributed training framework (simulated).

The paper's training framework is a modified Megatron-DeepSpeed with support
for heterogeneous plans, fault tolerance and elasticity (section 4.4).  This
package reproduces its *systems* behaviour as a discrete-event simulation:

* :mod:`repro.runtime.engine` -- a small discrete-event simulation engine.
* :mod:`repro.runtime.comm_groups` -- building the data/pipeline/tensor
  communication groups (rank topology) for heterogeneous plans.
* :mod:`repro.runtime.worker` -- per-worker state machine.
* :mod:`repro.runtime.checkpoint` -- asynchronous checkpointing and rollback.
* :mod:`repro.runtime.reconfiguration` -- the kill-free reconfiguration
  latency model (section 5.5 breakdown).
* :mod:`repro.runtime.controller` -- the replanning controller loop: when
  availability changes it reacts at the cheapest sufficient degradation
  tier (``CONTINUE`` -> ``SHRINK_DP`` -> ``FULL_REPLAN`` -> ``PARK``),
  governed by a :class:`~repro.runtime.controller.ReplanPolicy`
  (debounce/hysteresis on flapping pools, wall-clock replan deadline with
  keep-the-incumbent fallback, retry-with-backoff while parked) and made
  *incremental* by solving every replan inside one long-lived planner
  search context.
* :mod:`repro.runtime.faults` -- seeded fault-injection harness: labelled,
  serializable churn scenarios (preemption bursts, quota cuts, zone
  outages, node flaps, mid-drain preemptions).
* :mod:`repro.runtime.replay` -- deterministic replay of a fault trace
  against the controller loop, with zero-drop accounting and incremental
  reuse counters.  From the CLI:
  ``sailor-repro churn --model <name> --events 200 --seed 0`` generates and
  replays a trace; ``--trace-out``/``--trace-in`` round-trip it as JSON.
* :mod:`repro.runtime.session` -- end-to-end elastic training sessions over
  an availability trace (used by the elasticity experiments).
"""

from repro.runtime.engine import SimulationEngine, Event
from repro.runtime.comm_groups import CommunicationGroups, build_rank_topology, RankAssignment
from repro.runtime.worker import TrainingWorker, WorkerState
from repro.runtime.checkpoint import CheckpointManager, CheckpointConfig
from repro.runtime.reconfiguration import ReconfigurationModel, ReconfigurationBreakdown
from repro.runtime.controller import (
    DegradationTier,
    ReplanDecision,
    ReplanPolicy,
    TrainingController,
)
from repro.runtime.faults import FaultEvent, FaultScenarioGenerator, FaultTrace
from repro.runtime.replay import ChurnReplayer, ChurnReport
from repro.runtime.session import ElasticTrainingSession, SessionReport

__all__ = [
    "SimulationEngine",
    "Event",
    "CommunicationGroups",
    "build_rank_topology",
    "RankAssignment",
    "TrainingWorker",
    "WorkerState",
    "CheckpointManager",
    "CheckpointConfig",
    "ReconfigurationModel",
    "ReconfigurationBreakdown",
    "DegradationTier",
    "ReplanDecision",
    "ReplanPolicy",
    "TrainingController",
    "FaultEvent",
    "FaultScenarioGenerator",
    "FaultTrace",
    "ChurnReplayer",
    "ChurnReport",
    "ElasticTrainingSession",
    "SessionReport",
]
