"""Asynchronous checkpointing and rollback.

Sailor restarts training from the latest available checkpoint after a
reconfiguration and uses asynchronous checkpointing to minimise rollback
(paper section 4.4).  The manager models:

* a checkpoint *stall*: the short synchronous phase that snapshots device
  state into host memory (training pauses);
* an asynchronous *drain*: writing the snapshot to durable storage in the
  background (training continues); a checkpoint only becomes *durable* once
  the drain finishes, so a failure during the drain rolls back to the
  previous durable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import ParallelizationPlan
from repro.models.spec import TrainingJobSpec


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing policy and costs.

    Attributes
    ----------
    interval_iterations:
        Take a checkpoint every N iterations.
    host_snapshot_gbps:
        Device-to-host copy bandwidth (GB/s) for the synchronous stall.
    storage_write_gbps:
        Host-to-storage bandwidth (GB/s) for the asynchronous drain.
    """

    interval_iterations: int = 50
    host_snapshot_gbps: float = 20.0
    storage_write_gbps: float = 2.0

    def __post_init__(self) -> None:
        if self.interval_iterations < 1:
            raise ValueError("interval_iterations must be >= 1")
        if self.host_snapshot_gbps <= 0 or self.storage_write_gbps <= 0:
            raise ValueError("bandwidths must be positive")


@dataclass(frozen=True)
class CheckpointRecord:
    """One durable (or in-flight) checkpoint."""

    iteration: int
    started_at_s: float
    durable_at_s: float


@dataclass
class CheckpointManager:
    """Tracks checkpoints of one training job."""

    job: TrainingJobSpec
    config: CheckpointConfig = field(default_factory=CheckpointConfig)
    records: list[CheckpointRecord] = field(default_factory=list)

    # -- cost model -----------------------------------------------------------

    def checkpoint_bytes(self) -> float:
        """Bytes of one full checkpoint (fp32 weights + optimizer state)."""
        params = self.job.model.total_params
        if self.job.optimizer in ("adam", "adamw"):
            per_param = 4 + 4 + 4  # master weights, momentum, variance
        else:
            per_param = 4 + 4
        return float(params * per_param)

    def stall_time_s(self, plan: ParallelizationPlan) -> float:
        """Synchronous pause while device state is snapshotted to host.

        The snapshot is sharded across all workers, so it scales inversely
        with the number of GPUs in the plan.
        """
        shard = self.checkpoint_bytes() / max(1, plan.total_gpus)
        return shard / (self.config.host_snapshot_gbps * 1e9)

    def drain_time_s(self, plan: ParallelizationPlan) -> float:
        """Background time to make the snapshot durable."""
        shard = self.checkpoint_bytes() / max(1, plan.total_gpus)
        return shard / (self.config.storage_write_gbps * 1e9)

    # -- bookkeeping ------------------------------------------------------------

    def should_checkpoint(self, iteration: int) -> bool:
        """True when a checkpoint is due at this iteration."""
        return iteration > 0 and iteration % self.config.interval_iterations == 0

    def record(self, iteration: int, started_at_s: float,
               durable_at_s: float) -> CheckpointRecord:
        """Register a checkpoint that started (durable later, async)."""
        if durable_at_s < started_at_s:
            raise ValueError("a checkpoint cannot become durable before it starts")
        record = CheckpointRecord(iteration=iteration, started_at_s=started_at_s,
                                  durable_at_s=durable_at_s)
        self.records.append(record)
        return record

    def latest_durable(self, at_time_s: float) -> CheckpointRecord | None:
        """Most recent checkpoint that is durable at ``at_time_s``."""
        durable = [r for r in self.records if r.durable_at_s <= at_time_s]
        if not durable:
            return None
        return max(durable, key=lambda r: r.iteration)

    def rollback_iterations(self, current_iteration: int, at_time_s: float) -> int:
        """Iterations of work lost when failing at ``current_iteration``."""
        latest = self.latest_durable(at_time_s)
        restored = latest.iteration if latest else 0
        return max(0, current_iteration - restored)
