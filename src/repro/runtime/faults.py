"""Fault-injection harness: seeded, replayable churn scenarios.

The paper's whole premise (sections 4.4 and 5.5) is surviving *dynamic*
clusters -- spot preemptions, slow quota ramps, zone outages, nodes that
flap in and out.  This module turns those failure modes into deterministic,
serializable event streams the replanning controller can be driven with:

* :class:`FaultEvent` -- one availability step *labelled with its trigger
  cause* (``preemption_burst``, ``quota_cut``, ``zone_outage``,
  ``node_flap``, ``mid_drain_preemption``, ...), so controller decisions and
  :class:`~repro.runtime.controller.ReconfigurationEvent` records can carry
  the cause for observability.
* :class:`FaultTrace` -- an ordered stream of fault events with JSON
  round-tripping (save a trace, replay it elsewhere, diff two runs) and
  grouping of simultaneous multi-pool events (a zone outage hits every pool
  of the zone at the same instant and must be handled as *one* topology
  change, not several).
* :class:`FaultScenarioGenerator` -- seeded composition of the availability
  primitives in :class:`~repro.hardware.availability
  .AvailabilityTraceGenerator` into labelled scenarios, including
  :meth:`~FaultScenarioGenerator.churn_trace`, which packs an exact number
  of mixed events (the 1000-event churn bench) into one deterministic
  stream: same seed, same trace, byte for byte.

Replay a trace with :class:`~repro.runtime.replay.ChurnReplayer` (or from
the CLI: ``sailor-repro churn --seed 0 --events 1000 --trace-out t.json``
then ``sailor-repro churn --trace-in t.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.availability import (
    AvailabilityEvent,
    AvailabilityTrace,
    AvailabilityTraceGenerator,
)

#: Format version written into every serialized trace document.
FORMAT_VERSION = 1

#: Trigger kinds a generated fault event may carry.
FAULT_KINDS = (
    "initial",
    "preemption_burst",
    "mid_drain_preemption",
    "quota_cut",
    "zone_outage",
    "node_flap",
    "price_move",
)


@dataclass(frozen=True)
class FaultEvent:
    """One availability step change labelled with its trigger cause.

    A ``price_move`` event additionally carries ``price_multiplier``: the
    factor applied to the pool's GPU hourly price from this instant on
    (relative to the price at replay start).  Its ``available_nodes`` is
    the pool's unchanged level, so replaying the availability step function
    alone is a no-op -- the pricing perturbation is interpreted by
    :class:`~repro.runtime.replay.ChurnReplayer`, which drives a
    cost-objective replan through the controller.  The field is emitted
    only when set, so traces without price moves stay byte-identical to
    format version 1 documents.
    """

    time_s: float
    kind: str
    zone: str
    node_type: str
    available_nodes: int
    price_multiplier: float | None = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("time_s must be non-negative")
        if self.available_nodes < 0:
            raise ValueError("available_nodes must be non-negative")
        if self.price_multiplier is not None and self.price_multiplier <= 0:
            raise ValueError("price_multiplier must be positive")

    def to_availability_event(self) -> AvailabilityEvent:
        """Strip the cause label down to the availability-layer event."""
        return AvailabilityEvent(time_s=self.time_s, zone=self.zone,
                                 node_type=self.node_type,
                                 available_nodes=self.available_nodes)

    def to_dict(self) -> dict:
        """Plain-dict form (stable keys, used by trace serialization)."""
        data = {"time_s": self.time_s, "kind": self.kind, "zone": self.zone,
                "node_type": self.node_type,
                "available_nodes": self.available_nodes}
        if self.price_multiplier is not None:
            data["price_multiplier"] = self.price_multiplier
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        multiplier = data.get("price_multiplier")
        return cls(time_s=float(data["time_s"]), kind=data["kind"],
                   zone=data["zone"], node_type=data["node_type"],
                   available_nodes=int(data["available_nodes"]),
                   price_multiplier=(None if multiplier is None
                                     else float(multiplier)))


@dataclass
class FaultTrace:
    """A deterministic, replayable stream of labelled availability changes."""

    events: list[FaultEvent] = field(default_factory=list)
    duration_s: float = 8 * 3600.0

    def __post_init__(self) -> None:
        # Stable sort: events sharing a timestamp keep generation order, so
        # serialization round-trips and replays are byte-deterministic.
        self.events.sort(key=lambda e: e.time_s)

    @property
    def pools(self) -> list[tuple[str, str]]:
        """All (zone, node_type) pools the trace touches."""
        return sorted({(e.zone, e.node_type) for e in self.events})

    def to_availability_trace(self) -> AvailabilityTrace:
        """The unlabelled availability step function of this trace."""
        return AvailabilityTrace(
            events=[e.to_availability_event() for e in self.events],
            duration_s=self.duration_s)

    def grouped_events(self) -> list[tuple[float, list[FaultEvent]]]:
        """Events grouped by exact timestamp, in time order.

        Simultaneous multi-pool events (e.g. a zone outage hitting several
        pools at one instant) form a single group, so the controller sees
        one consistent topology change instead of a partially-applied one.
        """
        groups: list[tuple[float, list[FaultEvent]]] = []
        for event in self.events:
            if groups and groups[-1][0] == event.time_s:
                groups[-1][1].append(event)
            else:
                groups.append((event.time_s, [event]))
        return groups

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict document (versioned)."""
        return {"format_version": FORMAT_VERSION,
                "duration_s": self.duration_s,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultTrace":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        version = data.get("format_version", FORMAT_VERSION)
        if version > FORMAT_VERSION:
            raise ValueError(f"fault trace format {version} is newer than "
                             f"supported ({FORMAT_VERSION})")
        return cls(events=[FaultEvent.from_dict(e)
                           for e in data.get("events", [])],
                   duration_s=float(data.get("duration_s", 8 * 3600.0)))

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON encoding of the trace."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultTrace":
        """Decode a trace written by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _label(events: list[AvailabilityEvent], kind: str) -> list[FaultEvent]:
    """Attach one scenario's trigger kind to its availability events."""
    return [FaultEvent(time_s=e.time_s, kind=kind, zone=e.zone,
                       node_type=e.node_type,
                       available_nodes=e.available_nodes) for e in events]


class FaultScenarioGenerator:
    """Seeded composition of availability primitives into labelled faults.

    Every method is a pure function of the construction seed and its
    arguments: the same seed produces the identical event stream, which is
    what makes fault scenarios reproducible in CI and bisectable when a
    replay regresses.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._gen = AvailabilityTraceGenerator(seed)
        self._rng: np.random.Generator = self._gen._rng

    # -- single scenarios ----------------------------------------------------

    def preemption_burst(self, zone: str, node_type: str, base_nodes: int,
                         at_s: float, **kwargs) -> list[FaultEvent]:
        """Spot preemptions landing in a short window (see the primitive)."""
        return _label(self._gen.preemption_burst(zone, node_type, base_nodes,
                                                 at_s, **kwargs),
                      "preemption_burst")

    def quota_cut(self, zone: str, node_type: str, base_nodes: int,
                  at_s: float, **kwargs) -> list[FaultEvent]:
        """A provider quota reduction with optional restore."""
        return _label(self._gen.quota_cut(zone, node_type, base_nodes, at_s,
                                          **kwargs), "quota_cut")

    def node_flap(self, zone: str, node_type: str, base_nodes: int,
                  at_s: float, **kwargs) -> list[FaultEvent]:
        """A node leaving and rejoining repeatedly (debounce fodder)."""
        return _label(self._gen.node_flap(zone, node_type, base_nodes, at_s,
                                          **kwargs), "node_flap")

    def zone_outage(self, pools: dict[tuple[str, str], int], zone: str,
                    at_s: float, **kwargs) -> list[FaultEvent]:
        """A whole zone going dark: simultaneous multi-pool events."""
        return _label(self._gen.zone_outage(pools, zone, at_s, **kwargs),
                      "zone_outage")

    def mid_drain_preemption(self, zone: str, node_type: str, base_nodes: int,
                             drain_started_s: float, drain_duration_s: float,
                             lost_nodes: int = 1,
                             recovery_s: float = 900.0) -> list[FaultEvent]:
        """A preemption placed *inside* an async checkpoint drain window.

        The checkpoint whose drain spans ``[drain_started_s, drain_started_s
        + drain_duration_s)`` is not durable yet when the preemption lands at
        the window's midpoint, so the rollback must reach back to the
        previous durable checkpoint (the
        :class:`~repro.runtime.checkpoint.CheckpointManager` contract this
        scenario exists to exercise).
        """
        if drain_duration_s <= 0:
            raise ValueError("drain_duration_s must be positive")
        at = drain_started_s + drain_duration_s / 2.0
        remaining = max(0, base_nodes - lost_nodes)
        events = [FaultEvent(at, "mid_drain_preemption", zone, node_type,
                             remaining)]
        events.append(FaultEvent(at + recovery_s, "mid_drain_preemption",
                                 zone, node_type, base_nodes))
        return events

    def price_move(self, zone: str, node_type: str, base_nodes: int,
                   at_s: float, multiplier: float,
                   revert_after_s: float | None = None) -> list[FaultEvent]:
        """A spot-price change on one pool (availability unchanged).

        Emits one ``price_move`` event scaling the pool's GPU hourly price
        by ``multiplier`` (relative to the price at replay start), plus an
        optional revert to the original price after ``revert_after_s``.
        The events carry the pool's unchanged node level so the
        availability step function is untouched; the replayer interprets
        the multiplier and triggers a cost-objective replan.
        """
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        events = [FaultEvent(at_s, "price_move", zone, node_type, base_nodes,
                             price_multiplier=multiplier)]
        if revert_after_s is not None:
            events.append(FaultEvent(at_s + revert_after_s, "price_move",
                                     zone, node_type, base_nodes,
                                     price_multiplier=1.0))
        return events

    # -- composed churn ------------------------------------------------------

    def churn_trace(self, pools: dict[tuple[str, str], int],
                    duration_s: float = 4 * 3600.0,
                    num_events: int = 1000,
                    kind_weights: dict[str, float] | None = None,
                    ) -> FaultTrace:
        """An exact-count mixed churn stream over several pools.

        Scenario kinds (preemption bursts, quota cuts, node flaps, zone
        outages) are drawn with ``kind_weights`` at seeded uniform start
        times; generation continues until at least ``num_events`` events
        exist inside the duration, then the stream is truncated to exactly
        ``num_events`` earliest events.  Per-pool levels are absolute steps
        against the pool's base capacity, so overlapping scenarios compose
        into a valid (if adversarial) step function.
        """
        if not pools:
            raise ValueError("churn_trace needs at least one pool")
        if num_events < len(pools):
            raise ValueError("num_events must cover the initial events")
        weights = dict(kind_weights or {"preemption_burst": 0.35,
                                        "node_flap": 0.3,
                                        "quota_cut": 0.2,
                                        "zone_outage": 0.15})
        kinds = sorted(weights)
        probs = np.array([weights[k] for k in kinds], dtype=float)
        probs = probs / probs.sum()
        pool_keys = sorted(pools)
        zones = sorted({zone for zone, _ in pool_keys})

        events: list[FaultEvent] = [
            FaultEvent(0.0, "initial", zone, node_type, pools[(zone, node_type)])
            for zone, node_type in pool_keys]
        guard = 0
        while len(events) < num_events:
            guard += 1
            if guard > 100 * num_events:  # pragma: no cover - safety valve
                raise RuntimeError("churn_trace failed to reach num_events")
            kind = kinds[int(self._rng.choice(len(kinds), p=probs))]
            at = float(self._rng.uniform(0.02, 0.92)) * duration_s
            zone, node_type = pool_keys[int(self._rng.integers(len(pool_keys)))]
            base = pools[(zone, node_type)]
            if kind == "preemption_burst":
                burst = int(self._rng.integers(1, max(2, base)))
                produced = self.preemption_burst(
                    zone, node_type, base, at, burst_size=burst,
                    spacing_s=float(self._rng.uniform(10.0, 60.0)),
                    recovery_s=float(self._rng.uniform(300.0, 1800.0)))
            elif kind == "quota_cut":
                produced = self.quota_cut(
                    zone, node_type, base, at,
                    cut_fraction=float(self._rng.uniform(0.25, 0.75)),
                    restore_after_s=float(self._rng.uniform(900.0, 3600.0)))
            elif kind == "node_flap":
                produced = self.node_flap(
                    zone, node_type, base, at,
                    period_s=float(self._rng.uniform(60.0, 240.0)),
                    cycles=int(self._rng.integers(1, 4)))
            elif kind == "price_move":
                # Only reachable through caller-supplied kind_weights: the
                # default weights (and so every existing seeded trace) are
                # unchanged, byte for byte.
                produced = self.price_move(
                    zone, node_type, base, at,
                    multiplier=float(self._rng.uniform(0.5, 2.0)),
                    revert_after_s=float(self._rng.uniform(900.0, 3600.0)))
            else:  # zone_outage
                outage_zone = zones[int(self._rng.integers(len(zones)))]
                produced = self.zone_outage(
                    pools, outage_zone, at,
                    outage_s=float(self._rng.uniform(600.0, 2400.0)))
            events.extend(e for e in produced if e.time_s < duration_s)

        trace = FaultTrace(events=events, duration_s=duration_s)
        trace.events = trace.events[:num_events]
        return trace
