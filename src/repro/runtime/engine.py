"""A minimal discrete-event simulation engine.

The runtime components (controller, workers, checkpointing) schedule events
on a shared engine; each event carries a callback executed at its simulated
timestamp.  The engine is deliberately small -- deterministic ordering,
no real concurrency -- so tests can assert on exact timelines.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """One scheduled callback."""

    time_s: float
    sequence: int
    name: str = field(compare=False)
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when the event fires."""
        self.cancelled = True


class SimulationEngine:
    """Priority-queue driven simulated clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay_s: float, name: str,
                 callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        event = Event(time_s=self._now + delay_s, sequence=next(self._sequence),
                      name=name, callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_s: float, name: str,
                    callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time_s < self._now:
            raise ValueError("cannot schedule an event in the past")
        return self.schedule(time_s - self._now, name, callback)

    def step(self) -> Event | None:
        """Run the next pending event; returns it (or ``None`` if idle)."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time_s
            event.callback()
            self.events_processed += 1
            return event
        return None

    def run(self, until_s: float | None = None,
            max_events: int | None = None) -> int:
        """Run events until the queue is empty, a deadline, or an event cap.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until_s is not None and next_event.time_s > until_s:
                self._now = until_s
                break
            if self.step() is not None:
                processed += 1
        if until_s is not None and not self._queue and self._now < until_s:
            self._now = until_s
        return processed

    def _peek(self) -> Event | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)
