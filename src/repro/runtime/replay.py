"""Deterministic replay of fault traces against the controller loop.

:class:`ChurnReplayer` plays a :class:`~repro.runtime.faults.FaultTrace`
against a :class:`~repro.runtime.controller.TrainingController` end to end:
it applies every fault event group (simultaneous multi-pool events land as
one topology change), wakes parked jobs at their retry-backoff deadlines,
trains at the simulator-predicted rate between boundaries, takes
asynchronous checkpoints, and rolls back to the latest *durable* checkpoint
when capacity is lost out from under the incumbent plan (a shrink-in-place
keeps going without rollback: the surviving data-parallel replicas hold a
complete copy of the model state).

The resulting :class:`ChurnReport` carries zero-drop accounting
(``events_total == events_applied``), the per-decision degradation-tier
tally, replan latencies (p50/p99), how many replans were answered *warm*
from the controller's long-lived search context, and the plan signature
history (serialized plans) that the determinism tests compare byte for
byte.  Replays with a deadline-free policy are fully deterministic: same
trace, same decisions, same plans, same iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objectives import Objective
from repro.core.serialization import plan_to_json
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec
from repro.runtime.checkpoint import CheckpointConfig, CheckpointManager
from repro.runtime.controller import (
    DegradationTier,
    ReplanPolicy,
    TrainingController,
)
from repro.runtime.faults import FaultTrace


@dataclass(frozen=True)
class ReplayRecord:
    """One applied boundary of a replay (fault group or retry wakeup)."""

    time_s: float
    trigger: str
    tier: DegradationTier | None
    action: str
    pool_gpus: int
    plan_gpus: int
    iterations_lost: int


@dataclass
class ChurnReport:
    """Outcome and accounting of one fault-trace replay."""

    duration_s: float = 0.0
    #: Events carried by the trace vs. events actually presented to the
    #: controller; the acceptance criterion is ``events_dropped == 0``.
    events_total: int = 0
    events_applied: int = 0
    #: ``price_move`` events applied to the price catalog during the run.
    price_moves: int = 0
    #: Planner solves, and the subset answered warm (the solve's stats
    #: delta shows reuse out of the controller's long-lived context).
    replans: int = 0
    replans_warm: int = 0
    #: Degradation-tier tally over all decisions.
    shrinks: int = 0
    parks: int = 0
    keeps: int = 0
    debounces: int = 0
    retries: int = 0
    deadline_fallbacks: int = 0
    switches: int = 0
    #: Latency of every planner solve, in decision order.
    replan_latencies_s: list[float] = field(default_factory=list)
    #: Incremental-reuse counters summed over all solves.
    layer_cache_hits: int = 0
    cache_hits: int = 0
    #: Training outcome.
    iterations_completed: int = 0
    iterations_lost_to_rollback: int = 0
    #: Training wall-clock re-done after rollbacks: iterations lost times
    #: the iteration time of the plan that had produced them.
    rollback_lost_time_s: float = 0.0
    reconfiguration_time_s: float = 0.0
    idle_time_s: float = 0.0
    training_time_s: float = 0.0
    checkpoint_stall_s: float = 0.0
    #: (time_s, serialized plan) for every applied reconfiguration, the
    #: byte-comparable history the determinism tests diff.
    plan_history: list[tuple[float, str]] = field(default_factory=list)
    records: list[ReplayRecord] = field(default_factory=list)

    @property
    def events_dropped(self) -> int:
        """Events the replay failed to present to the controller."""
        return self.events_total - self.events_applied

    @property
    def p50_replan_latency_s(self) -> float:
        """Median planner-solve latency."""
        return self._percentile(0.50)

    @property
    def p99_replan_latency_s(self) -> float:
        """Tail planner-solve latency."""
        return self._percentile(0.99)

    @property
    def plans_per_s(self) -> float:
        """Planner solves per second of planner wall-clock."""
        total = sum(self.replan_latencies_s)
        if total <= 0:
            return 0.0
        return len(self.replan_latencies_s) / total

    @property
    def reconfiguration_overhead_fraction(self) -> float:
        """Steady-state fraction of productive time lost to reconfiguration.

        Counts both the explicit reconfiguration pauses and the training
        wall-clock re-done after checkpoint rollbacks, over the total time
        the job was *trying* to make progress (training + reconfiguring).
        This is the headline robustness metric the churn bench gates: a
        replanning stack that thrashes shows up here even when every event
        was technically "handled".
        """
        denominator = self.training_time_s + self.reconfiguration_time_s
        if denominator <= 0:
            return 0.0
        return ((self.reconfiguration_time_s + self.rollback_lost_time_s)
                / denominator)

    @property
    def percent_replans_warm(self) -> float:
        """Fraction of solves answered with cross-replan cache reuse."""
        if self.replans == 0:
            return 0.0
        return self.replans_warm / self.replans

    def _percentile(self, q: float) -> float:
        if not self.replan_latencies_s:
            return 0.0
        ordered = sorted(self.replan_latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def describe(self) -> str:
        """Multi-line human-readable summary (used by the CLI)."""
        lines = [
            f"events: {self.events_applied}/{self.events_total} applied "
            f"({self.events_dropped} dropped, {self.price_moves} price moves)",
            f"decisions: {self.replans} replans ({self.replans_warm} warm, "
            f"{100 * self.percent_replans_warm:.0f}%), {self.shrinks} shrinks, "
            f"{self.switches} switches, {self.keeps} keeps, "
            f"{self.debounces} debounced, {self.parks} parks, "
            f"{self.retries} retries, "
            f"{self.deadline_fallbacks} deadline fallbacks",
            f"replan latency: p50={self.p50_replan_latency_s * 1e3:.1f} ms "
            f"p99={self.p99_replan_latency_s * 1e3:.1f} ms "
            f"({self.plans_per_s:.1f} plans/s)",
            f"incremental reuse: {self.layer_cache_hits} layer hits, "
            f"{self.cache_hits} cache hits",
            f"training: {self.iterations_completed} iterations "
            f"({self.iterations_lost_to_rollback} lost to rollback), "
            f"{self.training_time_s:.0f}s training / "
            f"{self.idle_time_s:.0f}s idle / "
            f"{self.reconfiguration_time_s:.1f}s reconfiguring",
            f"reconfiguration overhead: "
            f"{100 * self.reconfiguration_overhead_fraction:.2f}% of "
            f"productive time (incl. {self.rollback_lost_time_s:.1f}s "
            f"redone after rollback)",
        ]
        return "\n".join(lines)


class ChurnReplayer:
    """Plays a fault trace against the replanning controller loop."""

    def __init__(self, env: SimulationEnvironment, job: TrainingJobSpec,
                 objective: Objective | None = None,
                 policy: ReplanPolicy | None = None,
                 controller: TrainingController | None = None,
                 checkpoint_config: CheckpointConfig | None = None) -> None:
        self.env = env
        self.job = job
        self.objective = objective or Objective.max_throughput()
        self.policy = policy or ReplanPolicy()
        self.controller = controller or TrainingController(
            env=env, job=job, objective=self.objective, policy=self.policy)
        self.checkpoints = CheckpointManager(
            job=job, config=checkpoint_config or CheckpointConfig())
        self.simulator = SailorSimulator(env)
        #: Iteration time of the incumbent the last training window ran
        #: under; prices the wall-clock lost when a rollback discards work.
        self._last_iter_time_s = 0.0

    # -- main entry point ---------------------------------------------------------

    def run(self, trace: FaultTrace,
            base_topology: ClusterTopology | None = None,
            duration_s: float | None = None,
            max_iterations: int | None = None) -> ChurnReport:
        """Replay the trace end to end and account for every event."""
        duration = duration_s if duration_s is not None else trace.duration_s
        availability = trace.to_availability_trace()
        groups = [(t, events) for t, events in trace.grouped_events()
                  if t < duration]

        report = ChurnReport(
            duration_s=duration,
            events_total=sum(len(events) for _, events in groups))
        controller = self.controller
        decisions_before = len(controller.decisions)
        # price_move multipliers are relative to the prices the run started
        # with, so a revert event (multiplier 1.0) restores these exactly.
        base_prices = dict(self.env.prices.gpu_hourly_usd)

        completed = 0
        now = 0.0
        index = 0
        pending_reconfig_s = 0.0
        while now < duration:
            boundary, is_retry = self._next_boundary(groups, index, duration)
            completed, pending_reconfig_s = self._train(
                report, now, boundary, pending_reconfig_s, completed,
                max_iterations)
            now = boundary
            if now >= duration:
                break
            if max_iterations is not None and completed >= max_iterations:
                break

            topology = availability.topology_at(now, base=base_topology)
            plan_broken = (controller.current_plan is not None
                           and not controller._plan_still_fits(topology))
            decisions_at_boundary = len(controller.decisions)
            if is_retry:
                event = controller.maybe_retry(topology, now)
                trigger = "retry after backoff"
            else:
                fault_events = groups[index][1]
                index += 1
                trigger = ",".join(sorted({e.kind for e in fault_events}))
                price_events = [e for e in fault_events
                                if e.kind == "price_move"]
                if price_events:
                    self._apply_price_moves(price_events, base_prices, report)
                if price_events and len(price_events) == len(fault_events):
                    # A pure pricing boundary: the pool is unchanged, so the
                    # availability path's debounce/hysteresis would wrongly
                    # swallow the cost-basis change.
                    event = controller.handle_price_change(
                        topology, now, cause=trigger)
                else:
                    if price_events:
                        # Capacity moved at the same instant: take the
                        # availability path, but drop the price-stale caches
                        # first so the replan costs with the new tables.
                        controller.invalidate_price_caches()
                    event = controller.handle_availability_change(
                        topology, now, cause=trigger)
                report.events_applied += len(fault_events)

            lost = 0
            if plan_broken and (event is None
                                or event.tier is not DegradationTier.SHRINK_DP):
                # Capacity was lost out from under the incumbent: restart
                # from the latest durable checkpoint.  A shrink-in-place is
                # exempt -- the surviving replicas hold complete state.
                lost = self.checkpoints.rollback_iterations(completed, now)
                report.iterations_lost_to_rollback += lost
                report.rollback_lost_time_s += lost * self._last_iter_time_s
                completed = max(0, completed - lost)

            if event is not None:
                # A reconfiguration still in flight is superseded by the new
                # one (the broadcast restarts), so the debt is replaced, not
                # accumulated; it is drawn down inside the next windows and
                # only *consumed* time is accounted.
                pending_reconfig_s = event.total_s
                report.plan_history.append(
                    (now, plan_to_json(event.planner_result.plan,
                                       indent=None)))
            elif controller.current_plan is None:
                pending_reconfig_s = 0.0
            report.records.append(ReplayRecord(
                time_s=now, trigger=trigger,
                tier=event.tier if event is not None else None,
                action=controller.decisions[-1].action
                if len(controller.decisions) > decisions_at_boundary else "",
                pool_gpus=topology.total_gpus(),
                plan_gpus=(controller.current_plan.total_gpus
                           if controller.current_plan else 0),
                iterations_lost=lost))

        report.iterations_completed = completed
        self._tally_decisions(report, controller.decisions[decisions_before:])
        return report

    # -- internals ----------------------------------------------------------------

    def _apply_price_moves(self, events: list, base_prices: dict[str, float],
                           report: ChurnReport) -> None:
        """Apply ``price_move`` multipliers to the live price catalog.

        Multipliers are absolute w.r.t. the run-start base, not compounding:
        two successive 1.5x moves on the same pool leave the price at 1.5x
        the base, and the generator's revert event (multiplier 1.0) restores
        it exactly.  The replayer's own simulator is rebuilt so the
        training-rate accounting can never read a price-stale evaluator.
        """
        for event in events:
            gpu = get_node_type(event.node_type).gpu.name
            multiplier = (event.price_multiplier
                          if event.price_multiplier is not None else 1.0)
            self.env.prices.gpu_hourly_usd[gpu] = base_prices[gpu] * multiplier
            report.price_moves += 1
        self.simulator = SailorSimulator(self.env)

    def _next_boundary(self, groups: list, index: int,
                       duration: float) -> tuple[float, bool]:
        """Earliest upcoming wakeup: next fault group or a retry deadline."""
        event_t = groups[index][0] if index < len(groups) else duration
        retry_t = self.controller.next_retry_at_s
        if (self.controller.current_plan is None and retry_t is not None
                and retry_t < event_t and retry_t < duration):
            return retry_t, True
        return min(event_t, duration), False

    def _train(self, report: ChurnReport, start: float, end: float,
               reconfig_s: float, completed: int,
               max_iterations: int | None) -> tuple[int, float]:
        """Train over one quiet window, mirroring the session accounting.

        Returns the new completed-iteration count and the reconfiguration
        debt left to consume in later windows (the pause can outlast a
        short window between two fault boundaries).
        """
        plan = self.controller.current_plan
        span = max(0.0, end - start)
        if plan is None:
            report.idle_time_s += span
            return completed, 0.0
        consumed = min(reconfig_s, span)
        report.reconfiguration_time_s += consumed
        remaining_debt = reconfig_s - consumed
        window = span - consumed
        if window <= 0:
            return completed, remaining_debt
        evaluation = self.simulator.evaluate(plan)
        iter_time = evaluation.iteration_time_s
        self._last_iter_time_s = iter_time
        stall = self.checkpoints.stall_time_s(plan)
        drain = self.checkpoints.drain_time_s(plan)
        interval = self.checkpoints.config.interval_iterations

        effective_iter = iter_time + stall / interval
        iterations = int(window // effective_iter) if effective_iter > 0 else 0
        if max_iterations is not None:
            iterations = min(iterations, max(0, max_iterations - completed))

        for i in range(1, iterations + 1):
            iteration = completed + i
            if self.checkpoints.should_checkpoint(iteration):
                t_taken = start + consumed + i * effective_iter
                self.checkpoints.record(iteration, t_taken, t_taken + drain)
                report.checkpoint_stall_s += stall
        report.training_time_s += window
        return completed + iterations, remaining_debt

    @staticmethod
    def _tally_decisions(report: ChurnReport, decisions: list) -> None:
        """Fold the controller's decision log into the report counters."""
        for decision in decisions:
            if decision.replan_latency_s > 0:
                report.replans += 1
                report.replan_latencies_s.append(decision.replan_latency_s)
                if decision.layer_cache_hits > 0 or decision.cache_hits > 0:
                    report.replans_warm += 1
                report.layer_cache_hits += decision.layer_cache_hits
                report.cache_hits += decision.cache_hits
            if decision.tier is DegradationTier.SHRINK_DP:
                report.shrinks += 1
            elif decision.tier is DegradationTier.PARK:
                report.parks += 1
            elif decision.action in ("kept", "not_worth_switching"):
                report.keeps += 1
            elif decision.action in ("debounced", "hysteresis"):
                report.debounces += 1
            elif decision.action == "switched":
                report.switches += 1
            if decision.trigger == "retry after backoff":
                report.retries += 1
            if decision.deadline_missed:
                report.deadline_fallbacks += 1
