"""The training controller.

The controller is the brains of the Sailor framework (section 4.4): it
monitors worker status and resource availability; when availability changes
it re-invokes the planner, instructs existing workers to clean up (destroy
NCCL groups, free GPU memory) without killing their processes, broadcasts
the new plan and topology, and waits for workers to re-initialise before
resuming training.

Under churn (see :mod:`repro.runtime.faults`) the controller applies a
:class:`ReplanPolicy` with four graceful-degradation tiers, tried in order
of increasing disruption:

1. ``CONTINUE`` -- the incumbent plan still fits and no switch is
   warranted (debounce/hysteresis gated, replan not better, replan missed
   its deadline, or the switch does not pay for its own reconfiguration
   pause within the amortization horizon).
2. ``SHRINK_DP`` -- the incumbent no longer fits but dropping whole
   data-parallel pipeline columns in place does: a cheap reconfigure with
   no planner invocation.
3. ``FULL_REPLAN`` -- a fresh solve, paying the
   :class:`~repro.runtime.reconfiguration.ReconfigurationModel` cost.
   Replans are *incremental*: every solve runs inside one long-lived
   :class:`~repro.core.search_cache.PlannerSearchContext`, so successive
   pools reuse forward layers, budget bounds and stage tables (the
   cross-time analogue of the planner's cross-candidate sharing).
4. ``PARK`` -- nothing fits: checkpoint-park the job (stop workers, keep
   state) and retry with exponential backoff as capacity returns.

Every decision is recorded as a :class:`ReplanDecision` and every applied
reconfiguration as a :class:`ReconfigurationEvent` carrying its trigger
cause, tier and deadline verdict for observability.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.core.objectives import Objective, OptimizationGoal
from repro.core.plan import (
    ParallelizationPlan,
    PlanEvaluation,
    PlannerResult,
    ResourceAllocation,
    SearchStats,
)
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.search_cache import PlannerSearchContext
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec
from repro.runtime.comm_groups import CommunicationGroups, build_rank_topology
from repro.runtime.reconfiguration import ReconfigurationBreakdown, ReconfigurationModel
from repro.runtime.worker import TrainingWorker, WorkerState


class DegradationTier(enum.Enum):
    """How disruptive the controller's reaction to a change was."""

    CONTINUE = "continue"
    SHRINK_DP = "shrink_dp"
    FULL_REPLAN = "full_replan"
    PARK = "park"


@dataclass(frozen=True)
class ReplanPolicy:
    """Knobs governing when and how the controller replans.

    The defaults reproduce the pre-policy behaviour (replan eagerly on
    every change, no deadline, always switch to a better plan), so
    existing callers see no difference until they opt in.
    """

    #: Minimum seconds between *voluntary* replan attempts while the
    #: incumbent still fits (flap suppression).  0 disables.
    debounce_s: float = 0.0
    #: Ignore pool-size changes smaller than this fraction of the pool the
    #: incumbent was deployed against, while the incumbent still fits.
    hysteresis_fraction: float = 0.0
    #: Wall-clock budget for one replan.  The planner runs anytime-bounded
    #: to this limit; a solve that still overruns it is treated as a miss:
    #: on the voluntary path the incumbent is kept (degraded), on the
    #: broken path the anytime answer is applied but flagged.
    replan_deadline_s: float | None = None
    #: Gap-aware adoption of *degraded* voluntary replans (deadline missed
    #: or anytime result incomplete): adopt the degraded plan when its
    #: certified ``optimality_gap_bound`` is at most this fraction,
    #: otherwise keep the incumbent.  ``None`` (default) keeps the
    #: incumbent on every degraded voluntary replan, the pre-anytime
    #: behaviour.
    max_adopt_gap: float | None = None
    #: Backoff schedule for retrying a transiently-infeasible pool.
    retry_backoff_s: float = 60.0
    retry_backoff_factor: float = 2.0
    max_retry_backoff_s: float = 900.0
    #: Horizon over which a voluntary switch must amortise its own
    #: reconfiguration pause (transition-cost-aware objective).  ``None``
    #: disables the gate.
    amortization_horizon_s: float | None = None
    #: Try dropping data-parallel columns in place before a full replan.
    enable_shrink: bool = True
    #: Reuse one search context across successive replans.
    incremental: bool = True
    #: Charge the reconfiguration model's *constant* planning latency
    #: instead of the measured solver wall-clock, so the simulated timeline
    #: (iteration counts, checkpoint instants) is a pure function of the
    #: trace.  Off by default: the measured latency is the honest section
    #: 5.5 accounting.
    deterministic_timing: bool = False


@dataclass(frozen=True)
class ReplanDecision:
    """One controller reaction to an availability change (or retry tick)."""

    time_s: float
    trigger: str
    tier: DegradationTier
    action: str
    replan_latency_s: float = 0.0
    deadline_missed: bool = False
    layer_cache_hits: int = 0
    cache_hits: int = 0


@dataclass
class ReconfigurationEvent:
    """Record of one controller-driven reconfiguration."""

    time_s: float
    reason: str
    old_gpus: int
    new_gpus: int
    breakdown: ReconfigurationBreakdown
    planner_result: PlannerResult
    #: What provoked this reconfiguration (fault kind / "initial deployment").
    trigger: str = ""
    #: Degradation tier the controller resolved the change at.
    tier: DegradationTier = DegradationTier.FULL_REPLAN
    #: True when the solve overran the policy's replan deadline.
    deadline_missed: bool = False

    @property
    def total_s(self) -> float:
        """End-to-end latency of this reconfiguration."""
        return self.breakdown.total_s


@dataclass
class TrainingController:
    """Monitors availability and reconfigures the job."""

    env: SimulationEnvironment
    job: TrainingJobSpec
    objective: Objective = field(default_factory=Objective.max_throughput)
    planner: SailorPlanner | None = None
    reconfiguration: ReconfigurationModel = field(default_factory=ReconfigurationModel)
    policy: ReplanPolicy = field(default_factory=ReplanPolicy)

    current_plan: ParallelizationPlan | None = None
    current_groups: CommunicationGroups | None = None
    workers: list[TrainingWorker] = field(default_factory=list)
    events: list[ReconfigurationEvent] = field(default_factory=list)
    decisions: list[ReplanDecision] = field(default_factory=list)
    #: True once a deployment failed/was lost and the job is waiting for
    #: capacity (checkpoint-park).
    parked: bool = False
    #: Cumulative planner work across every replan this controller issued.
    search_stats: SearchStats = field(default_factory=SearchStats)

    def __post_init__(self) -> None:
        if self.planner is None:
            # With a replan deadline the solver runs anytime-bounded to it,
            # so a "miss" degrades the answer's quality, never its latency.
            self.planner = SailorPlanner(self.env, config=PlannerConfig(
                time_limit_s=self.policy.replan_deadline_s))
        self.simulator = SailorSimulator(self.env)
        self._search_context: PlannerSearchContext | None = None
        self._last_replan_check_s: float | None = None
        self._deployed_pool_gpus: int = 0
        self._retry_at_s: float | None = None
        self._retry_backoff_s: float = self.policy.retry_backoff_s

    # -- planning ------------------------------------------------------------

    def replan(self, topology: ClusterTopology) -> PlannerResult:
        """Run the planner against the currently available topology.

        With ``policy.incremental`` the solve runs inside one long-lived
        search context, so forward layers, budget bounds and stage tables
        survive across successive pools; the chosen plan is identical to a
        from-scratch solve on the same pool (the context is
        topology-independent).
        """
        if self.policy.incremental and isinstance(self.planner, SailorPlanner):
            if self._search_context is None:
                self._search_context = PlannerSearchContext(
                    self.env, self.job, self.objective.goal)
            result = self.planner.plan(self.job, topology, self.objective,
                                       context=self._search_context)
        else:
            result = self.planner.plan(self.job, topology, self.objective)
        self.search_stats.merge(result.search_stats)
        return result

    # -- lifecycle -------------------------------------------------------------

    def start(self, topology: ClusterTopology, time_s: float = 0.0,
              ) -> ReconfigurationEvent | None:
        """Initial deployment; returns ``None`` when no plan is feasible."""
        return self._attempt_deploy(topology, time_s,
                                    cause="initial deployment")

    def handle_availability_change(self, topology: ClusterTopology,
                                   time_s: float,
                                   cause: str = "availability changed",
                                   ) -> ReconfigurationEvent | None:
        """React to an availability change; may keep the current plan.

        ``cause`` labels the trigger (e.g. a fault kind from
        :mod:`repro.runtime.faults`) on the resulting decision and event.
        Returns the reconfiguration event, or ``None`` when the change does
        not require any action (the incumbent is kept) or when no plan is
        feasible at all (the job parks).
        """
        if self.current_plan is None:
            return self._attempt_deploy(topology, time_s, cause)
        if self._plan_still_fits(topology):
            return self._maybe_improve(topology, time_s, cause)
        return self._handle_broken_plan(topology, time_s, cause)

    def maybe_retry(self, topology: ClusterTopology, time_s: float,
                    ) -> ReconfigurationEvent | None:
        """Retry a parked job once its backoff deadline has passed."""
        if (self.current_plan is not None or self._retry_at_s is None
                or time_s < self._retry_at_s):
            return None
        self._retry_at_s = None
        return self._attempt_deploy(topology, time_s,
                                    cause="retry after backoff")

    @property
    def next_retry_at_s(self) -> float | None:
        """When a parked job will next retry deployment, if scheduled."""
        return self._retry_at_s

    # -- decision paths -----------------------------------------------------------

    def _attempt_deploy(self, topology: ClusterTopology, time_s: float,
                        cause: str) -> ReconfigurationEvent | None:
        """Deploy onto a pool with no incumbent (start, park-resume, retry)."""
        self._last_replan_check_s = time_s
        result, missed = self._timed_replan(topology)
        if not result.found:
            self._park(time_s, cause, result,
                       retry=topology.total_gpus() > 0)
            return None
        event = self._apply(result, time_s, reason=cause, trigger=cause,
                            tier=DegradationTier.FULL_REPLAN,
                            deadline_missed=missed,
                            pool_gpus=topology.total_gpus())
        self._decide(time_s, cause, DegradationTier.FULL_REPLAN, "deployed",
                     result=result, deadline_missed=missed)
        return event

    def _maybe_improve(self, topology: ClusterTopology, time_s: float,
                       cause: str) -> ReconfigurationEvent | None:
        """The incumbent still fits: consider a voluntary switch."""
        policy = self.policy
        if (policy.debounce_s > 0 and self._last_replan_check_s is not None
                and time_s - self._last_replan_check_s < policy.debounce_s):
            self._decide(time_s, cause, DegradationTier.CONTINUE, "debounced")
            return None
        pool_gpus = topology.total_gpus()
        if policy.hysteresis_fraction > 0 and self._deployed_pool_gpus > 0:
            delta = abs(pool_gpus - self._deployed_pool_gpus)
            if delta < policy.hysteresis_fraction * self._deployed_pool_gpus:
                self._decide(time_s, cause, DegradationTier.CONTINUE,
                             "hysteresis")
                return None
        return self._consider_switch(topology, time_s, cause,
                                     reason="better plan available")

    def handle_price_change(self, topology: ClusterTopology, time_s: float,
                            cause: str = "price_move",
                            ) -> ReconfigurationEvent | None:
        """React to a GPU pricing change (e.g. a ``price_move`` fault).

        Prices are baked into the search context's cost tables, the
        simulators and the planner's caches, so all three are rebuilt
        before replanning.  Debounce and hysteresis are bypassed: a price
        move invalidates the incumbent's *cost basis* even when the
        topology (and so the pool size) is completely unchanged.
        """
        self.invalidate_price_caches()
        if self.current_plan is None:
            return self._attempt_deploy(topology, time_s, cause)
        if not self._plan_still_fits(topology):
            return self._handle_broken_plan(topology, time_s, cause)
        return self._consider_switch(topology, time_s, cause,
                                     reason="price move")

    def invalidate_price_caches(self) -> None:
        """Drop every cache that has prices baked in.

        Callers that mutate ``env.prices`` in place (e.g. the churn
        replayer applying a ``price_move`` multiplier) must invalidate
        before the next replan, or the solve would price candidates with
        the stale tables.
        """
        self._search_context = None
        self.simulator = SailorSimulator(self.env)
        if isinstance(self.planner, SailorPlanner):
            self.planner = SailorPlanner(self.env, config=self.planner.config)

    def _consider_switch(self, topology: ClusterTopology, time_s: float,
                         cause: str, reason: str,
                         ) -> ReconfigurationEvent | None:
        """Replan and switch if the result is adoptable, better and worth it.

        A *degraded* result (deadline missed, or anytime search incomplete)
        is adoptable only through the policy's gap-aware gate
        (:meth:`_adopt_degraded`); otherwise the incumbent is kept -- never
        block training on, or switch blindly after, a slow solve.
        """
        pool_gpus = topology.total_gpus()
        self._last_replan_check_s = time_s
        result, missed = self._timed_replan(topology)
        degraded = missed or not result.complete
        if degraded and not self._adopt_degraded(result):
            self._decide(time_s, cause, DegradationTier.CONTINUE,
                         "deadline_fallback", result=result,
                         deadline_missed=True)
            return None
        if (not result.found
                or (self.current_evaluation is not None
                    and not self.objective.better(result.evaluation,
                                                  self.current_evaluation))):
            self._decide(time_s, cause, DegradationTier.CONTINUE, "kept",
                         result=result)
            return None
        if not self._switch_worth_it(result):
            self._decide(time_s, cause, DegradationTier.CONTINUE,
                         "not_worth_switching", result=result)
            return None
        event = self._apply(result, time_s, reason=reason,
                            trigger=cause, tier=DegradationTier.FULL_REPLAN,
                            deadline_missed=degraded,
                            pool_gpus=pool_gpus)
        self._decide(time_s, cause, DegradationTier.FULL_REPLAN, "switched",
                     result=result, deadline_missed=degraded)
        return event

    def _adopt_degraded(self, result: PlannerResult) -> bool:
        """Keep-incumbent vs adopt-degraded-plan, decided by the certified
        optimality gap instead of a blind timeout fallback."""
        gap = self.policy.max_adopt_gap
        if gap is None or not result.found:
            return False
        return result.optimality_gap_bound <= gap

    def _handle_broken_plan(self, topology: ClusterTopology, time_s: float,
                            cause: str) -> ReconfigurationEvent | None:
        """The incumbent no longer fits: shrink, replan, or park."""
        self._last_replan_check_s = time_s
        if self.policy.enable_shrink:
            shrink_start = time.perf_counter()
            shrunk = self._shrink_to_fit(topology)
            if shrunk is not None:
                plan, evaluation = shrunk
                result = PlannerResult(
                    plan=plan, evaluation=evaluation,
                    search_time_s=time.perf_counter() - shrink_start,
                    planner_name="shrink-in-place")
                event = self._apply(result, time_s,
                                    reason="shrink data parallelism to fit",
                                    trigger=cause,
                                    tier=DegradationTier.SHRINK_DP,
                                    pool_gpus=topology.total_gpus())
                self._decide(time_s, cause, DegradationTier.SHRINK_DP,
                             "shrunk", result=result)
                return event
        result, missed = self._timed_replan(topology)
        if result.found:
            # The broken path applies the anytime answer even when degraded
            # (an incomplete search beats no plan), but flags it.
            degraded = missed or not result.complete
            event = self._apply(result, time_s, reason=cause, trigger=cause,
                                tier=DegradationTier.FULL_REPLAN,
                                deadline_missed=degraded,
                                pool_gpus=topology.total_gpus())
            self._decide(time_s, cause, DegradationTier.FULL_REPLAN,
                         "replanned", result=result, deadline_missed=degraded)
            return event
        self._park(time_s, cause, result, retry=topology.total_gpus() > 0)
        return None

    # -- internals ----------------------------------------------------------------

    @property
    def current_evaluation(self):
        """Accurate evaluation of the currently-deployed plan."""
        if self.current_plan is None:
            return None
        return self.simulator.evaluate(self.current_plan)

    def _plan_still_fits(self, topology: ClusterTopology) -> bool:
        """True when every (zone, node type) the plan uses is still there.

        ``fits_within`` compares the plan's whole-node allocation against
        the topology pool by pool, so simultaneous multi-pool events that
        keep the *total* GPU count unchanged (zone A loses what zone B
        gains) are still detected as breaking the plan.
        """
        if self.current_plan is None:
            return False
        return self.current_plan.resource_allocation().fits_within(topology)

    def _timed_replan(self, topology: ClusterTopology,
                      ) -> tuple[PlannerResult, bool]:
        """One replan plus the deadline verdict on its measured latency."""
        result = self.replan(topology)
        missed = (self.policy.replan_deadline_s is not None
                  and result.search_time_s > self.policy.replan_deadline_s)
        return result, missed

    def _switch_worth_it(self, result: PlannerResult) -> bool:
        """Transition-cost-aware gate on voluntary plan switches.

        Moving off the incumbent pauses training for the full
        reconfiguration latency; the switch is worth it only when the new
        plan's advantage, integrated over ``amortization_horizon_s``,
        exceeds the work (throughput objective) or money (cost objective)
        the pause forfeits.
        """
        horizon = self.policy.amortization_horizon_s
        if horizon is None or self.current_plan is None:
            return True
        current = self.current_evaluation
        if current is None or result.evaluation is None:
            return True
        pause = self.reconfiguration.total_s(
            max(1, result.plan.total_gpus),
            planning_time_s=result.search_time_s)
        new = result.evaluation
        if self.objective.goal is OptimizationGoal.MAX_THROUGHPUT:
            gained = (new.throughput_iters_per_s
                      - current.throughput_iters_per_s) * horizon
            lost = current.throughput_iters_per_s * pause
            return gained > lost
        # MIN_COST: dollars saved over the horizon vs. the cost of the
        # iterations the pause defers (priced at the new plan's rate).
        saved = (current.cost_per_iteration_usd
                 - new.cost_per_iteration_usd) * new.throughput_iters_per_s * horizon
        deferred = new.cost_per_iteration_usd * new.throughput_iters_per_s * pause
        return saved > deferred

    def _shrink_to_fit(self, topology: ClusterTopology,
                       ) -> tuple[ParallelizationPlan, PlanEvaluation] | None:
        """Drop whole data-parallel pipeline columns until the plan fits.

        A *column* is one data-parallel index across every stage (one full
        pipeline).  Columns are kept greedily in index order while their
        cumulative whole-node footprint (packed exactly like
        ``resource_allocation``) fits the pool, then the largest feasible
        prefix that also splits the global batch evenly and passes the
        simulator/constraint check wins.  No planner invocation: this is
        the cheap-reconfigure degradation tier.
        """
        plan = self.current_plan
        if plan is None:
            return None
        kept: list[int] = []
        for column in range(plan.data_parallel):
            candidate = kept + [column]
            if self._columns_allocation(plan, candidate).fits_within(topology):
                kept.append(column)
        for k in range(len(kept), 0, -1):
            columns = kept[:k]
            try:
                shrunk = ParallelizationPlan(
                    job=plan.job,
                    stages=[type(stage)(partition=stage.partition,
                                        replicas=[stage.replicas[j]
                                                  for j in columns])
                            for stage in plan.stages],
                    microbatch_size=plan.microbatch_size)
            except ValueError:
                continue  # e.g. the global batch does not split at this D
            evaluation = self.simulator.evaluate(shrunk)
            if not evaluation.is_valid:
                continue
            if not self.objective.constraint.satisfied_by(
                    evaluation, total_gpus=shrunk.total_gpus):
                continue
            return shrunk, evaluation
        return None

    @staticmethod
    def _columns_allocation(plan: ParallelizationPlan,
                            columns: list[int]) -> ResourceAllocation:
        """Whole-node footprint of a subset of data-parallel columns."""
        allocation = ResourceAllocation()
        for stage in plan.stages:
            packing: dict[tuple[str, str], int] = {}
            for j in columns:
                replica = stage.replicas[j]
                key = (replica.zone, replica.node_type)
                packing[key] = packing.get(key, 0) + replica.tensor_parallel
            for (zone, node_type), gpus in packing.items():
                per_node = get_node_type(node_type).gpus_per_node
                allocation.add(zone, node_type, -(-gpus // per_node))
        return allocation

    def _park(self, time_s: float, cause: str, result: PlannerResult,
              retry: bool) -> None:
        """Checkpoint-park: stop workers, keep state, optionally backoff."""
        self._stop_workers(time_s)
        self.current_plan = None
        self.current_groups = None
        self.parked = True
        if retry:
            self._retry_at_s = time_s + self._retry_backoff_s
            self._retry_backoff_s = min(
                self._retry_backoff_s * self.policy.retry_backoff_factor,
                self.policy.max_retry_backoff_s)
        else:
            self._retry_at_s = None
        self._decide(time_s, cause, DegradationTier.PARK, "parked",
                     result=result)

    def _apply(self, result: PlannerResult, time_s: float, reason: str,
               trigger: str = "", tier: DegradationTier = DegradationTier.FULL_REPLAN,
               deadline_missed: bool = False,
               pool_gpus: int | None = None) -> ReconfigurationEvent:
        old_gpus = self.current_plan.total_gpus if self.current_plan else 0
        new_plan = result.plan
        assert new_plan is not None

        # Kill-free path: surviving workers clean up and repartition instead
        # of being restarted.
        self._cleanup_workers(time_s)
        groups = build_rank_topology(new_plan)
        groups.validate()
        self.workers = [TrainingWorker(assignment=a) for a in groups.ranks]
        for worker in self.workers:
            worker.transition(WorkerState.INITIALIZING, time_s)
            worker.transition(WorkerState.TRAINING, time_s)

        breakdown = self.reconfiguration.breakdown(
            num_workers=new_plan.total_gpus,
            planning_time_s=(None if self.policy.deterministic_timing
                             else result.search_time_s))
        event = ReconfigurationEvent(
            time_s=time_s, reason=reason, old_gpus=old_gpus,
            new_gpus=new_plan.total_gpus, breakdown=breakdown,
            planner_result=result, trigger=trigger or reason, tier=tier,
            deadline_missed=deadline_missed)
        self.events.append(event)
        self.current_plan = new_plan
        self.current_groups = groups
        self.parked = False
        if pool_gpus is not None:
            self._deployed_pool_gpus = pool_gpus
        self._retry_at_s = None
        self._retry_backoff_s = self.policy.retry_backoff_s
        return event

    def _decide(self, time_s: float, trigger: str, tier: DegradationTier,
                action: str, result: PlannerResult | None = None,
                deadline_missed: bool = False) -> None:
        stats = result.search_stats if result is not None else SearchStats()
        self.decisions.append(ReplanDecision(
            time_s=time_s, trigger=trigger, tier=tier, action=action,
            replan_latency_s=result.search_time_s if result is not None else 0.0,
            deadline_missed=deadline_missed,
            layer_cache_hits=stats.layer_cache_hits,
            cache_hits=stats.cache_hits))

    def _cleanup_workers(self, time_s: float) -> None:
        for worker in self.workers:
            if worker.state is WorkerState.TRAINING:
                worker.transition(WorkerState.CLEANING_UP, time_s)
                worker.transition(WorkerState.REPARTITIONING, time_s)
                worker.transition(WorkerState.STOPPED, time_s)
            elif worker.state is not WorkerState.STOPPED:
                worker.transition(WorkerState.STOPPED, time_s)

    def _stop_workers(self, time_s: float) -> None:
        for worker in self.workers:
            if worker.state is not WorkerState.STOPPED:
                if worker.state is WorkerState.TRAINING:
                    worker.transition(WorkerState.CLEANING_UP, time_s)
                worker.transition(WorkerState.STOPPED, time_s)
        self.workers = []
