"""The training controller.

The controller is the brains of the Sailor framework (section 4.4): it
monitors worker status and resource availability; when availability changes
it re-invokes the planner, instructs existing workers to clean up (destroy
NCCL groups, free GPU memory) without killing their processes, broadcasts
the new plan and topology, and waits for workers to re-initialise before
resuming training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan, PlannerResult
from repro.core.planner import SailorPlanner
from repro.core.simulator import SailorSimulator, SimulationEnvironment
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec
from repro.runtime.comm_groups import CommunicationGroups, build_rank_topology
from repro.runtime.reconfiguration import ReconfigurationBreakdown, ReconfigurationModel
from repro.runtime.worker import TrainingWorker, WorkerState


@dataclass
class ReconfigurationEvent:
    """Record of one controller-driven reconfiguration."""

    time_s: float
    reason: str
    old_gpus: int
    new_gpus: int
    breakdown: ReconfigurationBreakdown
    planner_result: PlannerResult

    @property
    def total_s(self) -> float:
        """End-to-end latency of this reconfiguration."""
        return self.breakdown.total_s


@dataclass
class TrainingController:
    """Monitors availability and reconfigures the job."""

    env: SimulationEnvironment
    job: TrainingJobSpec
    objective: Objective = field(default_factory=Objective.max_throughput)
    planner: SailorPlanner | None = None
    reconfiguration: ReconfigurationModel = field(default_factory=ReconfigurationModel)

    current_plan: ParallelizationPlan | None = None
    current_groups: CommunicationGroups | None = None
    workers: list[TrainingWorker] = field(default_factory=list)
    events: list[ReconfigurationEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.planner is None:
            self.planner = SailorPlanner(self.env)
        self.simulator = SailorSimulator(self.env)

    # -- planning ------------------------------------------------------------

    def replan(self, topology: ClusterTopology) -> PlannerResult:
        """Run the planner against the currently available topology."""
        return self.planner.plan(self.job, topology, self.objective)

    # -- lifecycle -------------------------------------------------------------

    def start(self, topology: ClusterTopology, time_s: float = 0.0,
              ) -> ReconfigurationEvent | None:
        """Initial deployment; returns ``None`` when no plan is feasible."""
        return self._reconfigure(topology, time_s, reason="initial deployment")

    def handle_availability_change(self, topology: ClusterTopology,
                                   time_s: float) -> ReconfigurationEvent | None:
        """React to an availability change; may keep the current plan.

        Returns the reconfiguration event, or ``None`` when the change does
        not require any action (e.g. the current plan still fits and no
        better plan is available) or when no plan is feasible at all.
        """
        if self.current_plan is not None and self._plan_still_fits(topology):
            result = self.replan(topology)
            if (result.found and self.current_evaluation is not None
                    and not self.objective.better(result.evaluation,
                                                  self.current_evaluation)):
                return None
            if not result.found:
                return None
            return self._apply(result, time_s, reason="better plan available")
        return self._reconfigure(topology, time_s, reason="availability changed")

    # -- internals ----------------------------------------------------------------

    @property
    def current_evaluation(self):
        """Accurate evaluation of the currently-deployed plan."""
        if self.current_plan is None:
            return None
        return self.simulator.evaluate(self.current_plan)

    def _plan_still_fits(self, topology: ClusterTopology) -> bool:
        if self.current_plan is None:
            return False
        return self.current_plan.resource_allocation().fits_within(topology)

    def _reconfigure(self, topology: ClusterTopology, time_s: float,
                     reason: str) -> ReconfigurationEvent | None:
        result = self.replan(topology)
        if not result.found:
            self._stop_workers(time_s)
            self.current_plan = None
            self.current_groups = None
            return None
        return self._apply(result, time_s, reason)

    def _apply(self, result: PlannerResult, time_s: float,
               reason: str) -> ReconfigurationEvent:
        old_gpus = self.current_plan.total_gpus if self.current_plan else 0
        new_plan = result.plan
        assert new_plan is not None

        # Kill-free path: surviving workers clean up and repartition instead
        # of being restarted.
        self._cleanup_workers(time_s)
        groups = build_rank_topology(new_plan)
        groups.validate()
        self.workers = [TrainingWorker(assignment=a) for a in groups.ranks]
        for worker in self.workers:
            worker.transition(WorkerState.INITIALIZING, time_s)
            worker.transition(WorkerState.TRAINING, time_s)

        breakdown = self.reconfiguration.breakdown(
            num_workers=new_plan.total_gpus,
            planning_time_s=result.search_time_s)
        event = ReconfigurationEvent(
            time_s=time_s, reason=reason, old_gpus=old_gpus,
            new_gpus=new_plan.total_gpus, breakdown=breakdown,
            planner_result=result)
        self.events.append(event)
        self.current_plan = new_plan
        self.current_groups = groups
        return event

    def _cleanup_workers(self, time_s: float) -> None:
        for worker in self.workers:
            if worker.state is WorkerState.TRAINING:
                worker.transition(WorkerState.CLEANING_UP, time_s)
                worker.transition(WorkerState.REPARTITIONING, time_s)
                worker.transition(WorkerState.STOPPED, time_s)
            elif worker.state is not WorkerState.STOPPED:
                worker.transition(WorkerState.STOPPED, time_s)

    def _stop_workers(self, time_s: float) -> None:
        for worker in self.workers:
            if worker.state is not WorkerState.STOPPED:
                if worker.state is WorkerState.TRAINING:
                    worker.transition(WorkerState.CLEANING_UP, time_s)
                worker.transition(WorkerState.STOPPED, time_s)
        self.workers = []
