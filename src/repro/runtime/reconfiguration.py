"""Kill-free reconfiguration latency model.

Section 5.5 of the paper breaks down Sailor's reconfiguration time on a
16-V100 cluster when 4 GPUs are added:

===========================  ========
planning                       0.10 s
process cleanup                3.00 s
topology broadcast (gRPC)      1.25 s
NCCL group re-initialisation   4.50 s
model + optimizer redefinition 2.00 s
dataloader redefinition        0.50 s
===========================  ========

The model below reproduces those constants at the reference scale (20
workers) and scales the collective-sensitive parts with the worker count
(NCCL initialisation is known to take minutes at thousands of GPUs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


#: Worker count of the paper's measurement (16 + 4 V100 GPUs).
REFERENCE_WORKERS = 20


@dataclass(frozen=True)
class ReconfigurationBreakdown:
    """Per-phase latency of one reconfiguration, in seconds."""

    planning_s: float
    cleanup_s: float
    broadcast_s: float
    nccl_init_s: float
    model_init_s: float
    dataloader_s: float

    @property
    def total_s(self) -> float:
        """End-to-end reconfiguration latency."""
        return (self.planning_s + self.cleanup_s + self.broadcast_s
                + self.nccl_init_s + self.model_init_s + self.dataloader_s)

    def as_dict(self) -> dict[str, float]:
        """Phase name -> seconds (used by the reconfiguration experiment)."""
        return {
            "planning": self.planning_s,
            "cleanup": self.cleanup_s,
            "broadcast": self.broadcast_s,
            "nccl_init": self.nccl_init_s,
            "model_init": self.model_init_s,
            "dataloader": self.dataloader_s,
        }


@dataclass
class ReconfigurationModel:
    """Scales the section-5.5 phase latencies with the cluster size."""

    planning_s: float = 0.1
    cleanup_s: float = 3.0
    broadcast_s: float = 1.25
    nccl_init_s: float = 4.5
    model_init_s: float = 2.0
    dataloader_s: float = 0.5
    #: Exponent controlling how NCCL/broadcast latency grows with workers.
    scale_exponent: float = 1.0

    def breakdown(self, num_workers: int,
                  planning_time_s: float | None = None) -> ReconfigurationBreakdown:
        """Latency breakdown for a cluster of ``num_workers`` GPUs.

        ``planning_time_s`` lets the controller substitute the *measured*
        planner latency for the constant.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        scale = (num_workers / REFERENCE_WORKERS) ** self.scale_exponent
        scale = max(scale, 0.25)
        log_scale = max(0.5, math.log2(max(2, num_workers))
                        / math.log2(REFERENCE_WORKERS))
        return ReconfigurationBreakdown(
            planning_s=self.planning_s if planning_time_s is None else planning_time_s,
            cleanup_s=self.cleanup_s,
            broadcast_s=self.broadcast_s * log_scale,
            nccl_init_s=self.nccl_init_s * scale,
            model_init_s=self.model_init_s,
            dataloader_s=self.dataloader_s,
        )

    def total_s(self, num_workers: int,
                planning_time_s: float | None = None) -> float:
        """Total reconfiguration latency for a cluster size."""
        return self.breakdown(num_workers, planning_time_s).total_s
