"""Transformer model specifications and layer partitioning.

* :mod:`repro.models.spec` -- parameter / FLOP / activation accounting for
  dense transformer LLMs (the model class the paper evaluates).
* :mod:`repro.models.catalog` -- the models used in the paper (OPT-350M,
  GPT-Neo-2.7B) plus extras for examples.
* :mod:`repro.models.partition` -- splitting layers into pipeline stages.
"""

from repro.models.spec import TransformerModelSpec, TrainingJobSpec
from repro.models.catalog import get_model, list_models, register_model
from repro.models.partition import (
    LayerPartition,
    uniform_partition,
    partition_layers,
    balanced_partition,
)

__all__ = [
    "TransformerModelSpec",
    "TrainingJobSpec",
    "get_model",
    "list_models",
    "register_model",
    "LayerPartition",
    "uniform_partition",
    "partition_layers",
    "balanced_partition",
]
