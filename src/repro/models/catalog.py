"""Model catalog.

The paper evaluates OPT-350M and GPT-Neo-2.7B with a global batch size of
2048 sequences of 2048 tokens.  A few additional models are provided for
examples and scalability studies.
"""

from __future__ import annotations

from repro.models.spec import TransformerModelSpec


_REGISTRY: dict[str, TransformerModelSpec] = {}


def register_model(spec: TransformerModelSpec, *, overwrite: bool = False) -> TransformerModelSpec:
    """Add a model to the global catalog."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec and not overwrite:
        raise ValueError(f"model {spec.name!r} already registered with different spec")
    _REGISTRY[spec.name] = spec
    return spec


def get_model(name: str) -> TransformerModelSpec:
    """Look up a model by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list[TransformerModelSpec]:
    """Return all registered models, sorted by name."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


# ---------------------------------------------------------------------------
# Built-in catalog.
# ---------------------------------------------------------------------------

OPT_350M = register_model(TransformerModelSpec(
    name="OPT-350M",
    num_layers=24,
    hidden_size=1024,
    num_heads=16,
    vocab_size=50272,
    max_sequence_length=2048,
))

OPT_1_3B = register_model(TransformerModelSpec(
    name="OPT-1.3B",
    num_layers=24,
    hidden_size=2048,
    num_heads=32,
    vocab_size=50272,
    max_sequence_length=2048,
))

GPT_NEO_2_7B = register_model(TransformerModelSpec(
    name="GPT-Neo-2.7B",
    num_layers=32,
    hidden_size=2560,
    num_heads=20,
    vocab_size=50257,
    max_sequence_length=2048,
))

GPT_6_7B = register_model(TransformerModelSpec(
    name="GPT-6.7B",
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    vocab_size=50272,
    max_sequence_length=2048,
))

LLAMA_13B_LIKE = register_model(TransformerModelSpec(
    name="Llama-13B-like",
    num_layers=40,
    hidden_size=5120,
    num_heads=40,
    ffn_hidden_size=13824,
    vocab_size=32000,
    max_sequence_length=2048,
))
