"""Layer partitioning: assigning transformer layers to pipeline stages.

Sailor partitions the model's repeated layers into ``P`` contiguous pipeline
stages.  The first stage also hosts the input embedding and the last stage
the LM head, which matters for both memory (embedding parameters are large)
and compute (the vocabulary projection is expensive).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.spec import TransformerModelSpec


@dataclass(frozen=True)
class LayerPartition:
    """Contiguous block of transformer layers forming one pipeline stage.

    Attributes
    ----------
    stage_index:
        0-based index of the stage in the pipeline.
    num_stages:
        Total pipeline stages.
    first_layer / num_layers:
        The contiguous block of transformer layers of this stage.
    has_embedding / has_lm_head:
        Whether the stage hosts the input embedding / output projection.
    """

    stage_index: int
    num_stages: int
    first_layer: int
    num_layers: int
    has_embedding: bool
    has_lm_head: bool

    def __post_init__(self) -> None:
        if not 0 <= self.stage_index < self.num_stages:
            raise ValueError("stage_index out of range")
        if self.num_layers < 0 or self.first_layer < 0:
            raise ValueError("layer indices must be non-negative")

    @property
    def is_first(self) -> bool:
        """True for the first pipeline stage."""
        return self.stage_index == 0

    @property
    def is_last(self) -> bool:
        """True for the last pipeline stage."""
        return self.stage_index == self.num_stages - 1

    def stage_params(self, model: TransformerModelSpec) -> int:
        """Parameters held by this stage (before tensor-parallel sharding)."""
        params = self.num_layers * model.params_per_layer
        if self.has_embedding:
            params += model.embedding_params
        if self.has_lm_head:
            params += model.lm_head_params
            if model.tied_embeddings and not self.has_embedding:
                # Untied copy of the embedding weights lives on the last stage.
                params += model.vocab_size * model.hidden_size
        return params


def partition_layers(num_layers: int, num_stages: int) -> list[int]:
    """Split ``num_layers`` into ``num_stages`` near-equal contiguous blocks.

    Remainder layers go to the earliest stages, matching Megatron's default.
    Raises ``ValueError`` when there are more stages than layers.
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if num_layers < num_stages:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} stages")
    base = num_layers // num_stages
    remainder = num_layers % num_stages
    return [base + (1 if i < remainder else 0) for i in range(num_stages)]


def uniform_partition(model: TransformerModelSpec,
                      num_stages: int) -> list[LayerPartition]:
    """Partition a model into ``num_stages`` stages of near-equal depth."""
    counts = partition_layers(model.num_layers, num_stages)
    partitions = []
    first = 0
    for i, count in enumerate(counts):
        partitions.append(LayerPartition(
            stage_index=i,
            num_stages=num_stages,
            first_layer=first,
            num_layers=count,
            has_embedding=(i == 0),
            has_lm_head=(i == num_stages - 1),
        ))
        first += count
    return partitions


def balanced_partition(model: TransformerModelSpec, num_stages: int,
                       stage_weights: list[float]) -> list[LayerPartition]:
    """Partition layers proportionally to per-stage compute weights.

    ``stage_weights[i]`` expresses the relative compute capability of stage
    ``i`` (e.g. the aggregate profiled throughput of its GPUs).  Faster
    stages receive more layers, which is how heterogeneous plans
    load-balance across GPU generations.
    """
    if len(stage_weights) != num_stages:
        raise ValueError("stage_weights must have one entry per stage")
    if any(w <= 0 for w in stage_weights):
        raise ValueError("stage_weights must be positive")
    if model.num_layers < num_stages:
        raise ValueError(
            f"cannot split {model.num_layers} layers into {num_stages} stages")

    total_weight = sum(stage_weights)
    # Largest-remainder apportionment with a floor of one layer per stage.
    quotas = [model.num_layers * w / total_weight for w in stage_weights]
    counts = [max(1, int(q)) for q in quotas]
    while sum(counts) > model.num_layers:
        # Remove from the most over-allocated stage that still has > 1 layer.
        candidates = [i for i in range(num_stages) if counts[i] > 1]
        worst = max(candidates, key=lambda i: counts[i] - quotas[i])
        counts[worst] -= 1
    remainders = [(quotas[i] - counts[i], i) for i in range(num_stages)]
    remainders.sort(reverse=True)
    idx = 0
    while sum(counts) < model.num_layers:
        counts[remainders[idx % num_stages][1]] += 1
        idx += 1

    partitions = []
    first = 0
    for i, count in enumerate(counts):
        partitions.append(LayerPartition(
            stage_index=i,
            num_stages=num_stages,
            first_layer=first,
            num_layers=count,
            has_embedding=(i == 0),
            has_lm_head=(i == num_stages - 1),
        ))
        first += count
    return partitions
