"""Dense transformer model specifications.

The Sailor profiler measures per-layer times and sizes on real hardware; our
simulated profiler derives them from the analytic accounting in this module:
parameters, forward/backward FLOPs and activation bytes per transformer
layer, embedding and LM head.  The formulas follow the standard Megatron-LM
accounting (Shoeybi et al., Korthikanti et al.), which is what the paper's
memory model (section 4.3) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Bytes per element for supported training datatypes.
DTYPE_SIZES: dict[str, int] = {"fp32": 4, "fp16": 2, "bf16": 2}


@dataclass(frozen=True)
class TransformerModelSpec:
    """Architecture description of a dense decoder-only transformer.

    Attributes
    ----------
    name:
        Model identifier, e.g. ``"OPT-350M"``.
    num_layers:
        Number of transformer blocks.
    hidden_size:
        Model (embedding) dimension ``h``.
    num_heads:
        Attention heads; must divide ``hidden_size``.
    ffn_hidden_size:
        Width of the MLP block (usually ``4 * hidden_size``).
    vocab_size:
        Token vocabulary size (determines embedding/LM-head parameters).
    max_sequence_length:
        Maximum sequence length the model trains with.
    tied_embeddings:
        Whether the LM head shares weights with the input embedding.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    ffn_hidden_size: int = 0
    vocab_size: int = 50272
    max_sequence_length: int = 2048
    tied_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if self.num_heads < 1 or self.hidden_size % self.num_heads != 0:
            raise ValueError("num_heads must divide hidden_size")
        if self.ffn_hidden_size == 0:
            object.__setattr__(self, "ffn_hidden_size", 4 * self.hidden_size)

    # -- parameter counts ----------------------------------------------------

    @property
    def params_per_layer(self) -> int:
        """Parameters of one transformer block (attention + MLP + norms)."""
        h = self.hidden_size
        f = self.ffn_hidden_size
        attention = 4 * h * h + 4 * h          # QKV + output proj (+ biases)
        mlp = 2 * h * f + h + f                # up/down proj (+ biases)
        norms = 4 * h                          # two LayerNorms (scale + bias)
        return attention + mlp + norms

    @property
    def embedding_params(self) -> int:
        """Parameters of the input embedding (+ learned positions)."""
        return self.vocab_size * self.hidden_size + \
            self.max_sequence_length * self.hidden_size

    @property
    def lm_head_params(self) -> int:
        """Parameters of the output projection (0 when tied)."""
        if self.tied_embeddings:
            return 0
        return self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        """Total trainable parameters."""
        return (self.num_layers * self.params_per_layer
                + self.embedding_params + self.lm_head_params)

    # -- compute -------------------------------------------------------------

    def layer_forward_flops(self, microbatch_size: int, sequence_length: int) -> float:
        """Dense forward FLOPs of one transformer block for one microbatch."""
        self._check_batch(microbatch_size, sequence_length)
        b, s, h, f = microbatch_size, sequence_length, self.hidden_size, self.ffn_hidden_size
        attention_proj = 8 * b * s * h * h      # QKV + output projections
        attention_scores = 4 * b * s * s * h    # QK^T and attention * V
        mlp = 4 * b * s * h * f                 # two GEMMs
        return float(attention_proj + attention_scores + mlp)

    def layer_backward_flops(self, microbatch_size: int, sequence_length: int) -> float:
        """Backward FLOPs of one block (standard 2x the forward cost)."""
        return 2.0 * self.layer_forward_flops(microbatch_size, sequence_length)

    def embedding_forward_flops(self, microbatch_size: int, sequence_length: int) -> float:
        """Forward FLOPs of the embedding lookup (negligible, bandwidth bound)."""
        self._check_batch(microbatch_size, sequence_length)
        return float(2 * microbatch_size * sequence_length * self.hidden_size)

    def lm_head_forward_flops(self, microbatch_size: int, sequence_length: int) -> float:
        """Forward FLOPs of the final vocabulary projection."""
        self._check_batch(microbatch_size, sequence_length)
        return float(2 * microbatch_size * sequence_length
                     * self.hidden_size * self.vocab_size)

    # -- activations and I/O ---------------------------------------------------

    def layer_activation_bytes(self, microbatch_size: int, sequence_length: int,
                               tensor_parallel: int = 1,
                               dtype: str = "fp16") -> float:
        """Activation memory one block keeps for the backward pass.

        Uses the Megatron accounting ``s*b*h*(34 + 5*a*s/h)`` bytes for fp16
        (Korthikanti et al.), scaled by the dtype size and divided across
        tensor-parallel ranks.
        """
        self._check_batch(microbatch_size, sequence_length)
        if tensor_parallel < 1:
            raise ValueError("tensor_parallel must be >= 1")
        dtype_size = dtype_size_bytes(dtype)
        b, s, h, a = microbatch_size, sequence_length, self.hidden_size, self.num_heads
        per_layer_fp16 = s * b * h * (34.0 + 5.0 * a * s / h)
        return per_layer_fp16 * (dtype_size / 2.0) / tensor_parallel

    def boundary_activation_bytes(self, microbatch_size: int, sequence_length: int,
                                  dtype: str = "fp16") -> float:
        """Bytes sent between consecutive pipeline stages per microbatch."""
        self._check_batch(microbatch_size, sequence_length)
        return float(microbatch_size * sequence_length * self.hidden_size
                     * dtype_size_bytes(dtype))

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _check_batch(microbatch_size: int, sequence_length: int) -> None:
        if microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")
        if sequence_length < 1:
            raise ValueError("sequence_length must be >= 1")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.total_params / 1e6:.0f}M params)"


def dtype_size_bytes(dtype: str) -> int:
    """Bytes per element for a training datatype name."""
    try:
        return DTYPE_SIZES[dtype]
    except KeyError:
        raise ValueError(f"unsupported dtype {dtype!r}; use one of {sorted(DTYPE_SIZES)}") from None


@dataclass(frozen=True)
class TrainingJobSpec:
    """A training job: model + hyperparameters the planner must not change.

    The Sailor planner never alters the global batch size or optimizer, so
    the number of iterations to convergence (and hence total cost) is fixed
    by this spec (paper section 4.2/4.3).
    """

    model: TransformerModelSpec
    global_batch_size: int = 2048
    sequence_length: int = 2048
    optimizer: str = "adam"
    dtype: str = "fp16"
    master_weights_dtype: str = "fp32"
    activation_checkpointing: bool = False

    def __post_init__(self) -> None:
        if self.global_batch_size < 1:
            raise ValueError("global_batch_size must be >= 1")
        if self.sequence_length < 1:
            raise ValueError("sequence_length must be >= 1")
        if self.sequence_length > self.model.max_sequence_length:
            raise ValueError("sequence_length exceeds the model's maximum")
        dtype_size_bytes(self.dtype)
        if self.optimizer not in ("adam", "adamw", "sgd"):
            raise ValueError(f"unsupported optimizer {self.optimizer!r}")

    @property
    def bytes_per_param(self) -> float:
        """Peak persistent bytes per parameter (weights + grads + optimizer).

        Mixed-precision Adam keeps fp16 weights and gradients plus fp32
        master weights, momentum and variance: 2 + 2 + 4 + 4 + 4 = 16 bytes.
        SGD keeps fp16 weights/grads plus fp32 master weights and momentum.
        An extra 2 bytes/param covers communication buffers (the "mul_factor"
        of the paper's memory model).
        """
        if self.optimizer in ("adam", "adamw"):
            base = 2 + 2 + 4 + 4 + 4
        else:
            base = 2 + 2 + 4 + 4
        return float(base + 2)

    def valid_microbatch_sizes(self, max_mbs: int = 64) -> list[int]:
        """Microbatch sizes (powers of two) that divide the global batch."""
        sizes = []
        m = 1
        while m <= max_mbs and m <= self.global_batch_size:
            if self.global_batch_size % m == 0:
                sizes.append(m)
            m *= 2
        return sizes

    def num_microbatches(self, data_parallel: int, microbatch_size: int) -> int:
        """Microbatches each pipeline processes per iteration.

        Raises ``ValueError`` when the global batch cannot be evenly split.
        """
        if data_parallel < 1 or microbatch_size < 1:
            raise ValueError("data_parallel and microbatch_size must be >= 1")
        per_pipeline = self.global_batch_size / data_parallel
        nb = per_pipeline / microbatch_size
        if nb != int(nb) or nb < 1:
            raise ValueError(
                f"global batch {self.global_batch_size} does not split evenly "
                f"into dp={data_parallel} x mbs={microbatch_size}")
        return int(nb)
