"""Command-line interface.

Installs as ``sailor-repro`` and exposes the library's main workflows:

* ``sailor-repro catalog``     -- list known GPUs, node types and models;
* ``sailor-repro plan``        -- plan a job on a described topology and
  optionally write the chosen plan to JSON;
* ``sailor-repro simulate``    -- evaluate a saved plan (memory, time, cost);
* ``sailor-repro experiment``  -- regenerate one of the paper's tables/figures;
* ``sailor-repro churn``       -- replay a seeded fault trace against the
  replanning controller loop and report degradation/reuse statistics;
* ``sailor-repro lint``        -- run the project-invariant static analysis
  (cache-key completeness, determinism, bound admissibility hygiene, ...;
  see CONTRACTS.md).

Examples::

    sailor-repro plan --model OPT-350M \
        --nodes us-central1-a:a2-highgpu-4g:4 \
        --nodes us-central1-a:n1-standard-v100-4:8 \
        --objective throughput --output plan.json

    sailor-repro simulate --plan plan.json

    sailor-repro experiment figure8 --scale small

    sailor-repro churn --model OPT-350M \
        --pools us-central1-a:a2-highgpu-4g:4 \
        --pools us-central1-a:n1-standard-v100-4:4 \
        --events 200 --seed 0 --trace-out churn.json

    sailor-repro churn --model OPT-350M --trace-in churn.json
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.core.objectives import Objective
from repro.core.planner import ParallelPlanner, PlannerConfig, SailorPlanner
from repro.core.serialization import plan_from_json, plan_to_json, result_to_json
from repro.core.simulator import SailorSimulator, build_environment
from repro.hardware.gpus import list_gpus
from repro.hardware.nodes import get_node_type, list_node_types
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model, list_models
from repro.models.spec import TrainingJobSpec


EXPERIMENT_NAMES = (
    "figure1", "figure2", "figure3", "table1", "figure5", "figure6",
    "figure7", "figure8", "figure9", "figure10", "figure11", "figure12",
    "figure13", "figure14", "table2", "table3", "scalability",
    "reconfiguration", "ablations",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="sailor-repro",
        description="Sailor reproduction: plan, simulate and reproduce experiments.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    catalog = subparsers.add_parser(
        "catalog", help="list known GPUs, node types and models")
    catalog.add_argument("--kind", choices=["gpus", "nodes", "models", "all"],
                         default="all")

    plan = subparsers.add_parser("plan", help="plan a training job")
    plan.add_argument("--model", default="OPT-350M",
                      help="model name from the catalog (default: OPT-350M)")
    plan.add_argument("--global-batch-size", type=int, default=2048)
    plan.add_argument("--sequence-length", type=int, default=2048)
    plan.add_argument("--nodes", action="append", required=True,
                      metavar="ZONE:NODE_TYPE:COUNT",
                      help="available nodes, e.g. us-central1-a:a2-highgpu-4g:4 "
                           "(repeatable)")
    plan.add_argument("--objective", choices=["throughput", "cost"],
                      default="throughput")
    plan.add_argument("--max-cost", type=float, default=None,
                      help="budget ceiling in USD per iteration")
    plan.add_argument("--min-throughput", type=float, default=None,
                      help="throughput floor in iterations per second")
    plan.add_argument("--workers", type=int, default=1,
                      help="worker processes for the planner search; >1 fans "
                           "the (pipeline, microbatch) branches out over a "
                           "process pool (default: 1, serial)")
    plan.add_argument("--time-limit", type=float, default=None,
                      metavar="SECONDS",
                      help="wall deadline for the search; the anytime planner "
                           "returns its incumbent with a certified optimality "
                           "gap bound (default: unbounded)")
    plan.add_argument("--output", default=None,
                      help="write the chosen plan (JSON) to this file")
    plan.add_argument("--result-output", default=None,
                      help="write the full planner result (JSON) to this file")

    simulate = subparsers.add_parser("simulate", help="evaluate a saved plan")
    simulate.add_argument("--plan", required=True, help="plan JSON file")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=EXPERIMENT_NAMES)
    experiment.add_argument("--scale", choices=["tiny", "small", "paper"],
                            default="small")

    churn = subparsers.add_parser(
        "churn", help="replay a seeded fault trace against the controller")
    churn.add_argument("--model", default="OPT-350M",
                       help="model name from the catalog (default: OPT-350M)")
    churn.add_argument("--global-batch-size", type=int, default=256)
    churn.add_argument("--sequence-length", type=int, default=2048)
    churn.add_argument("--pools", action="append", default=None,
                       metavar="ZONE:NODE_TYPE:COUNT",
                       help="base capacity of one pool, e.g. "
                            "us-central1-a:a2-highgpu-4g:4 (repeatable; "
                            "default: 4 A100 + 4 V100 nodes in one zone)")
    churn.add_argument("--events", type=int, default=200,
                       help="number of fault events to generate (default: 200)")
    churn.add_argument("--seed", type=int, default=0,
                       help="scenario-generator seed (default: 0)")
    churn.add_argument("--duration", type=float, default=4 * 3600.0,
                       help="trace duration in seconds (default: 4h)")
    churn.add_argument("--objective", choices=["throughput", "cost"],
                       default="throughput")
    churn.add_argument("--deadline", type=float, default=None,
                       help="wall-clock replan deadline in seconds "
                            "(miss -> keep the incumbent, degraded)")
    churn.add_argument("--debounce", type=float, default=0.0,
                       help="minimum seconds between voluntary replans")
    churn.add_argument("--checkpoint-interval", type=int, default=20,
                       help="checkpoint every N iterations (default: 20)")
    churn.add_argument("--trace-in", default=None,
                       help="replay this fault-trace JSON instead of "
                            "generating one")
    churn.add_argument("--trace-out", default=None,
                       help="write the (generated or loaded) fault trace "
                            "to this JSON file")

    lint = subparsers.add_parser(
        "lint", help="run the project-invariant static analysis "
                     "(see CONTRACTS.md)")
    lint.add_argument("--root", default=".",
                      help="repo root to lint (default: cwd)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated subset of rule ids to run")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the machine-readable JSON report")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def parse_nodes(specs: list[str]) -> ClusterTopology:
    """Parse repeated ``zone:node_type:count`` arguments into a topology."""
    nodes: dict[str, dict[str, int]] = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise SystemExit(f"invalid --nodes value {spec!r}; "
                             "expected ZONE:NODE_TYPE:COUNT")
        zone, node_type, count_text = parts
        try:
            get_node_type(node_type)
        except KeyError as exc:
            raise SystemExit(str(exc)) from None
        try:
            count = int(count_text)
        except ValueError:
            raise SystemExit(f"invalid node count {count_text!r}") from None
        nodes.setdefault(zone, {})[node_type] = \
            nodes.get(zone, {}).get(node_type, 0) + count
    return ClusterTopology(nodes=nodes)


def cmd_catalog(args: argparse.Namespace) -> int:
    if args.kind in ("gpus", "all"):
        print("GPUs:")
        for gpu in list_gpus():
            print(f"  {gpu.name:<14} {gpu.memory_gb:5.0f} GiB  "
                  f"{gpu.peak_tflops:6.0f} TFLOP/s  ({gpu.generation})")
    if args.kind in ("nodes", "all"):
        print("Node types:")
        for node in list_node_types():
            print(f"  {node.name:<22} {node.gpus_per_node}x {node.gpu.name:<12} "
                  f"{node.nic_bw_gbps:5.0f} Gbit/s NIC")
    if args.kind in ("models", "all"):
        print("Models:")
        for model in list_models():
            print(f"  {model.name:<16} {model.num_layers:3d} layers  "
                  f"hidden {model.hidden_size:5d}  "
                  f"{model.total_params / 1e6:8.0f}M params")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    try:
        model = get_model(args.model)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    job = TrainingJobSpec(model=model, global_batch_size=args.global_batch_size,
                          sequence_length=args.sequence_length)
    topology = parse_nodes(args.nodes)
    print("Planning for topology:")
    print(topology.describe())

    env = build_environment(job, topology)
    if args.objective == "throughput":
        objective = Objective.max_throughput(
            max_cost_per_iteration_usd=args.max_cost)
    else:
        objective = Objective.min_cost(
            min_throughput_iters_per_s=args.min_throughput)

    config = PlannerConfig(time_limit_s=args.time_limit)
    if args.workers > 1:
        planner = ParallelPlanner(env, config=config, max_workers=args.workers)
    else:
        planner = SailorPlanner(env, config=config)
    result = planner.plan(job, topology, objective)
    print(f"\nsearch time: {result.search_time_s:.2f}s  "
          f"candidates: {result.candidates_evaluated}")
    print(f"search stats: {result.search_stats.describe()}")
    if result.complete:
        print("search: complete (certified optimal over the search space)")
    else:
        gap = result.optimality_gap_bound
        bound = ("no bound (no incumbent)" if gap == float("inf")
                 else f"within {100 * gap:.2f}% of optimal")
        cut = ", ".join(result.incomplete_branches)
        print(f"search: anytime result, {bound}; cut branches: {cut or 'none'}")
    if not result.found:
        print("no valid plan found within the constraints")
        return 1

    print(result.plan.describe())
    evaluation = result.evaluation
    print(f"\nestimated throughput: {evaluation.throughput_iters_per_s:.3f} iters/s")
    print(f"estimated cost      : {evaluation.cost_per_iteration_usd:.3f} USD/iteration")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(plan_to_json(result.plan))
        print(f"plan written to {args.output}")
    if args.result_output:
        with open(args.result_output, "w", encoding="utf-8") as handle:
            handle.write(result_to_json(result))
        print(f"planner result written to {args.result_output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    with open(args.plan, encoding="utf-8") as handle:
        plan = plan_from_json(handle.read())
    topology = _topology_for_plan(plan)
    env = build_environment(plan.job, topology)
    evaluation = SailorSimulator(env).evaluate(plan)
    print(plan.describe())
    print(f"\niteration time : {evaluation.iteration_time_s:.2f} s")
    print(f"throughput     : {evaluation.throughput_iters_per_s:.3f} iters/s")
    print(f"cost           : {evaluation.cost_per_iteration_usd:.3f} USD/iteration")
    print(f"valid (no OOM) : {evaluation.is_valid}")
    print("peak memory    : " + ", ".join(
        f"{m / 2**30:.1f} GiB" for m in evaluation.peak_memory_bytes_per_stage))
    return 0 if evaluation.is_valid else 1


def _topology_for_plan(plan) -> ClusterTopology:
    """Smallest topology that contains the plan (for profiling purposes)."""
    allocation = plan.resource_allocation()
    nodes: dict[str, dict[str, int]] = {}
    for (zone, node_type), count in allocation.nodes.items():
        nodes.setdefault(zone, {})[node_type] = count
    return ClusterTopology(nodes=nodes)


def cmd_experiment(args: argparse.Namespace) -> int:
    module = importlib.import_module(f"repro.experiments.{args.name}")
    table = module.run(args.scale)
    print(table.to_text())
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    from repro.runtime.checkpoint import CheckpointConfig
    from repro.runtime.controller import ReplanPolicy
    from repro.runtime.faults import FaultScenarioGenerator, FaultTrace
    from repro.runtime.replay import ChurnReplayer

    try:
        model = get_model(args.model)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    job = TrainingJobSpec(model=model, global_batch_size=args.global_batch_size,
                          sequence_length=args.sequence_length)

    if args.trace_in:
        with open(args.trace_in, encoding="utf-8") as handle:
            trace = FaultTrace.from_json(handle.read())
        pools = {pool: max((e.available_nodes for e in trace.events
                            if (e.zone, e.node_type) == pool), default=0)
                 for pool in trace.pools}
    else:
        pool_specs = args.pools or ["us-central1-a:a2-highgpu-4g:4",
                                    "us-central1-a:n1-standard-v100-4:4"]
        topology = parse_nodes(pool_specs)
        pools = {(zone, node_type): count
                 for zone, per_type in topology.nodes.items()
                 for node_type, count in per_type.items()}
        generator = FaultScenarioGenerator(seed=args.seed)
        trace = generator.churn_trace(pools, duration_s=args.duration,
                                      num_events=args.events)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(trace.to_json())
        print(f"fault trace written to {args.trace_out}")

    base_nodes: dict[str, dict[str, int]] = {}
    for (zone, node_type), count in pools.items():
        base_nodes.setdefault(zone, {})[node_type] = count
    base = ClusterTopology(nodes=base_nodes)
    print(f"replaying {len(trace.events)} events over "
          f"{trace.duration_s / 3600:.1f}h on:")
    print(base.describe())

    env = build_environment(job, base)
    objective = (Objective.max_throughput() if args.objective == "throughput"
                 else Objective.min_cost())
    policy = ReplanPolicy(replan_deadline_s=args.deadline,
                          debounce_s=args.debounce)
    replayer = ChurnReplayer(
        env, job, objective, policy=policy,
        checkpoint_config=CheckpointConfig(
            interval_iterations=args.checkpoint_interval))
    report = replayer.run(trace, base_topology=base)
    print()
    print(report.describe())
    return 0 if report.events_dropped == 0 else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.driver import run_lint
    from repro.analysis.registry import all_rules
    from repro.analysis.report import format_json, format_text

    if args.list_rules:
        for name, cls in sorted(all_rules().items()):
            print(f"{name}: {cls.description}")
        return 0
    root = Path(args.root)
    if not root.exists():
        print(f"error: no such root: {root}", file=sys.stderr)
        return 2
    rule_names = ([part.strip() for part in args.rules.split(",")
                   if part.strip()] if args.rules else None)
    result = run_lint(root, rule_names=rule_names)
    print(format_json(result) if args.as_json else format_text(result))
    for error in result.errors:
        print(f"error: {error}", file=sys.stderr)
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "catalog": cmd_catalog,
        "plan": cmd_plan,
        "simulate": cmd_simulate,
        "experiment": cmd_experiment,
        "churn": cmd_churn,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
