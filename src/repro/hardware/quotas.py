"""Resource quotas.

Users of Sailor submit *quotas*: the maximum number of GPUs of each type they
may use in each zone (paper section 4).  The actual availability (a
:class:`~repro.hardware.topology.ClusterTopology`) may be lower than the
quota at any point in time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology


@dataclass(frozen=True)
class ResourceQuota:
    """Maximum GPUs of one type allowed in one zone.

    Attributes
    ----------
    zone:
        Availability zone name, e.g. ``"us-central1-a"``.
    node_type:
        Node type name (see :mod:`repro.hardware.nodes`).
    max_nodes:
        Maximum number of whole nodes of this type the job may use.
    """

    zone: str
    node_type: str
    max_nodes: int

    def __post_init__(self) -> None:
        if self.max_nodes < 0:
            raise ValueError("max_nodes must be non-negative")
        get_node_type(self.node_type)  # validate

    @property
    def max_gpus(self) -> int:
        """Maximum GPUs this quota entry allows."""
        return self.max_nodes * get_node_type(self.node_type).gpus_per_node


@dataclass
class QuotaSet:
    """A collection of :class:`ResourceQuota` entries for one training job."""

    quotas: list[ResourceQuota] = field(default_factory=list)

    def add(self, zone: str, node_type: str, max_nodes: int) -> "QuotaSet":
        """Append a quota entry and return ``self`` for chaining."""
        self.quotas.append(ResourceQuota(zone, node_type, max_nodes))
        return self

    @property
    def zones(self) -> list[str]:
        """Zones mentioned by any quota entry, sorted."""
        return sorted({q.zone for q in self.quotas})

    @property
    def node_types(self) -> list[str]:
        """Node types mentioned by any quota entry, sorted."""
        return sorted({q.node_type for q in self.quotas})

    def max_nodes(self, zone: str, node_type: str) -> int:
        """Quota (in nodes) for a (zone, node type) pair; 0 if absent."""
        return sum(q.max_nodes for q in self.quotas
                   if q.zone == zone and q.node_type == node_type)

    def total_gpus(self) -> int:
        """Total GPUs allowed by the quota set."""
        return sum(q.max_gpus for q in self.quotas)

    def to_topology(self) -> ClusterTopology:
        """Topology assuming the full quota is available."""
        nodes: dict[str, dict[str, int]] = {}
        for q in self.quotas:
            dest = nodes.setdefault(q.zone, {})
            dest[q.node_type] = dest.get(q.node_type, 0) + q.max_nodes
        return ClusterTopology(nodes=nodes)

    def clamp(self, available: ClusterTopology) -> ClusterTopology:
        """Intersect the quota with the currently-available topology.

        The planner always plans over ``min(quota, availability)``.
        """
        nodes: dict[str, dict[str, int]] = {}
        for q in self.quotas:
            avail = available.node_count(q.zone, q.node_type)
            count = min(q.max_nodes, avail)
            if count > 0:
                dest = nodes.setdefault(q.zone, {})
                dest[q.node_type] = dest.get(q.node_type, 0) + count
        return ClusterTopology(nodes=nodes,
                               zone_to_region=dict(available.zone_to_region),
                               network=available.network)

    @classmethod
    def from_topology(cls, topology: ClusterTopology) -> "QuotaSet":
        """Quota set that exactly matches a topology."""
        quotas = []
        for zone, per_type in topology.nodes.items():
            for node_type, count in per_type.items():
                if count > 0:
                    quotas.append(ResourceQuota(zone, node_type, count))
        return cls(quotas=quotas)
