"""GPU specification catalog.

The Sailor planner and simulator treat GPUs as black-box compute units
characterised by peak throughput, memory capacity and interconnect
bandwidth (paper section 4.3).  This module provides the catalog of GPU
types used throughout the paper's evaluation (A100-40GB, V100-16GB,
GH200, Titan RTX, RTX 2080 Ti, RTX 3090) plus a few extra types that are
useful for examples, and a registry so that users can add their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU type.

    Attributes
    ----------
    name:
        Canonical identifier, e.g. ``"A100-40"``.
    memory_gb:
        Usable HBM capacity in GiB.
    peak_tflops:
        Peak dense half-precision (tensor-core) throughput in TFLOP/s.
        The profiler multiplies this by an achievable-efficiency curve.
    mem_bandwidth_gbps:
        HBM bandwidth in GB/s; used to model memory-bound phases
        (optimizer update, small microbatches).
    intra_node_bw_gbps:
        Per-direction GPU-to-GPU bandwidth inside a node (NVLink or PCIe),
        in GB/s.  Tensor-parallel collectives use this link.
    vendor:
        GPU vendor, informational only.
    generation:
        Architecture generation, informational only.
    """

    name: str
    memory_gb: float
    peak_tflops: float
    mem_bandwidth_gbps: float
    intra_node_bw_gbps: float
    vendor: str = "nvidia"
    generation: str = ""

    @property
    def memory_bytes(self) -> int:
        """Usable device memory in bytes."""
        return int(self.memory_gb * (1024 ** 3))

    @property
    def peak_flops(self) -> float:
        """Peak throughput in FLOP/s (not TFLOP/s)."""
        return self.peak_tflops * 1e12

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


_REGISTRY: dict[str, GPUSpec] = {}


def register_gpu(spec: GPUSpec, *, overwrite: bool = False) -> GPUSpec:
    """Add a GPU type to the global catalog.

    Raises ``ValueError`` if a different spec is already registered under
    the same name and ``overwrite`` is false.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec and not overwrite:
        raise ValueError(f"GPU type {spec.name!r} already registered with different spec")
    _REGISTRY[spec.name] = spec
    return spec


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU type by name.

    Raises ``KeyError`` with the list of known types if missing.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown GPU type {name!r}; known types: {known}") from None


def list_gpus() -> list[GPUSpec]:
    """Return all registered GPU specs, sorted by name."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


# ---------------------------------------------------------------------------
# Built-in catalog.  Peak numbers are the published dense FP16/BF16 tensor
# throughputs; memory capacities are the usable sizes the paper quotes.
# ---------------------------------------------------------------------------

A100_40 = register_gpu(GPUSpec(
    name="A100-40",
    memory_gb=40.0,
    peak_tflops=312.0,
    mem_bandwidth_gbps=1555.0,
    intra_node_bw_gbps=300.0,
    generation="ampere",
))

A100_80 = register_gpu(GPUSpec(
    name="A100-80",
    memory_gb=80.0,
    peak_tflops=312.0,
    mem_bandwidth_gbps=2039.0,
    intra_node_bw_gbps=300.0,
    generation="ampere",
))

V100_16 = register_gpu(GPUSpec(
    name="V100-16",
    memory_gb=16.0,
    peak_tflops=125.0,
    mem_bandwidth_gbps=900.0,
    intra_node_bw_gbps=150.0,
    generation="volta",
))

H100_80 = register_gpu(GPUSpec(
    name="H100-80",
    memory_gb=80.0,
    peak_tflops=989.0,
    mem_bandwidth_gbps=3350.0,
    intra_node_bw_gbps=450.0,
    generation="hopper",
))

GH200 = register_gpu(GPUSpec(
    name="GH200-96",
    memory_gb=96.0,
    peak_tflops=989.0,
    mem_bandwidth_gbps=4000.0,
    intra_node_bw_gbps=450.0,
    generation="grace-hopper",
))

TITAN_RTX = register_gpu(GPUSpec(
    name="TitanRTX-24",
    memory_gb=24.0,
    peak_tflops=65.0,
    mem_bandwidth_gbps=672.0,
    intra_node_bw_gbps=16.0,
    generation="turing",
))

RTX_2080 = register_gpu(GPUSpec(
    name="RTX2080-11",
    memory_gb=11.0,
    peak_tflops=45.0,
    mem_bandwidth_gbps=616.0,
    intra_node_bw_gbps=16.0,
    generation="turing",
))

RTX_3090 = register_gpu(GPUSpec(
    name="RTX3090-24",
    memory_gb=24.0,
    peak_tflops=71.0,
    mem_bandwidth_gbps=936.0,
    intra_node_bw_gbps=16.0,
    generation="ampere",
))

T4_16 = register_gpu(GPUSpec(
    name="T4-16",
    memory_gb=16.0,
    peak_tflops=65.0,
    mem_bandwidth_gbps=320.0,
    intra_node_bw_gbps=16.0,
    generation="turing",
))

A10G_24 = register_gpu(GPUSpec(
    name="A10G-24",
    memory_gb=24.0,
    peak_tflops=125.0,
    mem_bandwidth_gbps=600.0,
    intra_node_bw_gbps=24.0,
    generation="ampere",
))
