"""Dynamic GPU availability traces.

Figure 2 of the paper shows the number of A100 GPUs the authors could
allocate in two GCP zones over an 8-hour window (requesting 8 GPUs per
zone): one zone slowly ramps up and reaches the full request after about
7 hours, the other fluctuates and never reaches it.

This module provides :class:`AvailabilityTrace`, a step-function time series
of available node counts per (zone, node type), and
:class:`AvailabilityTraceGenerator`, which synthesises traces with the same
qualitative shapes (slow ramp, fluctuating, spot-style preemption bursts).
The runtime's controller consumes these traces to drive elastic
reconfiguration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.hardware.nodes import get_node_type
from repro.hardware.topology import ClusterTopology


@dataclass(frozen=True)
class AvailabilityEvent:
    """One step change in availability.

    Attributes
    ----------
    time_s:
        Seconds since the start of the trace.
    zone / node_type:
        Which pool changed.
    available_nodes:
        The new number of allocatable nodes in that pool.
    """

    time_s: float
    zone: str
    node_type: str
    available_nodes: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("time_s must be non-negative")
        if self.available_nodes < 0:
            raise ValueError("available_nodes must be non-negative")

    def to_dict(self) -> dict:
        """Plain-dict form (stable keys; used by trace serialization)."""
        return {"time_s": self.time_s, "zone": self.zone,
                "node_type": self.node_type,
                "available_nodes": self.available_nodes}

    @classmethod
    def from_dict(cls, data: dict) -> "AvailabilityEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(time_s=float(data["time_s"]), zone=data["zone"],
                   node_type=data["node_type"],
                   available_nodes=int(data["available_nodes"]))


@dataclass
class AvailabilityTrace:
    """Step-function availability over time for a set of resource pools."""

    events: list[AvailabilityEvent] = field(default_factory=list)
    duration_s: float = 8 * 3600.0

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: e.time_s)

    @property
    def pools(self) -> list[tuple[str, str]]:
        """All (zone, node_type) pools that appear in the trace."""
        return sorted({(e.zone, e.node_type) for e in self.events})

    def available_at(self, time_s: float, zone: str, node_type: str) -> int:
        """Available nodes of a pool at a given time (0 before first event)."""
        count = 0
        for event in self.events:
            if event.time_s > time_s:
                break
            if event.zone == zone and event.node_type == node_type:
                count = event.available_nodes
        return count

    def topology_at(self, time_s: float,
                    base: ClusterTopology | None = None) -> ClusterTopology:
        """Snapshot of the whole trace at ``time_s`` as a topology."""
        nodes: dict[str, dict[str, int]] = {}
        for zone, node_type in self.pools:
            count = self.available_at(time_s, zone, node_type)
            nodes.setdefault(zone, {})[node_type] = count
        zone_to_region = dict(base.zone_to_region) if base is not None else {}
        network = base.network if base is not None else None
        if network is None:
            return ClusterTopology(nodes=nodes)
        return ClusterTopology(nodes=nodes, zone_to_region=zone_to_region,
                               network=network)

    def change_times(self) -> list[float]:
        """Times at which any pool's availability changes."""
        times: list[float] = []
        last: dict[tuple[str, str], int] = {}
        for event in self.events:
            key = (event.zone, event.node_type)
            if last.get(key) != event.available_nodes:
                times.append(event.time_s)
                last[key] = event.available_nodes
        return sorted(set(times))

    def sample(self, step_s: float = 300.0) -> dict[tuple[str, str], list[int]]:
        """Sample the trace on a regular grid (used to plot Figure 2)."""
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        steps = int(self.duration_s // step_s) + 1
        out: dict[tuple[str, str], list[int]] = {}
        for pool in self.pools:
            out[pool] = [self.available_at(i * step_s, *pool) for i in range(steps)]
        return out

    def gpu_series(self, step_s: float = 300.0) -> dict[tuple[str, str], list[int]]:
        """Like :meth:`sample` but in GPUs rather than nodes."""
        sampled = self.sample(step_s)
        out = {}
        for (zone, node_type), series in sampled.items():
            per_node = get_node_type(node_type).gpus_per_node
            out[(zone, node_type)] = [c * per_node for c in series]
        return out

    def to_dict(self) -> dict:
        """Plain-dict form; events in canonical (time, zone, type) order."""
        return {"duration_s": self.duration_s,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "AvailabilityTrace":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(events=[AvailabilityEvent.from_dict(e)
                           for e in data.get("events", [])],
                   duration_s=float(data.get("duration_s", 8 * 3600.0)))


class AvailabilityTraceGenerator:
    """Synthesises availability traces with paper-like shapes."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def slow_ramp(self, zone: str, node_type: str, target_nodes: int,
                  duration_s: float = 8 * 3600.0,
                  ramp_fraction: float = 0.85,
                  step_s: float = 900.0) -> list[AvailabilityEvent]:
        """Availability that creeps up and reaches the target near the end.

        Mirrors the first zone of Figure 2 (request satisfied after ~7 of
        8 hours).
        """
        if target_nodes < 0:
            raise ValueError("target_nodes must be non-negative")
        events = [AvailabilityEvent(0.0, zone, node_type, 0)]
        ramp_end = duration_s * ramp_fraction
        steps = max(1, int(ramp_end // step_s))
        current = 0
        for i in range(1, steps + 1):
            t = i * step_s
            # Monotone ramp with random plateaus.
            expected = int(round(target_nodes * (i / steps) ** 1.5))
            if self._rng.random() < 0.35:
                expected = current  # plateau
            current = max(current, min(target_nodes, expected))
            events.append(AvailabilityEvent(t, zone, node_type, current))
        events.append(AvailabilityEvent(ramp_end, zone, node_type, target_nodes))
        return events

    def fluctuating(self, zone: str, node_type: str, target_nodes: int,
                    duration_s: float = 8 * 3600.0,
                    step_s: float = 900.0,
                    max_fraction: float = 0.75) -> list[AvailabilityEvent]:
        """Availability that oscillates and never reaches the target.

        Mirrors the second zone of Figure 2.
        """
        events = [AvailabilityEvent(0.0, zone, node_type, 0)]
        steps = max(1, int(duration_s // step_s))
        ceiling = max(0, int(math.floor(target_nodes * max_fraction)))
        current = 0
        for i in range(1, steps + 1):
            t = i * step_s
            delta = int(self._rng.integers(-2, 3))
            current = int(np.clip(current + delta, 0, ceiling))
            events.append(AvailabilityEvent(t, zone, node_type, current))
        return events

    def spot_preemptions(self, zone: str, node_type: str, base_nodes: int,
                         duration_s: float = 4 * 3600.0,
                         mean_time_between_events_s: float = 1800.0,
                         max_loss: int = 2) -> list[AvailabilityEvent]:
        """Spot-instance style trace: full pool with occasional preemptions.

        Preempted capacity returns after an exponentially distributed delay.
        Used by the elasticity experiments (section 5.5).
        """
        if base_nodes < 0:
            raise ValueError("base_nodes must be non-negative")
        events = [AvailabilityEvent(0.0, zone, node_type, base_nodes)]
        t = 0.0
        current = base_nodes
        while True:
            t += float(self._rng.exponential(mean_time_between_events_s))
            if t >= duration_s:
                break
            if current == base_nodes or self._rng.random() < 0.5:
                loss = int(self._rng.integers(1, max_loss + 1))
                current = max(0, current - loss)
            else:
                gain = int(self._rng.integers(1, max_loss + 1))
                current = min(base_nodes, current + gain)
            events.append(AvailabilityEvent(t, zone, node_type, current))
        return events

    # -- churn scenario primitives (fault-injection harness) -----------------
    #
    # The methods below are the availability-level building blocks of
    # :mod:`repro.runtime.faults`: each returns the bare event steps of one
    # fault scenario, and the fault harness labels them with a trigger kind
    # and composes them into replayable churn traces.

    def preemption_burst(self, zone: str, node_type: str, base_nodes: int,
                         at_s: float, burst_size: int | None = None,
                         spacing_s: float = 30.0,
                         recovery_s: float = 900.0) -> list[AvailabilityEvent]:
        """Several spot preemptions landing within a short window.

        ``burst_size`` nodes (default: a seeded draw of 1..base) are lost one
        ``spacing_s`` apart starting at ``at_s``; the lost capacity returns in
        one step after ``recovery_s``.
        """
        if base_nodes < 1:
            raise ValueError("base_nodes must be >= 1")
        if burst_size is None:
            burst_size = int(self._rng.integers(1, base_nodes + 1))
        burst_size = min(burst_size, base_nodes)
        events = []
        current = base_nodes
        for i in range(burst_size):
            current -= 1
            events.append(AvailabilityEvent(at_s + i * spacing_s, zone,
                                            node_type, current))
        events.append(AvailabilityEvent(at_s + (burst_size - 1) * spacing_s
                                        + recovery_s, zone, node_type,
                                        base_nodes))
        return events

    def quota_cut(self, zone: str, node_type: str, base_nodes: int,
                  at_s: float, cut_fraction: float = 0.5,
                  restore_after_s: float | None = 3600.0,
                  ) -> list[AvailabilityEvent]:
        """A provider quota reduction: capacity steps down to a fraction of
        the base and (optionally) ramps back after ``restore_after_s``."""
        if not 0.0 <= cut_fraction <= 1.0:
            raise ValueError("cut_fraction must be within [0, 1]")
        reduced = int(math.floor(base_nodes * (1.0 - cut_fraction)))
        events = [AvailabilityEvent(at_s, zone, node_type, reduced)]
        if restore_after_s is not None:
            events.append(AvailabilityEvent(at_s + restore_after_s, zone,
                                            node_type, base_nodes))
        return events

    def node_flap(self, zone: str, node_type: str, base_nodes: int,
                  at_s: float, period_s: float = 120.0,
                  cycles: int = 3, flap_nodes: int = 1,
                  ) -> list[AvailabilityEvent]:
        """One node (or a few) repeatedly leaving and rejoining the pool.

        Produces ``2 * cycles`` events alternating between ``base - flap``
        and ``base``; the scenario the controller's debounce targets.
        """
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        low = max(0, base_nodes - flap_nodes)
        events = []
        for i in range(cycles):
            t = at_s + i * period_s
            events.append(AvailabilityEvent(t, zone, node_type, low))
            events.append(AvailabilityEvent(t + period_s / 2.0, zone,
                                            node_type, base_nodes))
        return events

    def zone_outage(self, pools: dict[tuple[str, str], int], zone: str,
                    at_s: float, outage_s: float = 1800.0,
                    ) -> list[AvailabilityEvent]:
        """Every pool of one zone drops to zero, then recovers together.

        ``pools`` maps ``(zone, node_type)`` to the base node count (only the
        entries of ``zone`` contribute events).
        """
        events = []
        for (pool_zone, node_type), base in sorted(pools.items()):
            if pool_zone != zone:
                continue
            events.append(AvailabilityEvent(at_s, zone, node_type, 0))
            events.append(AvailabilityEvent(at_s + outage_s, zone, node_type,
                                            base))
        return events

    def figure2_trace(self, node_type: str = "a2-highgpu-4g",
                      zones: tuple[str, str] = ("us-central1-a", "us-central1-b"),
                      target_gpus_per_zone: int = 8,
                      duration_s: float = 8 * 3600.0) -> AvailabilityTrace:
        """The two-zone A100 trace of Figure 2 (8 GPUs requested per zone)."""
        per_node = get_node_type(node_type).gpus_per_node
        target_nodes = max(1, target_gpus_per_zone // per_node)
        events = []
        events += self.slow_ramp(zones[0], node_type, target_nodes, duration_s)
        events += self.fluctuating(zones[1], node_type, target_nodes, duration_s)
        return AvailabilityTrace(events=events, duration_s=duration_s)
