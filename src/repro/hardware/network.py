"""Network link classes and bandwidth models.

The Sailor profiler measures bandwidth between any pair of machine types as a
function of message size and fits a polynomial (paper section 4.1).  The
simulator then uses those fits to estimate point-to-point and collective
communication time (section 4.3).

This module provides the underlying *ground-truth* network model used both to
synthesise profiler measurements and to drive the reference simulator.  The
model is the classic alpha-beta (latency + bandwidth) model, with one
``LinkSpec`` per locality class:

* ``INTRA_NODE``  -- NVLink / PCIe between GPUs of one node.
* ``INTRA_ZONE``  -- NIC-to-NIC inside a single availability zone.
* ``INTER_ZONE``  -- across zones of the same cloud region.
* ``INTER_REGION`` -- across cloud regions (wide-area).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.nodes import NodeSpec


class LinkClass(enum.Enum):
    """Locality class of a network link."""

    INTRA_NODE = "intra_node"
    INTRA_ZONE = "intra_zone"
    INTER_ZONE = "inter_zone"
    INTER_REGION = "inter_region"

    @property
    def is_cross_zone(self) -> bool:
        """True when traffic on this link leaves the availability zone."""
        return self in (LinkClass.INTER_ZONE, LinkClass.INTER_REGION)


@dataclass(frozen=True)
class LinkSpec:
    """Alpha-beta description of one link class.

    Attributes
    ----------
    bandwidth_gbps:
        Peak per-direction bandwidth in gigabits per second.
    latency_s:
        One-way latency in seconds (the alpha term).
    """

    bandwidth_gbps: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Peak bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9 / 8.0

    def transfer_time(self, message_bytes: float) -> float:
        """Time to move ``message_bytes`` over this link once."""
        if message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if message_bytes == 0:
            return 0.0
        return self.latency_s + message_bytes / self.bandwidth_bytes_per_s

    def effective_bandwidth(self, message_bytes: float) -> float:
        """Achieved bandwidth (bytes/s) for a given message size.

        Small messages are latency-bound, so the achieved bandwidth is well
        below peak; this is exactly the curve the Sailor profiler fits.
        """
        if message_bytes <= 0:
            return 0.0
        return message_bytes / self.transfer_time(message_bytes)


#: Default link parameters.  Bandwidths follow typical cloud values the paper
#: references: ~100 Gbit/s NIC inside a zone, tens of Gbit/s across zones of a
#: region (which is why H6 merges zones of a region), and well under a Gbit/s
#: of *effective per-flow* bandwidth across regions -- the reason the paper's
#: H5 keeps data-parallel groups inside one region; NVLink is hundreds of GB/s.
DEFAULT_LINKS: dict[LinkClass, LinkSpec] = {
    LinkClass.INTRA_NODE: LinkSpec(bandwidth_gbps=2400.0, latency_s=5e-6),
    LinkClass.INTRA_ZONE: LinkSpec(bandwidth_gbps=100.0, latency_s=50e-6),
    LinkClass.INTER_ZONE: LinkSpec(bandwidth_gbps=40.0, latency_s=500e-6),
    LinkClass.INTER_REGION: LinkSpec(bandwidth_gbps=0.4, latency_s=30e-3),
}


@dataclass
class NetworkModel:
    """Ground-truth network model used by the simulator and profiler.

    The model resolves the link class between two endpoints (identified by
    node type and zone), then answers time/bandwidth questions with an
    alpha-beta model.  Node-specific NIC limits are honoured: the achievable
    inter-node bandwidth is ``min(link bandwidth, both NICs)``.
    """

    links: dict[LinkClass, LinkSpec] = field(default_factory=lambda: dict(DEFAULT_LINKS))

    def link_for(self, link_class: LinkClass) -> LinkSpec:
        """Return the :class:`LinkSpec` for a link class."""
        return self.links[link_class]

    def classify(self, zone_a: str, zone_b: str, *, same_node: bool = False,
                 zone_to_region: dict[str, str] | None = None) -> LinkClass:
        """Determine the link class between two endpoints.

        ``zone_to_region`` maps zone names to region names; when omitted the
        region is derived from the zone name by dropping the trailing
        ``-<letter>`` suffix (GCP convention, e.g. ``us-central1-a``).
        """
        if same_node:
            return LinkClass.INTRA_NODE
        if zone_a == zone_b:
            return LinkClass.INTRA_ZONE
        region_a = _region_of(zone_a, zone_to_region)
        region_b = _region_of(zone_b, zone_to_region)
        if region_a == region_b:
            return LinkClass.INTER_ZONE
        return LinkClass.INTER_REGION

    def pair_link(self, node_a: NodeSpec, node_b: NodeSpec,
                  link_class: LinkClass) -> LinkSpec:
        """Effective link between two specific node types.

        For cross-node links the bandwidth is capped by the slower NIC; for
        intra-node links it is capped by the GPU interconnect.
        """
        base = self.links[link_class]
        if link_class is LinkClass.INTRA_NODE:
            gpu_bw = min(node_a.gpu.intra_node_bw_gbps, node_b.gpu.intra_node_bw_gbps) * 8.0
            return LinkSpec(bandwidth_gbps=min(base.bandwidth_gbps, gpu_bw),
                            latency_s=base.latency_s)
        nic_bw = min(node_a.nic_bw_gbps, node_b.nic_bw_gbps)
        return LinkSpec(bandwidth_gbps=min(base.bandwidth_gbps, nic_bw),
                        latency_s=base.latency_s)

    def p2p_time(self, message_bytes: float, node_a: NodeSpec, node_b: NodeSpec,
                 link_class: LinkClass) -> float:
        """Point-to-point transfer time for a message between two nodes."""
        return self.pair_link(node_a, node_b, link_class).transfer_time(message_bytes)

    def bandwidth_curve(self, node_a: NodeSpec, node_b: NodeSpec,
                        link_class: LinkClass,
                        message_sizes: list[float]) -> list[float]:
        """Achieved bandwidth (bytes/s) for each message size.

        This is what the network profiler "measures" (plus noise) and fits.
        """
        link = self.pair_link(node_a, node_b, link_class)
        return [link.effective_bandwidth(m) for m in message_sizes]


def _region_of(zone: str, zone_to_region: dict[str, str] | None) -> str:
    if zone_to_region is not None and zone in zone_to_region:
        return zone_to_region[zone]
    parts = zone.rsplit("-", 1)
    if len(parts) == 2 and len(parts[1]) <= 2:
        return parts[0]
    return zone


def default_network_model() -> NetworkModel:
    """Return a :class:`NetworkModel` with the default link parameters."""
    return NetworkModel()
