"""Cloud pricing: per-GPU-hour compute prices and data-egress prices.

The Sailor cost model (paper section 4.3) charges each iteration for

* compute: ``sum_i N_i * price_per_gpu_i * T_iter`` over GPU types ``i``, and
* communication: ``sum_{i,j} bytes_ij * price_per_byte_ij`` over zone pairs.

This module provides the price catalog both of those terms read from.  Prices
default to published GCP on-demand rates (USD), but users can supply their
own catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.network import LinkClass


#: Default on-demand price per GPU-hour in USD, keyed by GPU type name.
DEFAULT_GPU_PRICES: dict[str, float] = {
    "A100-40": 2.93,
    "A100-80": 3.93,
    "V100-16": 2.48,
    "H100-80": 9.80,
    "GH200-96": 10.50,
    "TitanRTX-24": 0.90,
    "RTX2080-11": 0.50,
    "RTX3090-24": 1.10,
    "T4-16": 0.35,
    "A10G-24": 1.00,
}

#: Default data-transfer (egress) price in USD per GiB, per link class.
DEFAULT_EGRESS_PRICES: dict[LinkClass, float] = {
    LinkClass.INTRA_NODE: 0.0,
    LinkClass.INTRA_ZONE: 0.0,
    LinkClass.INTER_ZONE: 0.01,
    LinkClass.INTER_REGION: 0.08,
}


@dataclass
class PriceCatalog:
    """Prices for compute (per GPU-hour) and data transfer (per GiB).

    Attributes
    ----------
    gpu_hourly_usd:
        Map from GPU type name to on-demand USD per GPU-hour.
    egress_usd_per_gib:
        Map from :class:`LinkClass` to USD per GiB transferred.
    """

    gpu_hourly_usd: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_GPU_PRICES))
    egress_usd_per_gib: dict[LinkClass, float] = field(
        default_factory=lambda: dict(DEFAULT_EGRESS_PRICES))

    def gpu_price_per_hour(self, gpu_name: str) -> float:
        """USD per hour for one GPU of the given type."""
        try:
            return self.gpu_hourly_usd[gpu_name]
        except KeyError:
            known = ", ".join(sorted(self.gpu_hourly_usd))
            raise KeyError(
                f"no price for GPU type {gpu_name!r}; known: {known}") from None

    def gpu_price_per_second(self, gpu_name: str) -> float:
        """USD per second for one GPU of the given type."""
        return self.gpu_price_per_hour(gpu_name) / 3600.0

    def compute_cost(self, gpu_counts: dict[str, int], duration_s: float) -> float:
        """USD to run ``gpu_counts`` GPUs for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        total = 0.0
        for gpu_name, count in gpu_counts.items():
            if count < 0:
                raise ValueError(f"negative GPU count for {gpu_name!r}")
            total += count * self.gpu_price_per_second(gpu_name) * duration_s
        return total

    def egress_price_per_byte(self, link_class: LinkClass) -> float:
        """USD per byte transferred over a link of the given class."""
        return self.egress_usd_per_gib.get(link_class, 0.0) / (1024 ** 3)

    def egress_cost(self, bytes_by_link: dict[LinkClass, float]) -> float:
        """USD to transfer the given number of bytes per link class."""
        total = 0.0
        for link_class, nbytes in bytes_by_link.items():
            if nbytes < 0:
                raise ValueError("negative byte count")
            total += nbytes * self.egress_price_per_byte(link_class)
        return total

    def with_gpu_price(self, gpu_name: str, price_per_hour: float) -> "PriceCatalog":
        """Return a copy with one GPU price overridden."""
        prices = dict(self.gpu_hourly_usd)
        prices[gpu_name] = price_per_hour
        return PriceCatalog(gpu_hourly_usd=prices,
                            egress_usd_per_gib=dict(self.egress_usd_per_gib))


def default_price_catalog() -> PriceCatalog:
    """Return a :class:`PriceCatalog` with the default GCP-like prices."""
    return PriceCatalog()
