"""Hardware and cloud substrate: GPUs, nodes, networks, pricing, topology.

This package models everything the Sailor planner treats as "the cluster":

* :mod:`repro.hardware.gpus` -- GPU spec catalog (A100, V100, GH200, ...).
* :mod:`repro.hardware.nodes` -- node (VM / machine) specs grouping GPUs.
* :mod:`repro.hardware.network` -- link classes and bandwidth models.
* :mod:`repro.hardware.pricing` -- per-GPU-hour and egress pricing.
* :mod:`repro.hardware.topology` -- zones, regions and cluster topologies.
* :mod:`repro.hardware.quotas` -- resource quotas given to the planner.
* :mod:`repro.hardware.availability` -- dynamic availability traces (Fig. 2).
"""

from repro.hardware.gpus import GPUSpec, get_gpu, list_gpus, register_gpu
from repro.hardware.nodes import NodeSpec, get_node_type, list_node_types, register_node_type
from repro.hardware.network import (
    LinkClass,
    LinkSpec,
    NetworkModel,
    default_network_model,
)
from repro.hardware.pricing import PriceCatalog, default_price_catalog
from repro.hardware.topology import Region, Zone, ClusterTopology, default_cloud_layout
from repro.hardware.quotas import ResourceQuota, QuotaSet
from repro.hardware.availability import AvailabilityTrace, AvailabilityTraceGenerator

__all__ = [
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "register_gpu",
    "NodeSpec",
    "get_node_type",
    "list_node_types",
    "register_node_type",
    "LinkClass",
    "LinkSpec",
    "NetworkModel",
    "default_network_model",
    "PriceCatalog",
    "default_price_catalog",
    "Region",
    "Zone",
    "ClusterTopology",
    "default_cloud_layout",
    "ResourceQuota",
    "QuotaSet",
    "AvailabilityTrace",
    "AvailabilityTraceGenerator",
]
