"""Carbon accounting for training plans.

The paper motivates heterogeneous training partly by sustainability: older
GPUs are abundant (typical server lifetime ~6 years) and spreading jobs over
them amortises their *embodied* carbon, whereas concentrating demand on the
newest parts drives new manufacturing (section 3.1).  This module provides a
simple carbon model so plans can be compared not only by throughput and USD
but also by gCO2e per iteration:

* **operational** carbon: energy drawn by the GPUs for one iteration times
  the grid carbon intensity of the zone they run in;
* **embodied** carbon: each GPU's manufacturing footprint amortised over its
  service life, attributed to the time the plan occupies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import ParallelizationPlan


#: Typical board power (Watts) per GPU type under training load.
DEFAULT_GPU_POWER_W: dict[str, float] = {
    "A100-40": 400.0,
    "A100-80": 400.0,
    "V100-16": 300.0,
    "H100-80": 700.0,
    "GH200-96": 700.0,
    "TitanRTX-24": 280.0,
    "RTX2080-11": 250.0,
    "RTX3090-24": 350.0,
    "T4-16": 70.0,
    "A10G-24": 150.0,
}

#: Embodied manufacturing footprint per GPU in kgCO2e (board + share of host).
DEFAULT_EMBODIED_KGCO2E: dict[str, float] = {
    "A100-40": 150.0,
    "A100-80": 160.0,
    "V100-16": 130.0,
    "H100-80": 180.0,
    "GH200-96": 200.0,
    "TitanRTX-24": 110.0,
    "RTX2080-11": 90.0,
    "RTX3090-24": 120.0,
    "T4-16": 60.0,
    "A10G-24": 90.0,
}

#: Grid carbon intensity (gCO2e per kWh) by cloud region.
DEFAULT_GRID_INTENSITY: dict[str, float] = {
    "us-central1": 394.0,
    "us-west1": 78.0,
    "europe-west4": 331.0,
    "on-prem": 300.0,
}

#: Fallback grid intensity for unknown regions (world average-ish).
FALLBACK_GRID_INTENSITY = 436.0

#: Service life over which embodied carbon is amortised (the ~6-year server
#: lifetime the paper cites).
DEFAULT_LIFETIME_YEARS = 6.0

#: Datacenter power usage effectiveness (overhead on top of GPU power).
DEFAULT_PUE = 1.2


@dataclass(frozen=True)
class CarbonFootprint:
    """Carbon attributed to one iteration of a plan, in grams of CO2e."""

    operational_g: float
    embodied_g: float

    @property
    def total_g(self) -> float:
        """Total attributed carbon per iteration."""
        return self.operational_g + self.embodied_g


@dataclass
class CarbonModel:
    """Computes operational + amortised embodied carbon for plans."""

    gpu_power_w: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_GPU_POWER_W))
    embodied_kgco2e: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EMBODIED_KGCO2E))
    grid_intensity_g_per_kwh: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_GRID_INTENSITY))
    lifetime_years: float = DEFAULT_LIFETIME_YEARS
    pue: float = DEFAULT_PUE

    def __post_init__(self) -> None:
        if self.lifetime_years <= 0:
            raise ValueError("lifetime_years must be positive")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")

    # -- components -----------------------------------------------------------

    def gpu_power(self, gpu_type: str) -> float:
        """Training-load board power (W) for a GPU type."""
        try:
            return self.gpu_power_w[gpu_type]
        except KeyError:
            raise KeyError(f"no power rating for GPU type {gpu_type!r}") from None

    def grid_intensity(self, region: str) -> float:
        """Grid carbon intensity (gCO2e/kWh) of a region."""
        return self.grid_intensity_g_per_kwh.get(region, FALLBACK_GRID_INTENSITY)

    def operational_g_per_iteration(self, plan: ParallelizationPlan,
                                    iteration_time_s: float,
                                    region_of_zone) -> float:
        """Operational carbon of one iteration (gCO2e)."""
        if iteration_time_s < 0:
            raise ValueError("iteration_time_s must be non-negative")
        total = 0.0
        for stage in plan.stages:
            for replica in stage.replicas:
                power_kw = self.gpu_power(replica.gpu_type) / 1000.0 * self.pue
                energy_kwh = power_kw * replica.num_gpus * iteration_time_s / 3600.0
                intensity = self.grid_intensity(region_of_zone(replica.zone))
                total += energy_kwh * intensity
        return total

    def embodied_g_per_iteration(self, plan: ParallelizationPlan,
                                 iteration_time_s: float) -> float:
        """Embodied carbon attributed to one iteration (gCO2e).

        Each GPU's manufacturing footprint is spread uniformly over its
        service life; a plan is charged for the wall-clock time it occupies
        the GPU.
        """
        if iteration_time_s < 0:
            raise ValueError("iteration_time_s must be non-negative")
        lifetime_s = self.lifetime_years * 365.25 * 24 * 3600
        total = 0.0
        for gpu_type, count in plan.gpus_by_type().items():
            per_gpu_g = self.embodied_kgco2e.get(gpu_type, 120.0) * 1000.0
            total += count * per_gpu_g * (iteration_time_s / lifetime_s)
        return total

    # -- combined -----------------------------------------------------------------

    def footprint(self, plan: ParallelizationPlan, iteration_time_s: float,
                  region_of_zone=None) -> CarbonFootprint:
        """Carbon footprint of one iteration of a plan."""
        if region_of_zone is None:
            def region_of_zone(zone: str) -> str:
                return zone.rsplit("-", 1)[0]
        return CarbonFootprint(
            operational_g=self.operational_g_per_iteration(
                plan, iteration_time_s, region_of_zone),
            embodied_g=self.embodied_g_per_iteration(plan, iteration_time_s),
        )

    def grams_per_sample(self, plan: ParallelizationPlan,
                         iteration_time_s: float) -> float:
        """Convenience: total gCO2e per training sequence."""
        footprint = self.footprint(plan, iteration_time_s)
        return footprint.total_g / plan.job.global_batch_size
