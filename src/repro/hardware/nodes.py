"""Node (VM / machine) type catalog.

A node groups several GPUs of one type behind a shared NIC.  The planner
allocates whole nodes (the paper evaluates with 4-GPU and 8-GPU VMs), so
the node type determines the tensor-parallel degrees available without
crossing node boundaries (heuristic H1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpus import GPUSpec, get_gpu


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node (VM or bare-metal machine) type.

    Attributes
    ----------
    name:
        Canonical identifier, e.g. ``"a2-highgpu-4g"``.
    gpu:
        The GPU spec of every accelerator on the node.
    gpus_per_node:
        Number of GPUs per node (tensor parallelism is capped here by H1).
    nic_bw_gbps:
        Per-node NIC bandwidth in Gbit/s (converted by the network model).
    cpu_gpu_bw_gbps:
        Host-to-device bandwidth in GB/s; affects checkpoint and offload
        modelling in the runtime.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    nic_bw_gbps: float
    cpu_gpu_bw_gbps: float = 16.0

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.nic_bw_gbps <= 0:
            raise ValueError("nic_bw_gbps must be positive")

    @property
    def total_memory_gb(self) -> float:
        """Aggregate GPU memory on the node in GiB."""
        return self.gpu.memory_gb * self.gpus_per_node

    @property
    def valid_tp_degrees(self) -> tuple[int, ...]:
        """Tensor-parallel degrees that fit on this node (powers of two)."""
        degrees = []
        d = 1
        while d <= self.gpus_per_node:
            degrees.append(d)
            d *= 2
        return tuple(degrees)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.gpus_per_node}x{self.gpu.name})"


_REGISTRY: dict[str, NodeSpec] = {}


def register_node_type(spec: NodeSpec, *, overwrite: bool = False) -> NodeSpec:
    """Add a node type to the global catalog."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec and not overwrite:
        raise ValueError(f"node type {spec.name!r} already registered with different spec")
    _REGISTRY[spec.name] = spec
    return spec


def get_node_type(name: str) -> NodeSpec:
    """Look up a node type by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown node type {name!r}; known types: {known}") from None


def list_node_types() -> list[NodeSpec]:
    """Return all registered node types, sorted by name."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


def node_type_for_gpu(gpu_name: str, gpus_per_node: int) -> NodeSpec:
    """Find a registered node type with the given GPU and GPU count."""
    for spec in _REGISTRY.values():
        if spec.gpu.name == gpu_name and spec.gpus_per_node == gpus_per_node:
            return spec
    raise KeyError(f"no registered node type with {gpus_per_node}x {gpu_name}")


# ---------------------------------------------------------------------------
# Built-in catalog mirroring the paper's evaluation machines.
# ---------------------------------------------------------------------------

A2_HIGHGPU_4G = register_node_type(NodeSpec(
    name="a2-highgpu-4g",
    gpu=get_gpu("A100-40"),
    gpus_per_node=4,
    nic_bw_gbps=100.0,
))

A2_HIGHGPU_8G = register_node_type(NodeSpec(
    name="a2-highgpu-8g",
    gpu=get_gpu("A100-40"),
    gpus_per_node=8,
    nic_bw_gbps=100.0,
))

N1_V100_4 = register_node_type(NodeSpec(
    name="n1-standard-v100-4",
    gpu=get_gpu("V100-16"),
    gpus_per_node=4,
    nic_bw_gbps=32.0,
))

N1_V100_8 = register_node_type(NodeSpec(
    name="n1-standard-v100-8",
    gpu=get_gpu("V100-16"),
    gpus_per_node=8,
    nic_bw_gbps=32.0,
))

GH200_NODE = register_node_type(NodeSpec(
    name="gh200-4g",
    gpu=get_gpu("GH200-96"),
    gpus_per_node=4,
    nic_bw_gbps=200.0,
    cpu_gpu_bw_gbps=450.0,
))

TITAN_RTX_NODE = register_node_type(NodeSpec(
    name="titan-rtx-8g",
    gpu=get_gpu("TitanRTX-24"),
    gpus_per_node=8,
    nic_bw_gbps=25.0,
))

RTX_2080_NODE = register_node_type(NodeSpec(
    name="rtx-2080-8g",
    gpu=get_gpu("RTX2080-11"),
    gpus_per_node=8,
    nic_bw_gbps=10.0,
))

RTX_3090_NODE = register_node_type(NodeSpec(
    name="rtx-3090-8g",
    gpu=get_gpu("RTX3090-24"),
    gpus_per_node=8,
    nic_bw_gbps=40.0,
))

H100_NODE = register_node_type(NodeSpec(
    name="h100-8g",
    gpu=get_gpu("H100-80"),
    gpus_per_node=8,
    nic_bw_gbps=400.0,
))
