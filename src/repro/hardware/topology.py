"""Cloud layout (regions and zones) and cluster topologies.

A :class:`ClusterTopology` describes what the planner can currently allocate:
how many nodes of each node type are available in each zone.  It is the
"resource availability" input of Figure 4 in the paper, and changes over time
(driven by :mod:`repro.hardware.availability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.network import LinkClass, NetworkModel
from repro.hardware.nodes import NodeSpec, get_node_type


@dataclass(frozen=True)
class Zone:
    """One availability zone within a cloud region."""

    name: str
    region: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Region:
    """One cloud region with its availability zones."""

    name: str
    zones: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.zones:
            raise ValueError("a region needs at least one zone")


#: Default cloud layout used by examples and experiments (GCP-style names).
DEFAULT_REGIONS: tuple[Region, ...] = (
    Region("us-central1", ("us-central1-a", "us-central1-b", "us-central1-c")),
    Region("us-west1", ("us-west1-a", "us-west1-b")),
    Region("europe-west4", ("europe-west4-a", "europe-west4-b")),
)


def default_cloud_layout() -> dict[str, str]:
    """Return the default zone-to-region mapping."""
    mapping: dict[str, str] = {}
    for region in DEFAULT_REGIONS:
        for zone in region.zones:
            mapping[zone] = region.name
    return mapping


@dataclass
class ClusterTopology:
    """Currently-available nodes, grouped by zone and node type.

    ``nodes[zone][node_type_name] = count`` gives the number of whole nodes of
    that type that can be allocated in that zone right now.

    The topology also carries the zone-to-region mapping and the network
    model so that consumers can classify links and estimate communication.
    """

    nodes: dict[str, dict[str, int]] = field(default_factory=dict)
    zone_to_region: dict[str, str] = field(default_factory=default_cloud_layout)
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        for zone, per_type in self.nodes.items():
            for node_type, count in per_type.items():
                if count < 0:
                    raise ValueError(
                        f"negative node count for {node_type!r} in {zone!r}")
                get_node_type(node_type)  # validates the name
            if zone not in self.zone_to_region:
                # Derive region from the GCP-style zone name.
                self.zone_to_region[zone] = zone.rsplit("-", 1)[0]

    # -- queries -----------------------------------------------------------

    @property
    def zones(self) -> list[str]:
        """Zones with at least one available node, sorted."""
        return sorted(z for z, per_type in self.nodes.items()
                      if any(c > 0 for c in per_type.values()))

    @property
    def regions(self) -> list[str]:
        """Regions covering :attr:`zones`, sorted."""
        return sorted({self.zone_to_region[z] for z in self.zones})

    def zones_in_region(self, region: str) -> list[str]:
        """Zones of this topology that belong to ``region``."""
        return sorted(z for z in self.zones if self.zone_to_region[z] == region)

    def region_of(self, zone: str) -> str:
        """Region a zone belongs to."""
        return self.zone_to_region.get(zone, zone.rsplit("-", 1)[0])

    def node_types(self) -> list[str]:
        """All node type names present anywhere in the topology."""
        names: set[str] = set()
        for per_type in self.nodes.values():
            names.update(t for t, c in per_type.items() if c > 0)
        return sorted(names)

    def gpu_types(self) -> list[str]:
        """All GPU type names present anywhere in the topology."""
        return sorted({get_node_type(t).gpu.name for t in self.node_types()})

    def node_count(self, zone: str, node_type: str) -> int:
        """Available nodes of ``node_type`` in ``zone``."""
        return self.nodes.get(zone, {}).get(node_type, 0)

    def gpu_count(self, zone: str | None = None,
                  gpu_type: str | None = None) -> int:
        """Total available GPUs, optionally filtered by zone and GPU type."""
        total = 0
        for z, per_type in self.nodes.items():
            if zone is not None and z != zone:
                continue
            for node_type, count in per_type.items():
                spec = get_node_type(node_type)
                if gpu_type is not None and spec.gpu.name != gpu_type:
                    continue
                total += count * spec.gpus_per_node
        return total

    def total_gpus(self) -> int:
        """Total available GPUs across all zones and types."""
        return self.gpu_count()

    def gpus_by_type(self) -> dict[str, int]:
        """Total available GPUs keyed by GPU type name."""
        return {g: self.gpu_count(gpu_type=g) for g in self.gpu_types()}

    def link_class(self, zone_a: str, zone_b: str) -> LinkClass:
        """Locality class between two zones of this topology."""
        return self.network.classify(zone_a, zone_b,
                                     zone_to_region=self.zone_to_region)

    # -- construction helpers ----------------------------------------------

    @classmethod
    def single_zone(cls, zone: str, node_counts: dict[str, int],
                    network: NetworkModel | None = None) -> "ClusterTopology":
        """Build a topology with all nodes in one zone."""
        return cls(nodes={zone: dict(node_counts)},
                   network=network or NetworkModel())

    @classmethod
    def homogeneous(cls, node_type: str, num_nodes: int,
                    zone: str = "us-central1-a",
                    network: NetworkModel | None = None) -> "ClusterTopology":
        """Build a single-zone, single-node-type topology."""
        return cls.single_zone(zone, {node_type: num_nodes}, network=network)

    def with_nodes(self, zone: str, node_type: str, count: int) -> "ClusterTopology":
        """Return a copy with the node count of (zone, type) set to ``count``."""
        nodes = {z: dict(per_type) for z, per_type in self.nodes.items()}
        nodes.setdefault(zone, {})[node_type] = count
        return ClusterTopology(nodes=nodes,
                               zone_to_region=dict(self.zone_to_region),
                               network=self.network)

    def restricted_to_gpu(self, gpu_type: str) -> "ClusterTopology":
        """Return a copy containing only nodes with the given GPU type."""
        nodes: dict[str, dict[str, int]] = {}
        for zone, per_type in self.nodes.items():
            kept = {t: c for t, c in per_type.items()
                    if get_node_type(t).gpu.name == gpu_type}
            if kept:
                nodes[zone] = kept
        return ClusterTopology(nodes=nodes,
                               zone_to_region=dict(self.zone_to_region),
                               network=self.network)

    def restricted_to_zones(self, zones: list[str]) -> "ClusterTopology":
        """Return a copy containing only the given zones."""
        keep = set(zones)
        nodes = {z: dict(per_type) for z, per_type in self.nodes.items()
                 if z in keep}
        return ClusterTopology(nodes=nodes,
                               zone_to_region=dict(self.zone_to_region),
                               network=self.network)

    def merge(self, other: "ClusterTopology") -> "ClusterTopology":
        """Union of two topologies (node counts add up)."""
        nodes = {z: dict(per_type) for z, per_type in self.nodes.items()}
        for zone, per_type in other.nodes.items():
            dest = nodes.setdefault(zone, {})
            for node_type, count in per_type.items():
                dest[node_type] = dest.get(node_type, 0) + count
        zone_to_region = dict(self.zone_to_region)
        zone_to_region.update(other.zone_to_region)
        return ClusterTopology(nodes=nodes, zone_to_region=zone_to_region,
                               network=self.network)

    def describe(self) -> str:
        """Human-readable summary used by examples and logs."""
        lines = []
        for zone in self.zones:
            parts = []
            for node_type, count in sorted(self.nodes[zone].items()):
                if count <= 0:
                    continue
                spec = get_node_type(node_type)
                parts.append(f"{count}x {node_type} ({count * spec.gpus_per_node} {spec.gpu.name})")
            lines.append(f"{zone} [{self.region_of(zone)}]: " + ", ".join(parts))
        return "\n".join(lines) if lines else "(empty topology)"
