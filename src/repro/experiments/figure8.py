"""Figure 8: heterogeneous A100+V100 clusters, OPT-350M.

Two GPU-ratio scenarios -- 50%/50% (8a) and 25%/75% (8b) -- scaling up to
512 GPUs each (the paper's largest point).  Compared planners: the
heterogeneity-aware baselines (AMP, FlashFlex, Metis), Sailor restricted to
each homogeneous pool (Sailor-A100, Sailor-V100) and full Sailor.  The
paper reports throughput, cost per iteration and the number of OOM plans
each baseline generated before a valid one.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    make_environment,
    mixed_a100_v100_topology,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)
from repro.models.spec import TrainingJobSpec


HET_PLANNERS = ("amp", "flashflex", "metis", "sailor")

#: (num A100, num V100) pairs: 50/50 and 25/75 mixes, both scaling out to
#: the paper's 512-GPU point.
FIGURE8_SETUPS: dict[str, tuple[tuple[int, int], ...]] = {
    "50/50": ((32, 32), (80, 80), (128, 128), (256, 256)),
    "25/75": ((32, 96), (80, 240), (128, 384)),
}


def run_for_job(job: TrainingJobSpec, title: str, scale,
                setups: dict[str, tuple[tuple[int, int], ...]] = FIGURE8_SETUPS,
                planners: tuple[str, ...] = HET_PLANNERS) -> ExperimentTable:
    """Shared harness for Figures 8 (OPT-350M) and 9 (GPT-Neo-2.7B)."""
    objective = Objective.max_throughput()
    table = ExperimentTable(title=title, columns=COMPARISON_COLUMNS + ["mix"])

    for mix, sizes in setups.items():
        for num_a100, num_v100 in sizes:
            a100 = scale.scaled_gpus(num_a100, minimum=8)
            v100 = scale.scaled_gpus(num_v100, minimum=8)
            setup = f"{a100} A100 + {v100} V100"
            mixed = mixed_a100_v100_topology(a100, v100)
            env = make_environment(job, mixed)

            rows = planner_comparison_rows(
                list(planners), env, job, mixed, objective, scale,
                extra={"setup": setup, "mix": mix})
            for row in rows:
                table.add_row(**row)

            # Sailor restricted to each homogeneous pool.
            for label, gpu_type in (("sailor-a100", "A100-40"),
                                    ("sailor-v100", "V100-16")):
                pool = mixed.restricted_to_gpu(gpu_type)
                rows = planner_comparison_rows(
                    ["sailor"], env, job, pool, objective, scale,
                    extra={"setup": setup, "mix": mix})
                for row in rows:
                    row["planner"] = label
                    table.add_row(**row)

    table.notes = ("expected shape: Sailor beats the heterogeneous baselines, "
                   "generates no OOM plans, and heterogeneity helps most when "
                   "the A100 pool is small or the V100 share is large")
    return table


def run(scale: str | object = "small",
        setups: dict[str, tuple[tuple[int, int], ...]] | None = None,
        planners: tuple[str, ...] = HET_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 8 (heterogeneous clusters, OPT-350M)."""
    scale = resolve_scale(scale)
    return run_for_job(
        opt_350m_job(),
        "Figure 8: heterogeneous A100+V100 clusters (OPT-350M)",
        scale, setups or FIGURE8_SETUPS, planners)
