"""Figure 5: estimation-error distributions on a homogeneous GH200 cluster.

For a set of deployed OPT-350M configurations on 4-GH200 nodes, each
planner's peak-memory (5a) and iteration-time (5b) estimates are compared
against the measured values, and the distribution of absolute relative
errors is summarised per planner.  In the paper the baselines average
12.5-74% memory error and 10-20% time error while Sailor achieves ~5.6% and
~6%.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentTable,
    gh200_topology,
    make_environment,
    opt_350m_job,
    resolve_scale,
)
from repro.experiments.estimation import (
    ESTIMATION_PLANNERS,
    build_samples,
    error_summary,
    estimate_memory,
    estimate_time,
    relative_error,
)


def run(scale: str | object = "small", num_nodes: int = 8,
        max_samples: int = 10) -> ExperimentTable:
    """Reproduce Figure 5 (memory and time estimation errors, homogeneous)."""
    scale = resolve_scale(scale)
    if scale.name != "paper":
        num_nodes = max(2, num_nodes // 2)
        max_samples = min(max_samples, 8)
    job = opt_350m_job(global_batch_size=512)
    topology = gh200_topology(num_nodes)
    env = make_environment(job, topology)
    samples = build_samples(env, job, topology, mixed_types=False,
                            max_samples=max_samples)

    table = ExperimentTable(
        title="Figure 5: estimation error on a homogeneous GH200 cluster (OPT-350M)",
        columns=["metric", "planner", "mean_error_percent", "median_error_percent",
                 "p25_error_percent", "p75_error_percent", "max_error_percent",
                 "num_samples"])

    for metric in ("memory", "time"):
        for planner in ESTIMATION_PLANNERS:
            errors = []
            for sample in samples:
                if metric == "memory":
                    estimate = estimate_memory(planner, env, sample.plan)
                    if estimate is None:
                        continue
                    errors.append(relative_error(estimate,
                                                 sample.real_peak_memory_bytes))
                else:
                    estimate = estimate_time(planner, env, sample.plan)
                    errors.append(relative_error(estimate,
                                                 sample.real_iteration_time_s))
            summary = error_summary(errors)
            table.add_row(metric=metric, planner=planner,
                          mean_error_percent=summary["mean"],
                          median_error_percent=summary["median"],
                          p25_error_percent=summary["p25"],
                          p75_error_percent=summary["p75"],
                          max_error_percent=summary["max"],
                          num_samples=len(errors))

    table.notes = ("expected shape: Sailor's mean errors are the smallest for "
                   "both metrics; baselines are tens of percent off on memory")
    return table
