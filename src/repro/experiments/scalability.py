"""Section 5.3: Sailor planner scalability study.

Search time as a function of (a) the number of GPUs per zone with a single
homogeneous GPU type across several zones, and (b) the number of distinct
GPU types in a single zone.  The paper reports sub-1.5-second searches even
with 5 zones x 256 A100s, while adding GPU types is much more expensive
(0.3 s, 6.2 s, and ~4900 s for 1, 2 and 3 types at 256 GPUs/type).
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    ExperimentTable,
    geo_topology,
    gpt_neo_job,
    make_environment,
    make_sailor,
    resolve_scale,
)
from repro.hardware.topology import ClusterTopology


ALL_ZONES = ["us-central1-a", "us-central1-b", "us-central1-c",
             "us-west1-a", "us-west1-b"]

#: Node types used for the "number of GPU types" sweep.
TYPE_SWEEP = ("a2-highgpu-4g", "n1-standard-v100-4", "rtx-3090-8g")


def run(scale: str | object = "small", gpus_per_zone: int = 256,
        zone_counts: tuple[int, ...] = (1, 3, 5),
        type_counts: tuple[int, ...] = (1, 2, 3),
        gpus_per_type: int = 256) -> ExperimentTable:
    """Reproduce the section-5.3 scalability study."""
    scale = resolve_scale(scale)
    job = gpt_neo_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Section 5.3: Sailor planner scalability",
        columns=["sweep", "setting", "total_gpus", "search_time_s", "found"])

    # (a) zones sweep, homogeneous A100.
    per_zone = scale.scaled_gpus(gpus_per_zone, minimum=8)
    for zones in zone_counts:
        topology = geo_topology(per_zone, ALL_ZONES[:zones])
        env = make_environment(job, topology)
        result = make_sailor(env, scale).plan(job, topology, objective)
        table.add_row(sweep="zones", setting=f"{zones} zones x {per_zone} A100",
                      total_gpus=topology.total_gpus(),
                      search_time_s=result.search_time_s, found=result.found)

    # (b) GPU-type sweep, single zone.
    per_type = scale.scaled_gpus(gpus_per_type, minimum=8)
    for types in type_counts:
        nodes: dict[str, int] = {}
        for node_type in TYPE_SWEEP[:types]:
            from repro.hardware.nodes import get_node_type
            per_node = get_node_type(node_type).gpus_per_node
            nodes[node_type] = max(1, per_type // per_node)
        topology = ClusterTopology.single_zone("us-central1-a", nodes)
        env = make_environment(job, topology)
        result = make_sailor(env, scale).plan(job, topology, objective)
        table.add_row(sweep="gpu_types",
                      setting=f"{types} GPU types x {per_type} GPUs",
                      total_gpus=topology.total_gpus(),
                      search_time_s=result.search_time_s, found=result.found)

    table.notes = ("expected shape: search time grows mildly with zones/GPUs "
                   "but sharply with the number of distinct GPU types")
    return table
