"""Shared infrastructure for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import get_baseline
from repro.baselines.base import BaselineSearchLimits
from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan, PlannerResult
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.simulator import (
    ReferenceSimulator,
    SailorSimulator,
    SimulationEnvironment,
    build_environment,
)
from repro.hardware.topology import ClusterTopology
from repro.models.catalog import get_model
from repro.models.spec import TrainingJobSpec


# ---------------------------------------------------------------------------
# Result tables
# ---------------------------------------------------------------------------

@dataclass
class ExperimentTable:
    """A simple column-oriented result table (one per figure/table)."""

    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        """Append a row; unknown columns raise ``ValueError``."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def filtered(self, **criteria: object) -> list[dict[str, object]]:
        """Rows whose values match all the given criteria."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render the table as aligned plain text (what the benches print)."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            if value is None:
                return "-"
            return str(value)

        header = [self.title] if self.title else []
        widths = {c: len(c) for c in self.columns}
        rendered = []
        for row in self.rows:
            line = {c: fmt(row.get(c)) for c in self.columns}
            rendered.append(line)
            for c in self.columns:
                widths[c] = max(widths[c], len(line[c]))
        header.append("  ".join(c.ljust(widths[c]) for c in self.columns))
        header.append("  ".join("-" * widths[c] for c in self.columns))
        for line in rendered:
            header.append("  ".join(line[c].ljust(widths[c]) for c in self.columns))
        if self.notes:
            header.append(f"note: {self.notes}")
        return "\n".join(header)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()


# ---------------------------------------------------------------------------
# Scales
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling experiment size so it fits the available machine."""

    name: str
    gpu_scale: float = 1.0
    baseline_time_limit_s: float = 300.0
    metis_time_limit_s: float = 300.0
    sailor_time_limit_s: float | None = None
    max_ranked: int = 64

    def scaled_gpus(self, gpus: int, minimum: int = 4) -> int:
        """Scale a paper GPU count down, keeping it a multiple of 4."""
        scaled = max(minimum, int(round(gpus * self.gpu_scale)))
        return max(minimum, (scaled // 4) * 4)


#: The paper's own sizes (slow).
PAPER_SCALE = ExperimentScale(name="paper")

#: Laptop-friendly sizes used by the benchmark suite.
SMALL_SCALE = ExperimentScale(
    name="small", gpu_scale=0.25, baseline_time_limit_s=10.0,
    metis_time_limit_s=10.0, sailor_time_limit_s=30.0, max_ranked=32)

#: Even smaller; used by the unit/integration tests.
TINY_SCALE = ExperimentScale(
    name="tiny", gpu_scale=0.125, baseline_time_limit_s=3.0,
    metis_time_limit_s=3.0, sailor_time_limit_s=10.0, max_ranked=16)

_SCALES = {"paper": PAPER_SCALE, "small": SMALL_SCALE, "tiny": TINY_SCALE}


def resolve_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Accept either a scale name or an explicit scale object."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; use one of {sorted(_SCALES)}") from None


# ---------------------------------------------------------------------------
# Jobs and topologies
# ---------------------------------------------------------------------------

def opt_350m_job(global_batch_size: int = 2048) -> TrainingJobSpec:
    """The OPT-350M training job used throughout the evaluation."""
    return TrainingJobSpec(model=get_model("OPT-350M"),
                           global_batch_size=global_batch_size,
                           sequence_length=2048, optimizer="adam")


def gpt_neo_job(global_batch_size: int = 2048) -> TrainingJobSpec:
    """The GPT-Neo-2.7B training job used throughout the evaluation."""
    return TrainingJobSpec(model=get_model("GPT-Neo-2.7B"),
                           global_batch_size=global_batch_size,
                           sequence_length=2048, optimizer="adam")


def a100_topology(num_gpus: int, zone: str = "us-central1-a") -> ClusterTopology:
    """Single-zone A100 topology of 4-GPU VMs."""
    if num_gpus % 4 != 0:
        raise ValueError("num_gpus must be a multiple of 4 (4-GPU VMs)")
    return ClusterTopology.homogeneous("a2-highgpu-4g", num_gpus // 4, zone=zone)


def v100_topology(num_gpus: int, zone: str = "us-central1-a") -> ClusterTopology:
    """Single-zone V100 topology of 4-GPU VMs."""
    if num_gpus % 4 != 0:
        raise ValueError("num_gpus must be a multiple of 4 (4-GPU VMs)")
    return ClusterTopology.homogeneous("n1-standard-v100-4", num_gpus // 4, zone=zone)


def mixed_a100_v100_topology(num_a100: int, num_v100: int,
                             zone: str = "us-central1-a") -> ClusterTopology:
    """Single-zone mixed A100 + V100 topology of 4-GPU VMs."""
    nodes: dict[str, int] = {}
    if num_a100:
        nodes["a2-highgpu-4g"] = num_a100 // 4
    if num_v100:
        nodes["n1-standard-v100-4"] = num_v100 // 4
    return ClusterTopology.single_zone(zone, nodes)


def geo_topology(gpus_per_zone: int, zones: list[str]) -> ClusterTopology:
    """A100 topology spread over the given zones (4-GPU VMs per zone)."""
    nodes = {zone: {"a2-highgpu-4g": gpus_per_zone // 4} for zone in zones}
    return ClusterTopology(nodes=nodes)


def gh200_topology(num_nodes: int, zone: str = "on-prem-a") -> ClusterTopology:
    """On-premise Grace-Hopper cluster (4 GH200 per node)."""
    topo = ClusterTopology.single_zone(zone, {"gh200-4g": num_nodes})
    topo.zone_to_region[zone] = "on-prem"
    return topo


def rtx_heterogeneous_topology(zone: str = "on-prem-a") -> ClusterTopology:
    """The paper's on-prem heterogeneous cluster: 2x8 TitanRTX, 3x8 RTX2080, 2x8 RTX3090."""
    topo = ClusterTopology.single_zone(zone, {
        "titan-rtx-8g": 2, "rtx-2080-8g": 3, "rtx-3090-8g": 2})
    topo.zone_to_region[zone] = "on-prem"
    return topo


# ---------------------------------------------------------------------------
# Planner invocation helpers
# ---------------------------------------------------------------------------

def make_environment(job: TrainingJobSpec, topology: ClusterTopology,
                     *, noise_std: float = 0.02, seed: int = 0,
                     ) -> SimulationEnvironment:
    """Build the simulation environment (profiles, prices) for an experiment."""
    return build_environment(job, topology, noise_std=noise_std, seed=seed)


def make_sailor(env: SimulationEnvironment,
                scale: ExperimentScale) -> SailorPlanner:
    """Sailor planner configured for the experiment scale."""
    config = PlannerConfig()
    config.time_limit_s = scale.sailor_time_limit_s
    return SailorPlanner(env, config=config)


def make_baseline(name: str, env: SimulationEnvironment,
                  scale: ExperimentScale):
    """Baseline planner configured for the experiment scale."""
    limits = BaselineSearchLimits(time_limit_s=scale.baseline_time_limit_s,
                                  max_ranked=scale.max_ranked)
    kwargs: dict[str, object] = {"limits": limits}
    if name == "metis":
        kwargs["time_limit_s"] = scale.metis_time_limit_s
    if name in ("aceso", "oobleck"):
        kwargs["time_limit_s"] = scale.baseline_time_limit_s
    return get_baseline(name, env, **kwargs)


def measured_throughput(env: SimulationEnvironment, plan: ParallelizationPlan,
                        seed: int = 0) -> tuple[float, float]:
    """'Deployed' throughput and cost of a plan, via the reference simulator."""
    reference = ReferenceSimulator(env, seed=seed)
    measured = reference.measure(plan)
    return measured.throughput_iters_per_s, measured.cost_per_iteration_usd


def run_planner(name: str, env: SimulationEnvironment, job: TrainingJobSpec,
                topology: ClusterTopology, objective: Objective,
                scale: ExperimentScale) -> PlannerResult:
    """Run either Sailor or a baseline by name."""
    if name == "sailor":
        return make_sailor(env, scale).plan(job, topology, objective)
    return make_baseline(name, env, scale).plan(job, topology, objective)


def planner_comparison_rows(planners: list[str], env: SimulationEnvironment,
                            job: TrainingJobSpec, topology: ClusterTopology,
                            objective: Objective, scale: ExperimentScale,
                            extra: dict[str, object] | None = None,
                            ) -> list[dict[str, object]]:
    """Rows of (planner, throughput, cost, oom plans, search time) for a setup."""
    rows = []
    for name in planners:
        result = run_planner(name, env, job, topology, objective, scale)
        if result.found:
            throughput, cost = measured_throughput(env, result.plan)
            gpus = result.plan.total_gpus
            zones_used = len(result.plan.zones())
        else:
            throughput, cost, gpus, zones_used = 0.0, float("nan"), 0, 0
        row: dict[str, object] = {
            "planner": name,
            "throughput_iters_per_s": throughput,
            "cost_per_iteration_usd": cost,
            "oom_plans": result.oom_plans_generated,
            "search_time_s": result.search_time_s,
            "gpus_used": gpus,
            "zones_used": zones_used,
            "found": result.found,
        }
        if extra:
            row.update(extra)
        rows.append(row)
    return rows


#: Column set shared by the planner-comparison figures.
COMPARISON_COLUMNS = [
    "setup", "planner", "throughput_iters_per_s", "cost_per_iteration_usd",
    "oom_plans", "search_time_s", "gpus_used", "zones_used", "found",
]
