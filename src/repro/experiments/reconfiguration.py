"""Section 5.5: reconfiguration overheads.

The paper measures Sailor's kill-free reconfiguration on a 16-V100 cluster
when 4 more GPUs become available: planning 0.1 s, process cleanup 3 s,
topology broadcast 1.25 s, NCCL group re-initialisation 4.5 s, model and
optimizer redefinition 2 s, dataloader redefinition 0.5 s.  This experiment
replays the same scale-up event through the controller and reports the
per-phase breakdown (planning time is the actually-measured planner
latency), plus an elastic-session summary over a spot-style trace.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    ExperimentTable,
    make_environment,
    opt_350m_job,
    resolve_scale,
    v100_topology,
)
from repro.hardware.availability import AvailabilityTrace, AvailabilityTraceGenerator
from repro.hardware.topology import ClusterTopology
from repro.runtime.controller import TrainingController
from repro.runtime.session import ElasticTrainingSession


def run(scale: str | object = "small", base_gpus: int = 16,
        added_gpus: int = 4) -> ExperimentTable:
    """Reproduce the section-5.5 reconfiguration-overhead breakdown."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Section 5.5: reconfiguration overhead breakdown (16 -> 20 V100)",
        columns=["phase", "seconds"])

    before = v100_topology(base_gpus)
    after = ClusterTopology.single_zone(
        "us-central1-a", {"n1-standard-v100-4": (base_gpus + added_gpus) // 4})
    env = make_environment(job, before)

    controller = TrainingController(env=env, job=job, objective=objective)
    controller.start(before, time_s=0.0)
    event = controller.handle_availability_change(after, time_s=600.0)
    if event is None:
        raise RuntimeError("expected the controller to reconfigure on scale-up")

    for phase, seconds in event.breakdown.as_dict().items():
        table.add_row(phase=phase, seconds=seconds)
    table.add_row(phase="total", seconds=event.total_s)

    # Elastic-session summary over a spot trace (goodput context for the
    # same cluster).
    generator = AvailabilityTraceGenerator(seed=3)
    events = generator.spot_preemptions(
        "us-central1-a", "n1-standard-v100-4",
        base_nodes=(base_gpus + added_gpus) // 4, duration_s=3600.0)
    trace = AvailabilityTrace(events=events, duration_s=3600.0)
    session = ElasticTrainingSession(env, job, objective=objective)
    report = session.run(trace, base_topology=after)
    table.columns.append("detail")
    table.add_row(phase="session_goodput_iters_per_s",
                  seconds=report.goodput_iters_per_s,
                  detail=f"{report.reconfigurations} reconfigurations, "
                         f"{report.iterations_completed} iterations")

    table.notes = ("expected shape: cleanup + NCCL re-initialisation dominate; "
                   "total is around 10 seconds at this scale")
    return table
