"""Ablations of Sailor's design choices (DESIGN.md checklist).

Not a paper figure, but DESIGN.md calls out the design decisions worth
ablating; this harness quantifies them:

* H2 (early OOM pruning) on/off -- OOM plans generated and search time;
* H3/H4 (ordered data-parallel exploration with early stop) on/off;
* H6 (zone consolidation) on/off in a geo-distributed setting;
* straggler-aware vs. straggler-oblivious timing in the estimator;
* per-stage vs. uniform-stage memory accounting.
"""

from __future__ import annotations

from repro.baselines.estimators import BaselineEstimator, EstimatorFlags
from repro.core.heuristics import HeuristicConfig
from repro.core.objectives import Objective
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.core.simulator import ReferenceSimulator
from repro.experiments.common import (
    ExperimentTable,
    geo_topology,
    make_environment,
    mixed_a100_v100_topology,
    opt_350m_job,
    resolve_scale,
)
from repro.experiments.estimation import build_samples, error_summary, relative_error


def _sailor_with(env, scale, **heuristic_overrides) -> SailorPlanner:
    heuristics = HeuristicConfig(**heuristic_overrides)
    config = PlannerConfig(heuristics=heuristics,
                           time_limit_s=scale.sailor_time_limit_s)
    return SailorPlanner(env, config=config)


def run(scale: str | object = "small", gpus_per_type: int = 32) -> ExperimentTable:
    """Run the ablation suite and report the effect of each design choice."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Ablations of Sailor design choices",
        columns=["ablation", "variant", "search_time_s",
                 "throughput_iters_per_s", "oom_plans", "metric"])

    gpus = scale.scaled_gpus(gpus_per_type, minimum=8)
    mixed = mixed_a100_v100_topology(gpus, gpus)
    env = make_environment(job, mixed)

    # H2: early OOM pruning.
    for variant, prune in (("on", True), ("off", False)):
        planner = _sailor_with(env, scale, prune_oom_early=prune)
        result = planner.plan(job, mixed, objective)
        table.add_row(ablation="H2_oom_pruning", variant=variant,
                      search_time_s=result.search_time_s,
                      throughput_iters_per_s=(
                          result.evaluation.throughput_iters_per_s
                          if result.found else 0.0),
                      oom_plans=result.oom_plans_generated, metric=None)

    # H3/H4: ordered data-parallel exploration.
    for variant, ordered in (("on", True), ("off", False)):
        planner = _sailor_with(env, scale, ordered_data_parallel=ordered)
        result = planner.plan(job, mixed, objective)
        table.add_row(ablation="H3_H4_dp_ordering", variant=variant,
                      search_time_s=result.search_time_s,
                      throughput_iters_per_s=(
                          result.evaluation.throughput_iters_per_s
                          if result.found else 0.0),
                      oom_plans=result.oom_plans_generated, metric=None)

    # H6: zone consolidation (geo-distributed setting).
    geo = geo_topology(gpus, ["us-central1-a", "us-central1-b", "us-west1-a"])
    geo_env = make_environment(job, geo)
    for variant, consolidate in (("on", True), ("off", False)):
        planner = _sailor_with(geo_env, scale, consolidate_zones=consolidate)
        result = planner.plan(job, geo, objective)
        table.add_row(ablation="H6_zone_consolidation", variant=variant,
                      search_time_s=result.search_time_s,
                      throughput_iters_per_s=(
                          result.evaluation.throughput_iters_per_s
                          if result.found else 0.0),
                      oom_plans=result.oom_plans_generated, metric=None)

    # Estimator ablations: straggler-aware timing and per-stage memory.
    samples = build_samples(env, job, mixed, mixed_types=True, max_samples=6)
    reference = ReferenceSimulator(env)
    aware = BaselineEstimator(env, EstimatorFlags())
    oblivious = BaselineEstimator(env, EstimatorFlags(models_stragglers=False))
    uniform_mem = BaselineEstimator(env, EstimatorFlags(
        uniform_stage_memory=True, per_stage_in_flight=False))
    for label, estimator, metric in (
            ("straggler_aware", aware, "time"),
            ("straggler_oblivious", oblivious, "time"),
            ("per_stage_memory", aware, "memory"),
            ("uniform_stage_memory", uniform_mem, "memory")):
        errors = []
        for sample in samples:
            if metric == "time":
                estimate = estimator.estimate_iteration_time(sample.plan)
                errors.append(relative_error(estimate, sample.real_iteration_time_s))
            else:
                peaks = estimator.estimate_peak_memory(sample.plan)
                if peaks is None:
                    continue
                errors.append(relative_error(max(peaks),
                                             sample.real_peak_memory_bytes))
        summary = error_summary(errors)
        table.add_row(ablation=f"estimator_{metric}", variant=label,
                      search_time_s=0.0, throughput_iters_per_s=0.0,
                      oom_plans=0, metric=summary["mean"])

    table.notes = ("expected shape: disabling H2 produces OOM candidates and "
                   "slows the search; disabling H3/H4 or H6 increases search "
                   "time; straggler-oblivious timing and uniform-stage memory "
                   "increase estimator error")
    return table
