"""Figure 6: iteration-time estimation error on a heterogeneous cluster.

OPT-350M on the paper's on-premise mix of Titan RTX, RTX 2080 and RTX 3090
nodes.  Homogeneous planners (Piper, Varuna, Aceso) ignore the per-GPU-type
speed differences (28-47% error), FlashFlex relies on theoretical FLOPS
(~69% error), Metis mis-models the heterogeneous network (~28%), while
Sailor stays around 5%.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentTable,
    make_environment,
    opt_350m_job,
    resolve_scale,
    rtx_heterogeneous_topology,
)
from repro.experiments.estimation import (
    ESTIMATION_PLANNERS,
    build_samples,
    error_summary,
    estimate_time,
    relative_error,
)


def run(scale: str | object = "small", max_samples: int = 10) -> ExperimentTable:
    """Reproduce Figure 6 (time-estimation error, heterogeneous RTX cluster)."""
    scale = resolve_scale(scale)
    if scale.name != "paper":
        max_samples = min(max_samples, 8)
    job = opt_350m_job(global_batch_size=512)
    topology = rtx_heterogeneous_topology()
    env = make_environment(job, topology)
    samples = build_samples(env, job, topology, mixed_types=True,
                            max_samples=max_samples)

    table = ExperimentTable(
        title="Figure 6: iteration-time estimation error on a heterogeneous RTX cluster",
        columns=["planner", "mean_error_percent", "median_error_percent",
                 "p25_error_percent", "p75_error_percent", "max_error_percent",
                 "num_samples"])

    for planner in ESTIMATION_PLANNERS:
        errors = [relative_error(estimate_time(planner, env, s.plan),
                                 s.real_iteration_time_s) for s in samples]
        summary = error_summary(errors)
        table.add_row(planner=planner,
                      mean_error_percent=summary["mean"],
                      median_error_percent=summary["median"],
                      p25_error_percent=summary["p25"],
                      p75_error_percent=summary["p75"],
                      max_error_percent=summary["max"],
                      num_samples=len(errors))

    table.notes = ("expected shape: Sailor has the lowest error; straggler-"
                   "oblivious and theoretical-FLOPS estimators are far off")
    return table
