"""Table 3: Sailor search-time breakdown.

GPT-Neo-2.7B on one zone with 128 A100 and 128 V100.  The paper compares:

* dynamic programming alone (no pruning heuristics) -- hours;
* dynamic programming + heuristics H1-H3 -- a few seconds;
* the same search with an additional 1.5 USD/iteration budget constraint --
  a few times slower than without, because of the straggler-approximation
  iterations in the budget-constrained DP.

Running the heuristic-free configuration to completion is infeasible by
design, so it is executed under a wall-clock cap and reported as a lower
bound (``>= cap``), which is exactly how one would document an "hours" entry.
"""

from __future__ import annotations

from repro.core.heuristics import HeuristicConfig
from repro.core.objectives import Objective
from repro.core.planner import PlannerConfig, SailorPlanner
from repro.experiments.common import (
    ExperimentTable,
    gpt_neo_job,
    make_environment,
    mixed_a100_v100_topology,
    a100_topology,
    resolve_scale,
)


def _planner(env, heuristics_on: bool, time_limit_s: float | None) -> SailorPlanner:
    heuristics = HeuristicConfig()
    if not heuristics_on:
        heuristics.prune_oom_early = False
        heuristics.ordered_data_parallel = False
        heuristics.extra_tp_candidates = True
    config = PlannerConfig(heuristics=heuristics, time_limit_s=time_limit_s)
    return SailorPlanner(env, config=config)


def run(scale: str | object = "small", gpus_per_type: int = 128,
        budget_usd: float = 1.5,
        no_heuristics_cap_s: float = 60.0) -> ExperimentTable:
    """Reproduce Table 3 (search-time breakdown of the Sailor planner)."""
    scale = resolve_scale(scale)
    gpus = scale.scaled_gpus(gpus_per_type, minimum=16)
    job = gpt_neo_job()
    if scale.name != "paper":
        no_heuristics_cap_s = min(no_heuristics_cap_s, 15.0)

    table = ExperimentTable(
        title="Table 3: Sailor planner search-time breakdown (GPT-Neo-2.7B)",
        columns=["gpu_types", "configuration", "search_time_s", "hit_time_cap",
                 "found"])

    setups = {
        1: a100_topology(gpus),
        2: mixed_a100_v100_topology(gpus, gpus),
    }
    for num_types, topology in setups.items():
        env = make_environment(job, topology)

        # Dynamic programming without the pruning heuristics (capped).
        planner = _planner(env, heuristics_on=False,
                           time_limit_s=no_heuristics_cap_s)
        result = planner.plan(job, topology, Objective.max_throughput())
        table.add_row(gpu_types=num_types, configuration="dp_only",
                      search_time_s=result.search_time_s,
                      hit_time_cap=result.search_time_s >= no_heuristics_cap_s * 0.95,
                      found=result.found)

        # Dynamic programming + heuristics.
        planner = _planner(env, heuristics_on=True,
                           time_limit_s=scale.sailor_time_limit_s)
        result = planner.plan(job, topology, Objective.max_throughput())
        heuristics_time = result.search_time_s
        table.add_row(gpu_types=num_types, configuration="dp_plus_heuristics",
                      search_time_s=heuristics_time, hit_time_cap=False,
                      found=result.found)

        # Heuristics + budget constraint.
        planner = _planner(env, heuristics_on=True,
                           time_limit_s=scale.sailor_time_limit_s)
        result = planner.plan(job, topology,
                              Objective.max_throughput(
                                  max_cost_per_iteration_usd=budget_usd))
        table.add_row(gpu_types=num_types, configuration="heuristics_plus_budget",
                      search_time_s=result.search_time_s, hit_time_cap=False,
                      found=result.found)

    table.notes = ("expected shape: without heuristics the search hits its cap; "
                   "heuristics bring it to seconds; the budget constraint adds "
                   "a multiple on top")
    return table
