"""Figure 13: minimising cost under a throughput constraint.

Objective: minimise USD per iteration while sustaining at least 0.2
iterations/second for OPT-350M.  The resource pool spans two zones of one
region with 128 A100 and 128 V100 each.  Baselines cannot optimise for cost,
so (as in the paper) they are adapted to rank their candidates by estimated
cost and to discard plans violating the constraint; the fixed topologies
they receive follow the paper's assignment (homogeneous planners get the
A100 pool, heterogeneous ones get both types in one zone, DTFM gets A100 in
two zones).  Sailor searches the full space and selects just enough GPUs to
meet the constraint, yielding ~40% lower cost than the best baseline.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    make_environment,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)
from repro.hardware.topology import ClusterTopology


FIGURE13_PLANNERS = ("varuna", "aceso", "galvatron", "amp", "flashflex",
                     "metis", "dtfm", "sailor")


def build_topology(scale, gpus_per_type_per_zone: int = 128) -> ClusterTopology:
    """Two zones in one region, each with A100 and V100 pools."""
    per_zone = scale.scaled_gpus(gpus_per_type_per_zone, minimum=8)
    nodes = {
        "us-central1-a": {"a2-highgpu-4g": per_zone // 4,
                          "n1-standard-v100-4": per_zone // 4},
        "us-central1-b": {"a2-highgpu-4g": per_zone // 4,
                          "n1-standard-v100-4": per_zone // 4},
    }
    return ClusterTopology(nodes=nodes)


def planner_topology(name: str, full: ClusterTopology) -> ClusterTopology:
    """The fixed sub-topology each baseline receives (paper section 5.2.4)."""
    single_zone = full.restricted_to_zones(["us-central1-a"])
    if name in ("varuna", "aceso", "galvatron", "piper", "oobleck"):
        return single_zone.restricted_to_gpu("A100-40")
    if name in ("amp", "flashflex", "metis"):
        return single_zone
    if name == "dtfm":
        return full.restricted_to_gpu("A100-40")
    return full  # sailor


def run(scale: str | object = "small",
        min_throughput: float = 0.2,
        planners: tuple[str, ...] = FIGURE13_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 13 (min cost subject to a throughput floor)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    full = build_topology(scale)
    objective = Objective.min_cost(min_throughput_iters_per_s=min_throughput)

    table = ExperimentTable(
        title=f"Figure 13: minimise cost with throughput >= {min_throughput} iters/s",
        columns=COMPARISON_COLUMNS)

    env = make_environment(job, full)
    for name in planners:
        topology = planner_topology(name, full)
        rows = planner_comparison_rows(
            [name], env, job, topology, objective, scale,
            extra={"setup": "2 zones x (128 A100 + 128 V100)"})
        for row in rows:
            table.add_row(**row)

    table.notes = ("expected shape: Sailor meets the constraint at the lowest "
                   "cost (~40% below the best baseline), using only as many "
                   "A100s as needed")
    return table
