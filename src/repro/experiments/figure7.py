"""Figure 7: planner comparison on homogeneous A100 clusters.

Throughput achieved by every planner's chosen plan for OPT-350M on 32, 80
and 128 A100-40GB GPUs in one zone.  In the paper Sailor improves throughput
by 1.15x over the closest baseline and up to 5.7x over the weakest, and some
baselines fail to produce a valid (non-OOM) plan at all.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    a100_topology,
    make_environment,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)


#: Planners compared in Figure 7 (all of them).
FIGURE7_PLANNERS = ("varuna", "amp", "piper", "galvatron", "aceso",
                    "flashflex", "metis", "dtfm", "sailor")

#: Cluster sizes of the paper.
FIGURE7_GPU_COUNTS = (32, 80, 128)


def run(scale: str | object = "small",
        gpu_counts: tuple[int, ...] = FIGURE7_GPU_COUNTS,
        planners: tuple[str, ...] = FIGURE7_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 7 (throughput per planner, homogeneous A100)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Figure 7: planners on homogeneous A100 clusters (OPT-350M)",
        columns=COMPARISON_COLUMNS)

    for gpus in gpu_counts:
        actual = scale.scaled_gpus(gpus, minimum=16)
        topology = a100_topology(actual)
        env = make_environment(job, topology)
        rows = planner_comparison_rows(
            list(planners), env, job, topology, objective, scale,
            extra={"setup": f"{actual} A100"})
        for row in rows:
            table.add_row(**row)

    table.notes = ("expected shape: Sailor matches or beats every baseline at "
                   "every cluster size and produces no OOM plans")
    return table
