"""Figure 12: geo-distributed training at larger scale (simulation).

OPT-350M on A100 GPUs across 5 zones of 2 regions, at growing per-zone GPU
counts.  In the paper Sailor achieves up to 5.9x the throughput and 9.48x
lower cost per iteration than DTFM, because it uses larger microbatches and
tensor-parallel degrees (reducing cross-zone transfers) and does not spread
the job across regions unnecessarily.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    geo_topology,
    make_environment,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)


FIGURE12_ZONES = ["us-central1-a", "us-central1-b", "us-central1-c",
                  "us-west1-a", "us-west1-b"]
FIGURE12_PLANNERS = ("dtfm", "sailor")
FIGURE12_GPUS_PER_ZONE = (16, 32, 64)


def run(scale: str | object = "small",
        gpus_per_zone_options: tuple[int, ...] = FIGURE12_GPUS_PER_ZONE,
        planners: tuple[str, ...] = FIGURE12_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 12 (geo-distributed, 5 zones / 2 regions, simulated)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Figure 12: geo-distributed A100 training, 5 zones / 2 regions (OPT-350M)",
        columns=COMPARISON_COLUMNS)

    for gpus_per_zone in gpus_per_zone_options:
        actual = scale.scaled_gpus(gpus_per_zone, minimum=4)
        setup = f"{actual} A100 per zone x {len(FIGURE12_ZONES)} zones"
        topology = geo_topology(actual, FIGURE12_ZONES)
        env = make_environment(job, topology)
        rows = planner_comparison_rows(
            list(planners), env, job, topology, objective, scale,
            extra={"setup": setup})
        for row in rows:
            table.add_row(**row)

    table.notes = ("expected shape: Sailor achieves several times DTFM's "
                   "throughput at a fraction of the cost per iteration")
    return table
