"""Figure 10: small real-hardware heterogeneous cluster.

OPT-350M on 8 A100 + 8 V100 and on 8 A100 + 16 V100 (V100s were easier to
allocate).  The paper deploys the plans of AMP, Metis, FlashFlex and Sailor
on real GPUs; here the reference simulator plays the role of the deployment.
Sailor outperforms the baselines by 1.08-2x and produces no OOM plans, while
Metis cannot handle the 24-GPU case (global batch not divisible by the GPU
count) and AMP reuses its 16-GPU plan.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    make_environment,
    mixed_a100_v100_topology,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)


FIGURE10_PLANNERS = ("amp", "metis", "flashflex", "sailor")

#: (num A100, num V100) of the two real-hardware setups.
FIGURE10_SETUPS = ((8, 8), (8, 16))


def run(scale: str | object = "small",
        setups: tuple[tuple[int, int], ...] = FIGURE10_SETUPS,
        planners: tuple[str, ...] = FIGURE10_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 10 (small heterogeneous cluster, OPT-350M)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Figure 10: small heterogeneous A100+V100 cluster (OPT-350M)",
        columns=COMPARISON_COLUMNS)

    for num_a100, num_v100 in setups:
        setup = f"{num_a100} A100 + {num_v100} V100"
        topology = mixed_a100_v100_topology(num_a100, num_v100)
        env = make_environment(job, topology)
        rows = planner_comparison_rows(
            list(planners), env, job, topology, objective, scale,
            extra={"setup": setup})
        for row in rows:
            table.add_row(**row)

    table.notes = ("expected shape: Sailor wins at both sizes with zero OOM "
                   "plans; baselines OOM or cannot use the extra V100s")
    return table
