"""Figure 1: why heterogeneous / multi-zone configurations matter.

The paper's motivating figure trains OPT-350M on seven configurations:

* c0 -- 16 A100 (what is actually available in one zone);
* c1 -- 16 V100;
* c2 -- 32 A100 in one zone (the desired but unattainable allocation);
* c3 -- 16 A100 + 16 V100 in one zone, *well parallelised* (Sailor's plan);
* c4 -- 32 A100 spread over two zones of one region;
* c5 -- 16 A100 + 16 V100 with a *bad* parallelization plan;
* c6 -- 32 A100 spread over two regions (same plan as c4).

The claim: good heterogeneous/multi-zone configurations (c3, c4) beat the
attainable homogeneous ones (c0, c1) at moderate cost, but badly chosen
plans or placements (c5, c6) hurt throughput and/or cost.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.core.plan import ParallelizationPlan
from repro.experiments.common import (
    ExperimentTable,
    a100_topology,
    geo_topology,
    make_environment,
    make_sailor,
    measured_throughput,
    mixed_a100_v100_topology,
    opt_350m_job,
    resolve_scale,
    v100_topology,
)


CONFIG_LABELS = {
    "c0": "16 A100",
    "c1": "16 V100",
    "c2": "32 A100 (unattainable)",
    "c3": "16 A100 + 16 V100",
    "c4": "32 A100, 2 zones",
    "c5": "16 A100 + 16 V100 (bad plan)",
    "c6": "32 A100, 2 regions",
}


def _bad_heterogeneous_plan(job, env) -> ParallelizationPlan:
    """A deliberately poor parallelization of the mixed cluster (c5).

    It ignores the speed difference between the GPU types: a deep pipeline
    with tensor parallelism 1 everywhere and a tiny microbatch, so the V100
    stages straggle and communication dominates.
    """
    from repro.core.plan import StageConfig, StageReplica
    from repro.models.partition import uniform_partition

    pp, dp, mbs = 8, 8, 1
    partitions = uniform_partition(job.model, pp)
    stages = []
    for i, partition in enumerate(partitions):
        node_type = "a2-highgpu-4g" if i < pp // 2 else "n1-standard-v100-4"
        replicas = [StageReplica(node_type=node_type, tensor_parallel=1,
                                 zone="us-central1-a") for _ in range(dp)]
        stages.append(StageConfig(partition=partition, replicas=replicas))
    return ParallelizationPlan(job=job, stages=stages, microbatch_size=mbs)


def _respread_across_regions(plan: ParallelizationPlan, from_zone: str,
                             to_zone: str) -> ParallelizationPlan:
    """Move every replica placed in ``from_zone`` to ``to_zone`` (c4 -> c6)."""
    from repro.core.plan import StageConfig, StageReplica

    stages = []
    for stage in plan.stages:
        replicas = []
        for replica in stage.replicas:
            zone = to_zone if replica.zone == from_zone else replica.zone
            replicas.append(StageReplica(node_type=replica.node_type,
                                         tensor_parallel=replica.tensor_parallel,
                                         zone=zone))
        stages.append(StageConfig(partition=stage.partition, replicas=replicas))
    return ParallelizationPlan(job=plan.job, stages=stages,
                               microbatch_size=plan.microbatch_size)


def run(scale: str | object = "small") -> ExperimentTable:
    """Reproduce Figure 1 (throughput and cost per configuration)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Figure 1: OPT-350M on homogeneous / heterogeneous / geo-distributed configs",
        columns=["config", "label", "throughput_iters_per_s",
                 "cost_per_iteration_usd", "kind"])

    setups = {
        "c0": (a100_topology(16), "homogeneous"),
        "c1": (v100_topology(16), "homogeneous"),
        "c2": (a100_topology(32), "homogeneous"),
        "c3": (mixed_a100_v100_topology(16, 16), "good-heterogeneous"),
        "c4": (geo_topology(16, ["us-central1-a", "us-central1-b"]), "good-heterogeneous"),
    }

    c4_plan = None
    c4_env = None
    for config, (topology, kind) in setups.items():
        env = make_environment(job, topology)
        result = make_sailor(env, scale).plan(job, topology, objective)
        if result.found:
            throughput, cost = measured_throughput(env, result.plan)
        else:
            throughput, cost = 0.0, float("nan")
        if config == "c4":
            c4_plan, c4_env = result.plan, env
        table.add_row(config=config, label=CONFIG_LABELS[config],
                      throughput_iters_per_s=throughput,
                      cost_per_iteration_usd=cost, kind=kind)

    # c5: same resources as c3 but with a bad parallelization plan.
    topology = mixed_a100_v100_topology(16, 16)
    env = make_environment(job, topology)
    bad_plan = _bad_heterogeneous_plan(job, env)
    throughput, cost = measured_throughput(env, bad_plan)
    table.add_row(config="c5", label=CONFIG_LABELS["c5"],
                  throughput_iters_per_s=throughput,
                  cost_per_iteration_usd=cost, kind="bad-heterogeneous")

    # c6: the paper keeps c4's GPU count and parallelization but spreads it
    # across two *regions* instead of two zones.
    if c4_plan is not None:
        geo = geo_topology(16, ["us-central1-a", "us-west1-a"])
        env6 = make_environment(job, geo)
        c6_plan = _respread_across_regions(c4_plan, "us-central1-b", "us-west1-a")
        throughput, cost = measured_throughput(env6, c6_plan)
        table.add_row(config="c6", label=CONFIG_LABELS["c6"],
                      throughput_iters_per_s=throughput,
                      cost_per_iteration_usd=cost, kind="bad-heterogeneous")
    else:  # pragma: no cover - c4 always plans in practice
        table.add_row(config="c6", label=CONFIG_LABELS["c6"],
                      throughput_iters_per_s=0.0,
                      cost_per_iteration_usd=float("nan"),
                      kind="bad-heterogeneous")

    table.rows.sort(key=lambda row: row["config"])
    table.notes = ("expected shape: c3/c4 beat c0/c1; c5 is much slower than c3; "
                   "c6 costs more than c4")
    return table
