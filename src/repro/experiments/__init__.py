"""Experiment harnesses: one module per paper figure/table.

Every module exposes a ``run(scale=...)`` function returning an
:class:`~repro.experiments.common.ExperimentTable` whose rows mirror the
series the paper plots.  ``scale="paper"`` uses the paper's cluster sizes
(slow: hundreds of GPUs and 300-second baseline search caps);
``scale="small"`` shrinks clusters and time limits so the whole suite runs
on a laptop -- the benchmarks under ``benchmarks/`` use the small scale.

See DESIGN.md for the experiment index and EXPERIMENTS.md for the recorded
paper-vs-measured outcomes.
"""

from repro.experiments.common import (
    ExperimentTable,
    ExperimentScale,
    opt_350m_job,
    gpt_neo_job,
    mixed_a100_v100_topology,
    a100_topology,
    geo_topology,
)

__all__ = [
    "ExperimentTable",
    "ExperimentScale",
    "opt_350m_job",
    "gpt_neo_job",
    "mixed_a100_v100_topology",
    "a100_topology",
    "geo_topology",
]
