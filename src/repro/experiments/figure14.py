"""Figure 14: maximising throughput under a budget constraint.

Objective: maximise throughput for OPT-350M while spending at most 1.2 USD
per iteration, over the same two-zone pool as Figure 13.  Most baselines
simply use all the GPUs they were given even when that exceeds the budget or
adds no throughput; DTFM cannot find a plan within the constraint; Sailor
selects 256 A100s across the two zones and achieves 1.65-3x the throughput
of the baselines while staying within budget.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    make_environment,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)
from repro.experiments.figure13 import FIGURE13_PLANNERS, build_topology, planner_topology


def run(scale: str | object = "small",
        max_cost: float = 1.2,
        planners: tuple[str, ...] = FIGURE13_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 14 (max throughput subject to a budget)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    full = build_topology(scale)
    objective = Objective.max_throughput(max_cost_per_iteration_usd=max_cost)

    table = ExperimentTable(
        title=f"Figure 14: maximise throughput with cost <= {max_cost} USD/iteration",
        columns=COMPARISON_COLUMNS)

    env = make_environment(job, full)
    for name in planners:
        topology = planner_topology(name, full)
        rows = planner_comparison_rows(
            [name], env, job, topology, objective, scale,
            extra={"setup": "2 zones x (128 A100 + 128 V100)"})
        for row in rows:
            table.add_row(**row)

    table.notes = ("expected shape: Sailor has the highest throughput among "
                   "plans within budget; some baselines exceed the budget or "
                   "find no valid plan")
    return table
