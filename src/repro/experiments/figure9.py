"""Figure 9: heterogeneous A100+V100 clusters, GPT-Neo-2.7B.

Same setups as Figure 8 but with the larger model, where memory pressure is
much higher: AMP and Metis generate many OOM plans, FlashFlex often finds no
valid plan at all, and heterogeneity is more beneficial than for OPT-350M.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, gpt_neo_job, resolve_scale
from repro.experiments.figure8 import FIGURE8_SETUPS, HET_PLANNERS, run_for_job


def run(scale: str | object = "small",
        setups: dict[str, tuple[tuple[int, int], ...]] | None = None,
        planners: tuple[str, ...] = HET_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 9 (heterogeneous clusters, GPT-Neo-2.7B)."""
    scale = resolve_scale(scale)
    table = run_for_job(
        gpt_neo_job(),
        "Figure 9: heterogeneous A100+V100 clusters (GPT-Neo-2.7B)",
        scale, setups or FIGURE8_SETUPS, planners)
    table.notes = ("expected shape: baselines generate many OOM plans or fail "
                   "entirely; Sailor finds valid plans with the best throughput")
    return table
