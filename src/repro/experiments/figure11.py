"""Figure 11: geo-distributed training, small scale (real hardware in the paper).

OPT-350M on A100-40GB GPUs spread over 4 zones of 2 regions (us-central1 and
us-west1), with 4 and then 8 A100s per zone.  DTFM (with exhaustive plan
generation feeding its partitioner) is compared against Sailor; the paper
reports 1.9x and 2.45x higher throughput for Sailor, which keeps the job in
a single region while DTFM spreads it across both.
"""

from __future__ import annotations

from repro.core.objectives import Objective
from repro.experiments.common import (
    COMPARISON_COLUMNS,
    ExperimentTable,
    geo_topology,
    make_environment,
    opt_350m_job,
    planner_comparison_rows,
    resolve_scale,
)


FIGURE11_ZONES = ["us-central1-a", "us-central1-b", "us-west1-a", "us-west1-b"]
FIGURE11_PLANNERS = ("dtfm", "sailor")


def run(scale: str | object = "small",
        gpus_per_zone_options: tuple[int, ...] = (4, 8),
        planners: tuple[str, ...] = FIGURE11_PLANNERS) -> ExperimentTable:
    """Reproduce Figure 11 (geo-distributed, 4 zones / 2 regions)."""
    scale = resolve_scale(scale)
    job = opt_350m_job()
    objective = Objective.max_throughput()

    table = ExperimentTable(
        title="Figure 11: geo-distributed A100 training, 4 zones / 2 regions (OPT-350M)",
        columns=COMPARISON_COLUMNS)

    for gpus_per_zone in gpus_per_zone_options:
        setup = f"{gpus_per_zone} A100 per zone x {len(FIGURE11_ZONES)} zones"
        topology = geo_topology(gpus_per_zone, FIGURE11_ZONES)
        env = make_environment(job, topology)
        rows = planner_comparison_rows(
            list(planners), env, job, topology, objective, scale,
            extra={"setup": setup})
        for row in rows:
            table.add_row(**row)

    table.notes = ("expected shape: Sailor stays within one region and beats "
                   "DTFM by ~2x at lower cost")
    return table
