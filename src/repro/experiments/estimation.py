"""Shared helpers for the estimator-accuracy experiments (Figures 3, 5, 6).

These experiments compare, for a set of deployed configurations, each
planner's *estimate* of peak memory / iteration time against the "real"
value.  Real hardware is replaced by the fine-grained reference simulator
(see DESIGN.md), so the reported errors measure how much each estimator's
simplifications (ignored memory sources, uniform stages, no stragglers,
theoretical FLOPS, flat bandwidth) cost it relative to a detailed execution
model -- which is exactly the comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import get_baseline
from repro.baselines.base import BaselineSearchLimits
from repro.core.plan import ParallelizationPlan
from repro.core.simulator import (
    MemoryEstimator,
    ReferenceSimulator,
    SimulationEnvironment,
    TimingEstimator,
)
from repro.hardware.topology import ClusterTopology
from repro.models.spec import TrainingJobSpec


#: Planners whose estimators are compared in Figures 3, 5 and 6.
ESTIMATION_PLANNERS = ("piper", "varuna", "aceso", "metis", "flashflex", "sailor")


@dataclass
class EstimationSample:
    """One configuration plus its reference ("real") measurements."""

    label: str
    plan: ParallelizationPlan
    real_iteration_time_s: float
    real_peak_memory_bytes: float


def build_samples(env: SimulationEnvironment, job: TrainingJobSpec,
                  topology: ClusterTopology, *, mixed_types: bool,
                  max_samples: int = 12, seed: int = 0) -> list[EstimationSample]:
    """Valid deployed configurations on a topology, with reference numbers.

    With ``mixed_types`` the sampled configurations are required to actually
    span more than one GPU type (when the topology offers more than one), so
    the heterogeneity-related estimation errors are exercised.
    """
    limits = BaselineSearchLimits(max_candidates=512, time_limit_s=20.0)
    enumerator = get_baseline("amp", env, limits=limits)
    plans = enumerator.enumerate_uniform_plans(job, topology,
                                               allow_mixed_types=mixed_types)
    memory = MemoryEstimator(env)
    reference = ReferenceSimulator(env, seed=seed)
    multiple_types = len(topology.gpu_types()) > 1

    samples: list[EstimationSample] = []
    seen: set[tuple[int, int, int, int]] = set()
    for plan in plans:
        key = (plan.pipeline_parallel, plan.data_parallel,
               plan.stages[0].replicas[0].tensor_parallel, plan.microbatch_size)
        if key in seen:
            continue
        if mixed_types and multiple_types and len(plan.gpus_by_type()) < 2:
            continue
        if not memory.plan_fits(plan):
            continue
        seen.add(key)
        measured = reference.measure(plan)
        samples.append(EstimationSample(
            label=f"pp{key[0]}-dp{key[1]}-tp{key[2]}-mbs{key[3]}",
            plan=plan,
            real_iteration_time_s=measured.iteration_time_s,
            real_peak_memory_bytes=max(measured.peak_memory_bytes_per_stage)))
        if len(samples) >= max_samples:
            break
    return samples


def estimate_time(planner: str, env: SimulationEnvironment,
                  plan: ParallelizationPlan) -> float:
    """A planner's iteration-time estimate for a deployed plan."""
    if planner == "sailor":
        return TimingEstimator(env).iteration_time(plan)
    baseline = get_baseline(planner, env)
    return baseline.estimator.estimate_iteration_time(plan)


def estimate_memory(planner: str, env: SimulationEnvironment,
                    plan: ParallelizationPlan) -> float | None:
    """A planner's peak-memory estimate (``None`` when it has no memory model)."""
    if planner == "sailor":
        return max(MemoryEstimator(env).stage_peaks(plan))
    baseline = get_baseline(planner, env)
    peaks = baseline.estimator.estimate_peak_memory(plan)
    if peaks is None:
        return None
    return max(peaks)


def relative_error(estimate: float, real: float) -> float:
    """Absolute relative error in percent."""
    if real <= 0:
        raise ValueError("real value must be positive")
    return abs(estimate - real) / real * 100.0


def error_summary(errors: list[float]) -> dict[str, float]:
    """Mean / median / p25 / p75 / max of a list of errors (percent)."""
    if not errors:
        return {"mean": float("nan"), "median": float("nan"),
                "p25": float("nan"), "p75": float("nan"), "max": float("nan")}
    ordered = sorted(errors)

    def percentile(fraction: float) -> float:
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]

    return {
        "mean": sum(ordered) / len(ordered),
        "median": percentile(0.5),
        "p25": percentile(0.25),
        "p75": percentile(0.75),
        "max": ordered[-1],
    }
