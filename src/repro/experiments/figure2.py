"""Figure 2: A100 availability over an 8-hour window in two GCP zones.

The paper continuously requested 8 A100 GPUs in each of two zones and
recorded how many were actually allocatable.  One zone slowly reached the
full request after ~7 hours; the other fluctuated and never reached it.
We regenerate the same trace shape with the availability-trace generator.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable, resolve_scale
from repro.hardware.availability import AvailabilityTraceGenerator
from repro.hardware.nodes import get_node_type


def run(scale: str | object = "small", seed: int = 0,
        sample_step_s: float = 1800.0) -> ExperimentTable:
    """Reproduce Figure 2 (available A100 GPUs over time, per zone)."""
    resolve_scale(scale)  # scale does not change this experiment
    generator = AvailabilityTraceGenerator(seed=seed)
    trace = generator.figure2_trace(
        node_type="a2-highgpu-4g",
        zones=("us-central1-a", "us-central1-b"),
        target_gpus_per_zone=8)

    table = ExperimentTable(
        title="Figure 2: A100 availability over 8 hours (8 GPUs requested per zone)",
        columns=["time_h", "zone", "available_gpus", "requested_gpus"])

    per_node = get_node_type("a2-highgpu-4g").gpus_per_node
    series = trace.sample(step_s=sample_step_s)
    for (zone, node_type), counts in sorted(series.items()):
        for step, nodes in enumerate(counts):
            table.add_row(time_h=step * sample_step_s / 3600.0, zone=zone,
                          available_gpus=nodes * per_node, requested_gpus=8)

    table.notes = ("expected shape: one zone ramps to the full request near the end "
                   "of the window, the other fluctuates below it")
    return table
